"""Ablation: the bounded-skyline cap of the Algorithm 4 scheduler.

Algorithm 4's skyline grows combinatorially without pruning; we cap the
partial schedules kept per step. This ablation measures what the cap
costs in schedule quality (fastest point, cheapest point) against what
it buys in scheduler runtime.
"""

import time

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.scheduling.skyline import SkylineScheduler

CAPS = (1, 2, 4, 8, 16)


def _sweep(workload):
    flows = [workload.next_dataflow("montage", issued_at=0.0) for _ in range(3)]
    rows = []
    for cap in CAPS:
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=cap, max_containers=20)
        start = time.perf_counter()
        best_time, best_money, points = 0.0, 0, 0
        for flow in flows:
            skyline = scheduler.schedule(flow)
            best_time += min(s.makespan_seconds() for s in skyline)
            best_money += min(s.money_quanta() for s in skyline)
            points += len(skyline)
        elapsed = time.perf_counter() - start
        rows.append((cap, best_time / len(flows), best_money / len(flows),
                     points / len(flows), elapsed))
    return rows


def test_ablation_skyline_cap(benchmark, workload):
    rows = benchmark.pedantic(_sweep, args=(workload,), rounds=1, iterations=1)

    print_header("Ablation — skyline cap of the Algorithm 4 scheduler (Montage)")
    print_rows(
        ["cap", "fastest (s)", "cheapest (quanta)", "skyline pts", "runtime (s)"],
        [[c, f"{t:.1f}", f"{m:.1f}", f"{p:.1f}", f"{e:.2f}"] for c, t, m, p, e in rows],
        widths=[8, 14, 20, 14, 14],
    )

    by_cap = {c: (t, m, p, e) for c, t, m, p, e in rows}
    # A bigger skyline never yields a worse fastest point...
    assert by_cap[8][0] <= by_cap[1][0] + 1e-6
    # ...and never a worse cheapest point.
    assert by_cap[8][1] <= by_cap[1][1] + 1e-9
    # More skyline points are kept with a bigger cap.
    assert by_cap[16][2] >= by_cap[1][2]
    benchmark.extra_info["fastest_cap1"] = round(by_cap[1][0], 1)
    benchmark.extra_info["fastest_cap8"] = round(by_cap[8][0], 1)
