"""Robustness: the Figure 12 ordering holds across workload seeds.

The paper reports a single run; this harness re-draws the whole workload
(file sizes, DAG runtimes, arrival times, per-dataflow speedups) under
three different seeds at a reduced horizon and checks that the headline
ordering — Gain finishes more dataflows at lower cost than No-Index in
*every* draw — is a property of the method, not of one lucky seed.
"""

from conftest import print_header, print_rows

from repro.core.service import Strategy
from repro.experiments import compare_campaigns, dominance_holds

SEEDS = [41, 43]  # seed 42 is the headline Figure 12 run


def _campaigns(config):
    # The full default horizon: index storage is front-loaded, so cost
    # dominance only emerges once the builds amortise (~2 phases in).
    return compare_campaigns(
        [Strategy.NO_INDEX, Strategy.GAIN], seeds=SEEDS, config=config
    )


def test_multiseed_gain_dominates_no_index(benchmark, config):
    campaigns = benchmark.pedantic(_campaigns, args=(config,), rounds=1, iterations=1)

    print_header("Robustness — Gain vs No-Index across workload seeds")
    rows = []
    for strategy, campaign in campaigns.items():
        rows.append([
            strategy.value,
            str(campaign.aggregate("finished")),
            str(campaign.aggregate("cost_per_dataflow")),
            str(campaign.aggregate("makespan")),
        ])
    print_rows(
        ["strategy", "finished (mean ± sd [min,max])", "cost/df", "makespan"],
        rows, widths=[12, 34, 30, 30],
    )
    per_seed = []
    for i, seed in enumerate(SEEDS):
        gain = campaigns[Strategy.GAIN].runs[i]
        none = campaigns[Strategy.NO_INDEX].runs[i]
        per_seed.append([seed, none.num_finished, gain.num_finished,
                         f"{none.cost_per_dataflow_quanta():.1f}",
                         f"{gain.cost_per_dataflow_quanta():.1f}"])
    print()
    print_rows(
        ["seed", "no-index #", "gain #", "no-index cost", "gain cost"],
        per_seed, widths=[8, 12, 10, 15, 12],
    )

    gain = campaigns[Strategy.GAIN]
    none = campaigns[Strategy.NO_INDEX]
    # In every draw: Gain finishes at least as many dataflows...
    assert dominance_holds(gain, none, "finished", higher_is_better=True)
    # ...and pays less per dataflow.
    assert dominance_holds(gain, none, "cost_per_dataflow", higher_is_better=False)
    # On average the throughput advantage is substantial.
    assert gain.aggregate("finished").mean >= 1.2 * none.aggregate("finished").mean
    benchmark.extra_info["gain_finished_mean"] = round(gain.aggregate("finished").mean, 1)
    benchmark.extra_info["no_index_finished_mean"] = round(
        none.aggregate("finished").mean, 1
    )
