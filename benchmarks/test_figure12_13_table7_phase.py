"""Figures 12, 13 and Table 7: the phase-generator service experiment.

The dataflow generator client issues CyberShake, then LIGO, then Montage,
then CyberShake again (Section 6.5.1), and four index-management
strategies are compared over the full horizon:

* Figure 12 — dataflows finished and average cost per dataflow: the Gain
  strategy roughly doubles throughput and substantially cuts the cost;
  Random trails Gain on throughput while paying far more (storage it
  never reclaims); keeping non-beneficial indexes (Gain no-delete) costs
  more than deleting them.
* Table 7 — operators executed and killed: Gain's packing kills a
  smaller fraction of build operators than Random (paper: 2.8% vs 4.4%).
* Figure 13 — built indexes and storage cost over time: the index set
  tracks the phases, with deletions after phase changes and re-creation
  when CyberShake returns.

Default horizon is 1/6 of the paper's 720 quanta (REPRO_FULL=1 for full).
"""

import pytest

from conftest import print_header, print_rows

from repro import Strategy, run_experiment

_RESULTS: dict[str, object] = {}

_ORDER = (
    Strategy.NO_INDEX,
    Strategy.RANDOM,
    Strategy.GAIN_NO_DELETE,
    Strategy.GAIN,
)

_LABEL = {
    Strategy.NO_INDEX: "No Index",
    Strategy.RANDOM: "Random",
    Strategy.GAIN_NO_DELETE: "Gain (no delete)",
    Strategy.GAIN: "Gain",
}

#: Table 7 paper values: total ops, killed ops, killed %.
PAPER_TABLE7 = {
    Strategy.NO_INDEX: (22402, 0, 0.0),
    Strategy.RANDOM: (25649, 1143, 4.4),
    Strategy.GAIN: (49549, 1418, 2.8),
}


def _results(config):
    if not _RESULTS:
        for strategy in _ORDER:
            _RESULTS[strategy.value] = run_experiment(
                strategy, generator="phase", config=config
            )
    return {s: _RESULTS[s.value] for s in _ORDER}


def test_figure12_dataflows_and_cost(benchmark, config):
    results = benchmark.pedantic(_results, args=(config,), rounds=1, iterations=1)

    print_header("Figure 12 — Dataflows finished & cost/dataflow (phase generator)")
    rows = []
    for strategy in _ORDER:
        m = results[strategy]
        rows.append([
            _LABEL[strategy],
            m.num_finished,
            f"{m.cost_per_dataflow_quanta():.2f}",
            f"{m.avg_makespan_quanta():.2f}",
        ])
    print_rows(
        ["strategy", "#dataflows", "cost/dataflow (q)", "avg makespan (q)"],
        rows, widths=[20, 12, 20, 18],
    )

    no_index = results[Strategy.NO_INDEX]
    random = results[Strategy.RANDOM]
    no_delete = results[Strategy.GAIN_NO_DELETE]
    gain = results[Strategy.GAIN]

    # Gain roughly doubles the finished dataflows (paper: ~2x).
    assert gain.num_finished >= 1.5 * no_index.num_finished
    # ...and cuts the cost per dataflow substantially.
    assert gain.cost_per_dataflow_quanta() < 0.8 * no_index.cost_per_dataflow_quanta()
    # Random trails Gain on throughput and pays much more per dataflow
    # (the storage cost of indexes it never deletes). In our physically
    # coupled simulator random's accidental hot-table hits still buy it
    # some throughput over no-index — see EXPERIMENTS.md.
    assert random.num_finished < gain.num_finished
    assert random.cost_per_dataflow_quanta() > 1.3 * gain.cost_per_dataflow_quanta()
    assert random.storage_dollars() > gain.storage_dollars()
    # Keeping non-beneficial indexes costs at least as much as deleting.
    assert no_delete.storage_dollars() >= gain.storage_dollars() - 1e-9

    for strategy in _ORDER:
        m = results[strategy]
        benchmark.extra_info[f"{strategy.value}_finished"] = m.num_finished
        benchmark.extra_info[f"{strategy.value}_cost_q"] = round(
            m.cost_per_dataflow_quanta(), 2
        )


def test_table7_operators_executed(benchmark, config):
    results = benchmark.pedantic(_results, args=(config,), rounds=1, iterations=1)

    print_header("Table 7 — Operators executed (phase generator)")
    rows = []
    for strategy in (Strategy.NO_INDEX, Strategy.RANDOM, Strategy.GAIN):
        m = results[strategy]
        paper = PAPER_TABLE7[strategy]
        rows.append([
            _LABEL[strategy],
            f"{m.total_ops()} ({paper[0]})",
            f"{m.killed_ops()} ({paper[1]})",
            f"{m.killed_percentage():.1f}% ({paper[2]}%)",
        ])
    print_rows(
        ["algorithm", "total ops (paper)", "killed ops (paper)", "killed % (paper)"],
        rows, widths=[18, 22, 22, 22],
    )

    no_index = results[Strategy.NO_INDEX]
    random = results[Strategy.RANDOM]
    gain = results[Strategy.GAIN]
    # The paper's ordering: no-index kills nothing; random's blind
    # packing kills a larger fraction than gain's knapsack packing.
    assert no_index.killed_ops() == 0
    assert random.killed_percentage() > gain.killed_percentage() > 0.0
    # Gain executes the most operators (dataflows + builds).
    assert gain.total_ops() > random.total_ops() > no_index.total_ops()
    benchmark.extra_info["random_killed_pct"] = round(random.killed_percentage(), 2)
    benchmark.extra_info["gain_killed_pct"] = round(gain.killed_percentage(), 2)


def test_figure13_adaptation_over_time(benchmark, config):
    results = benchmark.pedantic(_results, args=(config,), rounds=1, iterations=1)
    gain = results[Strategy.GAIN]

    print_header("Figure 13 — Adaptation of the Gain strategy to the workload")
    snaps = gain.snapshots
    step = max(1, len(snaps) // 20)
    print_rows(
        ["t (quanta)", "#indexes built", "#partitions", "storage MB", "cum. storage $"],
        [
            [f"{s.time / 60.0:7.1f}", s.indexes_built, s.index_partitions_built,
             f"{s.storage_mb:9.1f}", f"{s.cumulative_storage_dollars:7.2f}"]
            for s in snaps[::step]
        ],
        widths=[12, 16, 14, 14, 16],
    )
    print(f"\nindexes created: {gain.indexes_created}, deleted: {gain.indexes_deleted}")

    built_series = [s.indexes_built for s in snaps]
    # Indexes are created as the workload stabilises...
    assert max(built_series) > 0
    # ...and the strategy deletes indexes when phases change.
    assert gain.indexes_deleted > 0
    # Storage accrues monotonically (it is a cumulative cost).
    cum = [s.cumulative_storage_dollars for s in snaps]
    assert all(a <= b + 1e-9 for a, b in zip(cum, cum[1:]))
    benchmark.extra_info["max_indexes_built"] = max(built_series)
    benchmark.extra_info["indexes_deleted"] = gain.indexes_deleted
