"""Ablation: LP vs online interleaving inside the full service loop.

Figure 8 compares the two interleaving algorithms on a single dataflow;
this ablation runs them end-to-end in the Gain strategy. The LP
algorithm packs more builds per dataflow, so indexes materialise faster.
"""

from dataclasses import replace

from conftest import print_header, print_rows

from repro import Strategy, default_config, run_experiment


def _sweep(config):
    cfg = replace(config, total_time_s=min(config.total_time_s, 3600.0))
    rows = []
    for interleaver in ("lp", "online"):
        m = run_experiment(Strategy.GAIN, generator="phase", config=cfg,
                           interleaver=interleaver)
        builds = sum(o.builds_completed for o in m.outcomes)
        rows.append((interleaver, m.num_finished, builds,
                     m.cost_per_dataflow_quanta(), m.killed_percentage()))
    return rows


def test_ablation_interleaver(benchmark, config):
    rows = benchmark.pedantic(_sweep, args=(config,), rounds=1, iterations=1)
    print_header("Ablation — interleaving algorithm inside the Gain service")
    print_rows(
        ["interleaver", "#finished", "builds done", "cost/df (q)", "killed %"],
        [[i, n, b, f"{c:.2f}", f"{k:.1f}"] for i, n, b, c, k in rows],
        widths=[14, 12, 14, 14, 10],
    )
    by_name = {i: (n, b, c, k) for i, n, b, c, k in rows}
    # Both interleavers drive the service effectively: over many rounds
    # completed builds converge (whatever one round fails to place is
    # retried with the next dataflow) — the per-dataflow gap is Figure
    # 8's result. End-to-end the two must deliver comparable throughput
    # and cost.
    assert by_name["lp"][1] > 0 and by_name["online"][1] > 0
    assert by_name["lp"][0] >= 0.9 * by_name["online"][0]
    assert by_name["lp"][2] <= 1.1 * by_name["online"][2]
    benchmark.extra_info["lp_builds"] = by_name["lp"][1]
    benchmark.extra_info["online_builds"] = by_name["online"][1]
