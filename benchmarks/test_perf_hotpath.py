"""Hot-path performance benchmark: before/after the optimisation layer.

Three measurements, each against the frozen naive oracles of
``tests/differential/oracle.py`` (the pre-optimisation implementations),
so "before" numbers are produced by the code that actually shipped
before, in the same process, on the same inputs:

* **gain window update** — per-decision faded-sum evaluation over a
  long history: naive O(window) refold vs the incremental evaluator
  (required: >= 3x);
* **skyline schedule** — Algorithm 4 on workload DAGs: full branch +
  rescore-from-scratch vs dominance prefilter + incremental objectives;
* **full simulated day** — the end-to-end service loop: the optimised
  stack vs the service with the oracle scheduler, the oracle knapsack
  (no memo) and the naive gain path patched back in (required: >= 1.5x).

Headline numbers land in ``BENCH_hotpath.json`` via the
``figure_metrics`` fixture when ``REPRO_BENCH_METRICS_DIR`` is set.
"""

from __future__ import annotations

import time
from dataclasses import replace

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.core.config import ExperimentConfig
from repro.core.metrics import ServiceMetrics
from repro.core.service import QaaSService, Strategy
from repro.data.index_model import IndexCostModel
from repro.dataflow.client import ArrivalEvent, build_workload
from repro.obs import NOOP_OBS
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.incremental import IncrementalGainEvaluator

from tests.differential.oracle import (
    OracleSkylineScheduler,
    oracle_faded_sums,
    oracle_solve_knapsack,
)

INDEX = "lineitem__l_orderkey"


# ----------------------------------------------------------------------
# Part 1: gain window update (microbenchmark, >= 3x required)
# ----------------------------------------------------------------------
def _gain_fixture(num_records: int) -> tuple[GainModel, DataflowHistory]:
    params = GainParameters(fade_quanta=5.0, window_quanta=60.0)
    model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
    history = DataflowHistory(PAPER_PRICING)
    for i in range(num_records):
        history.add(
            DataflowRecord(
                name=f"df{i}",
                executed_at=30.0 * i,
                time_gains={INDEX: 2.0 + (i % 7)},
                money_gains={INDEX: 1.0 + (i % 5)},
            )
        )
    return model, history


def _bench_gain_update(num_records: int = 1500, checkpoints: int = 300):
    model, history = _gain_fixture(num_records)
    start_now = 30.0 * num_records
    nows = [start_now + 45.0 * k for k in range(checkpoints)]

    t0 = time.perf_counter()
    for now in nows:
        oracle_faded_sums(model, history, INDEX, now)
    naive_s = time.perf_counter() - t0

    evaluator = IncrementalGainEvaluator(model, history)
    evaluator.faded_sums(INDEX, nows[0])  # cold rebuild outside the timer
    t0 = time.perf_counter()
    for now in nows:
        evaluator.faded_sums(INDEX, now)
    incremental_s = time.perf_counter() - t0

    return {
        "window_records": num_records,
        "checkpoints": checkpoints,
        "naive_ops_per_s": checkpoints / naive_s,
        "incremental_ops_per_s": checkpoints / incremental_s,
        "speedup": naive_s / incremental_s,
    }


# ----------------------------------------------------------------------
# Part 2: skyline schedule (oracle vs optimised)
# ----------------------------------------------------------------------
def _bench_skyline(rounds: int = 4):
    workload = build_workload(PAPER_PRICING, seed=42)
    flows = [
        workload.next_dataflow(app, issued_at=0.0)
        for app in ("montage", "ligo", "cybershake", "montage")
    ]
    from repro.scheduling.skyline import SkylineScheduler

    oracle = OracleSkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=10)
    optimised = SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=10)

    t0 = time.perf_counter()
    for _ in range(rounds):
        for flow in flows:
            oracle.schedule(flow)
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        for flow in flows:
            optimised.schedule(flow)
    optimised_s = time.perf_counter() - t0

    calls = rounds * len(flows)
    return {
        "schedule_calls": calls,
        "naive_ops_per_s": calls / naive_s,
        "optimised_ops_per_s": calls / optimised_s,
        "speedup": naive_s / optimised_s,
    }


# ----------------------------------------------------------------------
# Part 3: full simulated day, end to end (>= 1.5x required)
# ----------------------------------------------------------------------
class _OracleSchedulerForService(OracleSkylineScheduler):
    """The frozen scheduler with the service's constructor surface."""

    def __init__(self, *args, obs=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.obs = NOOP_OBS


def _e2e_config(incremental_gain: bool) -> ExperimentConfig:
    return ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=5,
        incremental_gain=incremental_gain,
    )


def _run_service(config: ExperimentConfig) -> tuple[float, ServiceMetrics]:
    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN)
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(6)]
    t0 = time.perf_counter()
    metrics = service.run(events)
    return time.perf_counter() - t0, metrics


def _bench_e2e(monkeypatch):
    optimised_s, optimised_metrics = _run_service(_e2e_config(incremental_gain=True))

    # Patch the pre-optimisation stack back in: oracle scheduler, oracle
    # knapsack (no memo, per-node suffix rebuilds), naive gain refold.
    with monkeypatch.context() as patch:
        patch.setattr("repro.core.service.SkylineScheduler", _OracleSchedulerForService)
        patch.setattr("repro.interleave.lp.solve_knapsack", oracle_solve_knapsack)
        naive_s, naive_metrics = _run_service(_e2e_config(incremental_gain=False))

    # The exact scheduler optimisations and the knapsack memo preserve
    # results bit for bit; the incremental gain path is tolerance-equal,
    # so the two simulated days must agree on the headline outcomes.
    assert naive_metrics.num_finished == optimised_metrics.num_finished
    return {
        "horizon_quanta": 30,
        "naive_wall_s": naive_s,
        "optimised_wall_s": optimised_s,
        "naive_days_per_hour": 3600.0 / naive_s,
        "optimised_days_per_hour": 3600.0 / optimised_s,
        "speedup": naive_s / optimised_s,
        "dataflows_finished": optimised_metrics.num_finished,
    }


def test_hotpath(benchmark, figure_metrics, monkeypatch):
    gain = _bench_gain_update()
    skyline = _bench_skyline()
    e2e = benchmark.pedantic(lambda: _bench_e2e(monkeypatch), rounds=1, iterations=1)

    print_header("Hot-path performance: naive oracle vs optimised layer")
    print_rows(
        ["component", "naive ops/s", "optimised ops/s", "speedup"],
        [
            ["gain window update", f"{gain['naive_ops_per_s']:.1f}",
             f"{gain['incremental_ops_per_s']:.1f}", f"{gain['speedup']:.1f}x"],
            ["skyline schedule", f"{skyline['naive_ops_per_s']:.2f}",
             f"{skyline['optimised_ops_per_s']:.2f}", f"{skyline['speedup']:.1f}x"],
            ["full sim day (30 q)", f"{e2e['naive_days_per_hour']:.1f}/h",
             f"{e2e['optimised_days_per_hour']:.1f}/h", f"{e2e['speedup']:.1f}x"],
        ],
        widths=[22, 16, 18, 10],
    )

    figure_metrics["artifact_stem"] = "hotpath"  # -> BENCH_hotpath.json
    figure_metrics["gain_window_update"] = gain
    figure_metrics["skyline_schedule"] = skyline
    figure_metrics["full_sim_day"] = e2e
    benchmark.extra_info.update(
        gain_speedup=gain["speedup"],
        skyline_speedup=skyline["speedup"],
        e2e_speedup=e2e["speedup"],
    )

    # Acceptance floors (the measured margins are far larger; these trip
    # only on a genuine hot-path regression).
    assert gain["speedup"] >= 3.0
    assert skyline["speedup"] >= 1.2
    assert e2e["speedup"] >= 1.5
