"""Table 4: basic statistics of the scientific dataflows.

Paper values (operator runtimes, seconds):

    Montage     #100  min 3.82  max  49.32  mean  11.32  stdev   2.95
    Ligo        #100  min 4.03  max 689.39  mean 222.33  stdev 241.42
    Cybershake  #100  min 0.55  max 199.43  mean  22.97  stdev  25.08

and input files (MB):

    Montage     #20  min 0.01  max     4.02  mean    3.22  stdev    1.65
    Ligo        #53  min 0.86  max    14.91  mean   14.24  stdev    2.70
    Cybershake  #52  min 1.81  max 19169.75  mean 1459.08  stdev 5091.69
"""

import numpy as np

from conftest import print_header, print_rows

PAPER_RUNTIME = {
    "montage": (3.82, 49.32, 11.32, 2.95),
    "ligo": (4.03, 689.39, 222.33, 241.42),
    "cybershake": (0.55, 199.43, 22.97, 25.08),
}
PAPER_INPUTS = {
    "montage": (20, 0.01, 4.02, 3.22, 1.65),
    "ligo": (53, 0.86, 14.91, 14.24, 2.70),
    "cybershake": (52, 1.81, 19169.75, 1459.08, 5091.69),
}


def _collect(workload, trials=10):
    stats = {}
    for app in ("montage", "ligo", "cybershake"):
        runtimes, inputs = [], None
        for _ in range(trials):
            flow = workload.next_dataflow(app, issued_at=0.0)
            runtimes.extend(op.runtime for op in flow.operators.values())
            inputs = [f.size_mb for op in flow.operators.values() for f in op.inputs]
        stats[app] = (np.array(runtimes), np.array(inputs))
    return stats


def test_table4_workflow_statistics(benchmark, workload):
    stats = benchmark.pedantic(_collect, args=(workload,), rounds=1, iterations=1)

    print_header("Table 4 — Basic statistics of the scientific dataflows")
    rows = []
    for app, (runtimes, _) in stats.items():
        p = PAPER_RUNTIME[app]
        rows.append([
            app, len(runtimes) // 10,
            f"{runtimes.min():.2f} ({p[0]})",
            f"{runtimes.max():.2f} ({p[1]})",
            f"{runtimes.mean():.2f} ({p[2]})",
            f"{runtimes.std():.2f} ({p[3]})",
        ])
    print("Operator runtimes, seconds — measured (paper):")
    print_rows(["app", "#ops", "min", "max", "mean", "stdev"], rows,
               widths=[12, 6, 18, 20, 20, 20])

    rows = []
    for app, (_, inputs) in stats.items():
        count, low, high, mean, std = PAPER_INPUTS[app]
        rows.append([
            app, f"{len(inputs)} ({count})",
            f"{inputs.min():.2f} ({low})",
            f"{inputs.max():.2f} ({high})",
            f"{inputs.mean():.2f} ({mean})",
            f"{inputs.std():.2f} ({std})",
        ])
    print("\nInput files, MB — measured (paper):")
    print_rows(["app", "#files", "min", "max", "mean", "stdev"], rows,
               widths=[12, 12, 18, 24, 22, 22])

    for app, (runtimes, inputs) in stats.items():
        _, _, mean, _ = PAPER_RUNTIME[app]
        assert runtimes.mean() == np.float64(runtimes.mean())
        assert abs(runtimes.mean() - mean) / mean < 0.25, app
        count = PAPER_INPUTS[app][0]
        assert len(inputs) == count
        benchmark.extra_info[f"{app}_runtime_mean"] = float(runtimes.mean())
        benchmark.extra_info[f"{app}_input_mean_mb"] = float(inputs.mean())
