"""Ablation: container reuse + local-disk caching across dataflows.

Section 6.1 keeps idle containers alive until their leased quantum
expires and lets their local disks cache table partitions ("If the data
required as input from the operator are already in the cache, data
transfer is considered to be 0", LRU eviction). The headline benchmarks
run without inter-dataflow pooling to isolate the index-management
effect; this ablation quantifies what pooling itself contributes under a
backlogged single-app workload, where container hand-offs (and therefore
warm caches) actually occur.
"""

from dataclasses import replace

import numpy as np

from conftest import print_header, print_rows

from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload


def _run(config, enable_pooling):
    cfg = replace(
        config,
        total_time_s=min(config.total_time_s, 7200.0),
        enable_pooling=enable_pooling,
        max_skyline=2,
        scheduler_containers=8,
    )
    workload = build_workload(cfg.pricing, seed=cfg.seed)
    service = QaaSService(workload, cfg, Strategy.NO_INDEX)
    events = [ArrivalEvent(time=1.0 + i, app="cybershake") for i in range(18)]
    metrics = service.run(events)
    return metrics, service


def _sweep(config):
    plain, _ = _run(config, enable_pooling=False)
    pooled, service = _run(config, enable_pooling=True)
    return plain, pooled, service


def test_ablation_container_pooling(benchmark, config):
    plain, pooled, service = benchmark.pedantic(
        _sweep, args=(config,), rounds=1, iterations=1
    )

    print_header("Ablation — container reuse and caching across dataflows")
    rows = [
        ["no pooling", plain.num_finished, plain.compute_quanta(),
         f"{np.mean([o.makespan_quanta for o in plain.outcomes]):.2f}", "-", "-"],
        ["pooling", pooled.num_finished, pooled.compute_quanta(),
         f"{np.mean([o.makespan_quanta for o in pooled.outcomes]):.2f}",
         service.pool.stats.containers_reused,
         f"{service.pool.stats.reuse_rate * 100:.0f}%"],
    ]
    print_rows(
        ["mode", "#finished", "compute quanta", "avg makespan (q)", "reused", "reuse rate"],
        rows, widths=[14, 12, 16, 18, 10, 12],
    )
    hits = sum(
        c.cache.stats.hits for c in service.pool.live_containers(float("inf"))
    )
    print(f"\npool: created={service.pool.stats.containers_created} "
          f"expired={service.pool.stats.containers_expired} "
          f"quanta saved by reuse={service.pool.stats.quanta_saved_by_reuse:.1f}")

    # Pooling must never hurt, and under a backlog it must actually
    # reuse containers; warm caches make later dataflows no slower.
    assert pooled.compute_quanta() <= plain.compute_quanta()
    assert service.pool.stats.containers_reused > 0
    assert np.mean([o.makespan_quanta for o in pooled.outcomes]) <= (
        np.mean([o.makespan_quanta for o in plain.outcomes]) + 1e-9
    )
    benchmark.extra_info["reused"] = service.pool.stats.containers_reused
    benchmark.extra_info["quanta_saved"] = round(
        service.pool.stats.quanta_saved_by_reuse, 1
    )
