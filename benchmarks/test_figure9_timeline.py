"""Figure 9: Montage timeline with interleaved build operators.

The paper shows the Montage schedule across ~10 containers and 3 quanta
with build operators (green) packed into the idle periods (red): the LP
interleaving algorithm reduces the initial idle time of 7.14 quanta to
1.6 quanta. We reproduce the same experiment and render the timeline as
ASCII art ('#' dataflow, '+' build, '.' idle).
"""

import numpy as np

from conftest import print_header

from repro.cloud.pricing import PAPER_PRICING
from repro.interleave.lp import lp_interleave, select_fastest
from repro.interleave.slots import BuildCandidate
from repro.scheduling.skyline import SkylineScheduler


def _candidates(rng, count=150):
    return [
        BuildCandidate(
            index_name=f"idx{i:03d}", partition_id=0,
            duration_s=float(rng.uniform(4.0, 30.0)),
            gain=float(rng.uniform(0.5, 5.0)),
        )
        for i in range(count)
    ]


def _run(workload):
    rng = np.random.default_rng(31)
    flow = workload.next_dataflow("montage", issued_at=0.0)
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=12)
    results = lp_interleave(flow, _candidates(rng), scheduler)
    return select_fastest(results)


def _ascii_timeline(interleaved, cell_s=10.0):
    combined = interleaved.combined()
    build_ops = {a.op_name for a in interleaved.build_assignments}
    lines = []
    for cid, items in sorted(combined.by_container().items()):
        first, last = combined.leased_quanta(cid)
        width = int((last - first) * 60.0 / cell_s)
        cells = ["."] * width
        for a in items:
            mark = "+" if a.op_name in build_ops else "#"
            lo = int((a.start - first * 60.0) / cell_s)
            hi = max(lo + 1, int(np.ceil((a.end - first * 60.0) / cell_s)))
            for i in range(max(lo, 0), min(hi, width)):
                cells[i] = mark
        lines.append(f"c{cid:02d} q{first}| {''.join(cells)}")
    return lines


def test_figure9_montage_timeline(benchmark, workload):
    interleaved = benchmark.pedantic(_run, args=(workload,), rounds=1, iterations=1)

    frag_before = interleaved.schedule.fragmentation_quanta()
    frag_after = interleaved.combined().fragmentation_quanta()

    print_header("Figure 9 — Montage timeline with build index ops")
    print("one cell = 10 s;  '#' dataflow op, '+' build op, '.' idle\n")
    for line in _ascii_timeline(interleaved):
        print(line)
    print(
        f"\nidle before interleaving: {frag_before:.2f} quanta (paper: 7.14)"
        f"\nidle after interleaving:  {frag_after:.2f} quanta (paper: 1.60)"
        f"\nbuild operators placed:   {interleaved.num_builds}"
    )

    # The paper's observation: a significant amount of the idle compute
    # time is consumed by builds (7.14 -> 1.6 quanta, i.e. ~78% used).
    assert interleaved.num_builds > 0
    assert frag_after < 0.5 * frag_before
    # Interleaving never changes the dataflow's time or money.
    assert interleaved.combined().money_quanta() == interleaved.schedule.money_quanta()
    benchmark.extra_info["idle_before_quanta"] = round(frag_before, 2)
    benchmark.extra_info["idle_after_quanta"] = round(frag_after, 2)
    benchmark.extra_info["builds_placed"] = interleaved.num_builds
