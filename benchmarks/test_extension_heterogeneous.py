"""Extension: heterogeneous cloud resources (the paper's future work).

"Future work could evaluate the benefits of index management for
scenarios with heterogeneous cloud resources" (Section 7). We extend
Algorithm 4 to a menu of VM flavours (small 0.5x at $0.05, standard 1x
at $0.10, large 2x at $0.22 per quantum) and compare the schedule
skylines: the heterogeneous menu must dominate or extend the homogeneous
skyline on both ends — faster points (large VMs shorten the critical
path) and cheaper points (small VMs waste less of their final quantum).
"""

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.scheduling.hetero import HeterogeneousSkylineScheduler
from repro.scheduling.skyline import SkylineScheduler


def _sweep(workload):
    out = {}
    for app in ("montage", "cybershake"):
        flow_hetero = workload.next_dataflow(app, issued_at=0.0)
        flow_homo = workload.next_dataflow(app, issued_at=0.0)
        hetero = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=10, max_containers=15
        ).schedule(flow_hetero)
        homo = SkylineScheduler(
            PAPER_PRICING, max_skyline=6, max_containers=15
        ).schedule(flow_homo)
        out[app] = (hetero, homo)
    return out


def test_extension_heterogeneous_vms(benchmark, workload):
    results = benchmark.pedantic(_sweep, args=(workload,), rounds=1, iterations=1)

    print_header("Extension — heterogeneous VM types vs homogeneous containers")
    for app, (hetero, homo) in results.items():
        print(f"\n{app}:")
        rows = [["homogeneous", f"{s.makespan_quanta():.2f}", f"{s.money_dollars():.2f}", "-"]
                for s in homo]
        rows += [[
            "heterogeneous", f"{s.makespan_quanta():.2f}", f"{s.money_dollars():.2f}",
            ",".join(f"{k}x{v}" for k, v in sorted(s.types_used().items())),
        ] for s in hetero]
        print_rows(["scheduler", "time (quanta)", "money ($)", "VM mix"], rows,
                   widths=[16, 14, 12, 36])

    for app, (hetero, homo) in results.items():
        fastest_hetero = min(s.makespan_seconds() for s in hetero)
        fastest_homo = min(s.makespan_seconds() for s in homo)
        cheapest_hetero = min(s.money_dollars() for s in hetero)
        cheapest_homo = min(s.money_dollars() for s in homo)
        # Large VMs strictly shorten the fastest point; the cheapest end
        # stays within pruning noise of the homogeneous optimum (the
        # standard flavour is still in the menu, but the bounded skyline
        # branches three ways per step and may drop an exact tie).
        assert fastest_hetero < fastest_homo - 1e-6, app
        assert cheapest_hetero <= cheapest_homo * 1.10 + 1e-6, app
        benchmark.extra_info[f"{app}_fastest_speedup"] = round(
            fastest_homo / fastest_hetero, 2
        )
        benchmark.extra_info[f"{app}_cheapest_saving_pct"] = round(
            100 * (1 - cheapest_hetero / cheapest_homo), 1
        )
