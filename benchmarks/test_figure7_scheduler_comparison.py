"""Figure 7: offline skyline scheduler vs online load-balance scheduler.

Cybershake dataflows are scaled in two regimes:

* CPU-intensive — runtimes scaled up to 10x, data scaled to 0.01x. The
  online balancer does well here (fast but slightly more expensive).
* Data-intensive — data sizes scaled up to 100x. Load balancing ignores
  data placement: the paper reports schedules up to 2x slower and up to
  4x more expensive than the offline scheduler.

The y-axis is the percentage difference between the online and the
offline scheduler (positive = online worse).
"""

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.transform import scale_dataflow
from repro.scheduling.online_lb import OnlineLoadBalanceScheduler
from repro.scheduling.skyline import SkylineScheduler

CPU_SCALES = (1.0, 2.0, 5.0, 10.0)
DATA_SCALES = (1.0, 10.0, 50.0, 100.0)


def _compare(flow):
    offline = SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=20)
    online = OnlineLoadBalanceScheduler(PAPER_PRICING, num_containers=10)
    fastest = min(offline.schedule(flow), key=lambda s: s.makespan_seconds())
    lb = online.schedule(flow)
    dt = 100.0 * (lb.makespan_seconds() - fastest.makespan_seconds()) / fastest.makespan_seconds()
    dm = 100.0 * (lb.money_quanta() - fastest.money_quanta()) / fastest.money_quanta()
    return dt, dm


def _sweep(workload):
    base = workload.next_dataflow("cybershake", issued_at=0.0)
    cpu_rows = []
    for scale in CPU_SCALES:
        flow = scale_dataflow(base, cpu_factor=scale, data_factor=0.01)
        cpu_rows.append((scale, *_compare(flow)))
    data_rows = []
    for scale in DATA_SCALES:
        # The data whose placement the scheduler controls is what gets
        # scaled; input files stay small so both schedulers pay the same
        # storage-read tax and the placement effect is isolated.
        flow = scale_dataflow(base, cpu_factor=1.0, data_factor=scale, input_factor=0.01)
        data_rows.append((scale, *_compare(flow)))
    return cpu_rows, data_rows


def test_figure7_scheduler_comparison(benchmark, workload):
    cpu_rows, data_rows = benchmark.pedantic(
        _sweep, args=(workload,), rounds=1, iterations=1
    )

    print_header("Figure 7 — Online load-balance vs offline skyline scheduler")
    print("CPU-intensive regime (runtimes scaled, data x0.01):")
    print_rows(
        ["cpu scale", "Δ time % (online-offline)", "Δ money %"],
        [[f"{s:g}x", f"{t:+.1f}", f"{m:+.1f}"] for s, t, m in cpu_rows],
        widths=[12, 28, 14],
    )
    print("\nData-intensive regime (data sizes scaled):")
    print_rows(
        ["data scale", "Δ time % (online-offline)", "Δ money %"],
        [[f"{s:g}x", f"{t:+.1f}", f"{m:+.1f}"] for s, t, m in data_rows],
        widths=[12, 28, 14],
    )

    # CPU-intensive: the online balancer is competitive — its time gap
    # stays moderate and does not grow with CPU scale (the paper:
    # "performs well for these type of dataflows").
    cpu_dt = [t for _, t, _ in cpu_rows]
    assert max(cpu_dt) < 40.0
    cpu_dm = [m for _, _, m in cpu_rows]
    assert all(abs(m) < 25.0 for m in cpu_dm)
    # Data-intensive: online degrades sharply as data grows — the paper
    # reports schedules up to 2x slower and up to 4x more expensive; in
    # our substrate the penalty lands mostly on money (extra containers
    # idling on cross-container transfers).
    small, big = data_rows[0], data_rows[-1]
    assert big[2] > 30.0, f"online should be much more expensive at 100x data: {big}"
    assert big[2] > small[2] + 20.0
    assert all(t > 0 for _, t, _ in data_rows), "offline is faster throughout"
    benchmark.extra_info["online_slower_at_100x_data_pct"] = round(big[1], 1)
    benchmark.extra_info["online_money_at_100x_data_pct"] = round(big[2], 1)
