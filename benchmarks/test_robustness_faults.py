"""Robustness under injected faults: retries, degradation, checkpoints.

Two experiments on top of the fault-injection layer:

1. **Service under transient failures** — the full QaaS service runs with
   a 5 % per-operator transient failure rate (plus crashes/storage loss
   in the sweep). Every dataflow must still complete, retries stay
   within the backoff budget, and Gain must keep beating No-Index on
   dataflows finished even while paying for the recovery overhead.

2. **Checkpointing under preemption** — a controlled simulator loop
   where every build (50 s) is larger than any idle gap (30 s), so a
   build can *only* complete by accumulating checkpointed progress
   across preemptions. Restart-from-scratch completes nothing; a 5 s
   checkpoint interval completes most partitions, all via resumes.
"""

from dataclasses import replace

import numpy as np
from conftest import print_header, print_rows

from repro import run_experiment
from repro.cloud.pricing import PAPER_PRICING
from repro.core.service import Strategy
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.faults.injector import FaultInjector, FaultProfile
from repro.faults.retry import RetryPolicy
from repro.interleave.lp import InterleavedSchedule
from repro.interleave.slots import BuildCandidate
from repro.scheduling.schedule import Assignment, Schedule


def _faulty_config(config, **rates):
    # The full default horizon: with a shorter one, index storage is
    # still front-loaded and Gain's cost lead has not amortised yet.
    return replace(config, **rates) if rates else config


def test_service_survives_transient_failures(benchmark, config):
    """5 % per-operator failures: everything finishes, retries bounded."""
    faulty = _faulty_config(config, operator_failure_rate=0.05)

    def run():
        return {
            s: run_experiment(s, generator="phase", config=faulty)
            for s in (Strategy.NO_INDEX, Strategy.RANDOM, Strategy.GAIN)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Service under 5% per-operator transient failures")
    rows = []
    for strategy, m in results.items():
        rows.append([
            strategy.value, m.num_finished,
            f"{m.cost_per_dataflow_quanta():.2f}",
            m.operator_retries, m.operators_recovered, m.retries_exhausted,
        ])
    print_rows(
        ["strategy", "finished", "cost/df (q)", "retries", "recovered",
         "exhausted"],
        rows, widths=[16, 10, 13, 9, 11, 10],
    )

    gain, none = results[Strategy.GAIN], results[Strategy.NO_INDEX]
    for m in results.values():
        # Every executed dataflow ran to completion despite the faults.
        assert m.outcomes
        assert all(o.finished_at > o.started_at for o in m.outcomes)
        assert m.operator_retries > 0
        # Backoff budget: retries recovered inline or via clean respawn;
        # exhaustion is the rare tail, never the common case.
        assert m.retries_exhausted <= 0.02 * m.operator_retries + 2
        # Every faulted operator either recovered inline or ran clean
        # after exhausting its budget — none is simply lost.
        assert m.operators_recovered + m.retries_exhausted > 0
    assert gain.num_finished >= none.num_finished
    assert gain.cost_per_dataflow_quanta() < none.cost_per_dataflow_quanta()

    benchmark.extra_info.update({
        f"{s.value}_{k}": v
        for s, m in results.items() for k, v in m.fault_summary().items()
        if v
    })


def test_fault_rate_sweep_gain_still_dominates(benchmark, config):
    """Gain keeps its lead over No-Index as fault pressure rises."""
    sweep = [
        ("none", {}),
        ("transient 5%", {"operator_failure_rate": 0.05}),
        ("mixed", {"operator_failure_rate": 0.05,
                   "container_crash_rate": 0.02,
                   "storage_put_failure_rate": 0.05,
                   "straggler_rate": 0.02}),
    ]

    def run():
        table = {}
        for label, rates in sweep:
            faulty = _faulty_config(config, **rates)
            table[label] = {
                s: run_experiment(s, generator="phase", config=faulty)
                for s in (Strategy.NO_INDEX, Strategy.GAIN)
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fault-rate sweep — Gain vs No-Index")
    rows = []
    for label, by_strategy in table.items():
        none, gain = by_strategy[Strategy.NO_INDEX], by_strategy[Strategy.GAIN]
        rows.append([
            label, none.num_finished, gain.num_finished,
            f"{none.cost_per_dataflow_quanta():.2f}",
            f"{gain.cost_per_dataflow_quanta():.2f}",
            gain.total_faults_injected, gain.degraded_builds,
        ])
    print_rows(
        ["faults", "none fin", "gain fin", "none c/df", "gain c/df",
         "injected", "degraded"],
        rows, widths=[16, 10, 10, 11, 11, 10, 9],
    )

    for label, by_strategy in table.items():
        none, gain = by_strategy[Strategy.NO_INDEX], by_strategy[Strategy.GAIN]
        assert gain.num_finished >= none.num_finished, label
        assert gain.cost_per_dataflow_quanta() < none.cost_per_dataflow_quanta(), label
    clean_gain = table["none"][Strategy.GAIN]
    assert clean_gain.total_faults_injected == 0


def _checkpoint_experiment(ckpt_interval: float):
    """Builds (50 s) never fit an idle gap (30 s); only checkpoints help.

    One container runs a 30 s dataflow op per round, leaving a 30 s idle
    tail in its quantum. Each round re-schedules every unbuilt
    partition's *remaining* work into that tail — exactly what the tuner
    does with ``Index.checkpoint_seconds`` — under 10 % container
    preemption.
    """
    FULL, PARTS, ROUNDS = 50.0, 8, 12
    profile = FaultProfile(container_crash_rate=0.10,
                           checkpoint_interval_s=ckpt_interval)
    sim = ExecutionSimulator(
        PAPER_PRICING,
        injector=FaultInjector(profile, rng=np.random.default_rng(7)),
        retry=RetryPolicy(rng=np.random.default_rng(8)),
    )
    progress = {pid: 0.0 for pid in range(PARTS)}
    built: set[int] = set()
    resumes = 0
    for rnd in range(ROUNDS):
        flow = Dataflow(name=f"d{rnd}")
        flow.add_operator(Operator(name="a", runtime=30.0))
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING,
                         assignments=[Assignment("a", 0, 0.0, 30.0)])
        builds, cands, t = [], [], 30.0
        for pid in range(PARTS):
            if pid in built:
                continue
            remaining = max(FULL - progress[pid], 1e-6)
            cand = BuildCandidate("t__x", pid, remaining, 1.0)
            cands.append(cand)
            builds.append(Assignment(cand.op_name, 0, t, t + remaining))
            t += remaining
        inter = InterleavedSchedule(schedule=sched, build_assignments=builds,
                                    scheduled_builds=cands)
        result = sim.execute(inter, start_time=rnd * 1000.0)
        for done in result.builds_completed:
            if progress[done.partition_id] > 0:
                resumes += 1
            built.add(done.partition_id)
        for ckpt in result.checkpoints:
            progress[ckpt.partition_id] += ckpt.seconds
    return len(built), resumes


def test_checkpointing_beats_restart_under_preemption(benchmark):
    """10 % preemption: checkpointed builds strictly out-build scratch."""

    def run():
        return {ck: _checkpoint_experiment(ck) for ck in (0.0, 5.0, 15.0)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Build checkpointing under 10% preemption "
                 "(8 partitions x 50 s builds, 30 s gaps, 12 rounds)")
    rows = [[f"{ck:.0f} s" if ck else "off (scratch)", built, resumes]
            for ck, (built, resumes) in results.items()]
    print_rows(["checkpoint interval", "partitions built", "resumes"],
               rows, widths=[22, 18, 10])

    scratch_built, _ = results[0.0]
    fine_built, fine_resumes = results[5.0]
    # No build fits a gap, so restart-from-scratch can never finish one.
    assert scratch_built == 0
    # Checkpointing completes strictly more partitions, all via resumes.
    assert fine_built > scratch_built
    assert fine_resumes == fine_built
    # A coarser interval banks less progress per round, never more builds.
    assert results[15.0][0] <= fine_built

    benchmark.extra_info.update({
        "scratch_built": scratch_built,
        "ckpt5_built": fine_built,
        "ckpt5_resumes": fine_resumes,
    })
