"""Table 6: index speedup on the four queries, measured on the engine.

Paper values (real DBMS on lineitem scale 2):

    Order by              44.730 s -> 6.010 s     7.44x
    Select range (large)   5.103 s -> 0.054 s    94.44x
    Select range (small)   4.921 s -> 0.016 s   307.50x
    Lookup                 4.393 s -> 0.007 s   627.14x

Our engine is a pure-Python micro engine, so absolute factors differ; the
reproduction target is the ordering (lookup >> small range >> large range
>> order by) with every query faster under the index.
"""

import os

from conftest import print_header, print_rows

from repro.engine.queries import measure_table6_speedups

PAPER = {
    "order_by": ("Order by", 44.730, 6.010, 7.44),
    "range_large": ("Select range (large)", 5.103, 0.054, 94.44),
    "range_small": ("Select range (small)", 4.921, 0.016, 307.50),
    "lookup": ("Lookup", 4.393, 0.007, 627.14),
}

_NUM_ROWS = 400_000 if os.environ.get("REPRO_FULL") == "1" else 150_000


def test_table6_index_speedup(benchmark, figure_metrics):
    results = benchmark.pedantic(
        measure_table6_speedups,
        kwargs={"num_rows": _NUM_ROWS, "repeats": 3},
        rounds=1,
        iterations=1,
    )

    print_header(f"Table 6 — Index speedup ({_NUM_ROWS:,} rows, B+tree vs scan)")
    rows = []
    for key in ("order_by", "range_large", "range_small", "lookup"):
        timing = results[key]
        name, pno, pidx, pspeed = PAPER[key]
        rows.append([
            name,
            f"{timing.no_index_seconds * 1e3:9.2f} ms",
            f"{timing.index_seconds * 1e3:9.3f} ms",
            f"{timing.speedup:8.1f}x ({pspeed}x)",
        ])
        benchmark.extra_info[f"{key}_speedup"] = round(timing.speedup, 1)
        figure_metrics[f"{key}_speedup"] = round(timing.speedup, 1)
    print_rows(["query", "no-index", "index", "speedup (paper)"], rows,
               widths=[24, 16, 16, 22])

    # Every query is faster with the index.
    assert all(t.speedup > 1.0 for t in results.values())
    # The paper's ordering holds: lookup > small range > large range > order by.
    assert (
        results["lookup"].speedup
        > results["range_small"].speedup
        > results["range_large"].speedup
        > results["order_by"].speedup
    )
