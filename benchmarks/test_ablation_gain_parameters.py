"""Ablations: α (time/money weight) and D (gain fading controller).

Two knobs the paper calls out:

* α rotates the preference in the (time-gain, money-gain) plane (Fig. 4);
  with both gains positively correlated in this workload its main effect
  is on the *ranking* (which indexes are built first).
* D controls how fast historical dataflows fade (Section 4, and "automatic
  learning of the controller" is the paper's stated future work). A small
  D makes the tuner myopic — fewer indexes amortise; a large D makes it
  sluggish to delete after phase changes.
"""

from dataclasses import replace

from conftest import print_header, print_rows

from repro import Strategy, default_config, run_experiment


def _short(config, **overrides):
    cfg = replace(config, total_time_s=min(config.total_time_s, 3600.0))
    return replace(cfg, **overrides) if overrides else cfg


def _alpha_sweep(config):
    rows = []
    for alpha in (0.1, 0.5, 0.9):
        cfg = _short(config, alpha=alpha)
        m = run_experiment(Strategy.GAIN, generator="phase", config=cfg)
        rows.append((alpha, m.num_finished, m.cost_per_dataflow_quanta(),
                     m.indexes_created, m.storage_dollars()))
    return rows


def _fading_sweep(config):
    rows = []
    for fade in (1.0, 5.0, 20.0):
        cfg = _short(config, fade_quanta=fade, storage_window_quanta=fade)
        m = run_experiment(Strategy.GAIN, generator="phase", config=cfg)
        rows.append((fade, m.num_finished, m.indexes_created, m.indexes_deleted,
                     m.storage_dollars()))
    return rows


def test_ablation_alpha(benchmark, config):
    rows = benchmark.pedantic(_alpha_sweep, args=(config,), rounds=1, iterations=1)
    print_header("Ablation — time/money weight α (Gain, phase, short horizon)")
    print_rows(
        ["alpha", "#finished", "cost/df (q)", "idx created", "storage $"],
        [[a, n, f"{c:.2f}", i, f"{s:.2f}"] for a, n, c, i, s in rows],
        widths=[8, 12, 14, 14, 12],
    )
    # All α values keep the service functional and building indexes.
    assert all(n > 0 for _, n, _, _, _ in rows)
    assert any(i > 0 for _, _, _, i, _ in rows)
    for a, n, c, i, s in rows:
        benchmark.extra_info[f"alpha_{a}_finished"] = n


def test_ablation_fading(benchmark, config):
    rows = benchmark.pedantic(_fading_sweep, args=(config,), rounds=1, iterations=1)
    print_header("Ablation — gain fading controller D (Gain, phase, short horizon)")
    print_rows(
        ["D (quanta)", "#finished", "idx created", "idx deleted", "storage $"],
        [[d, n, i, x, f"{s:.2f}"] for d, n, i, x, s in rows],
        widths=[12, 12, 14, 14, 12],
    )
    by_fade = {d: (n, i, x, s) for d, n, i, x, s in rows}
    # A myopic controller (D=1) builds fewer indexes than D=5.
    assert by_fade[1.0][1] <= by_fade[5.0][1]
    for d, n, i, x, s in rows:
        benchmark.extra_info[f"D_{d}_created"] = i
        benchmark.extra_info[f"D_{d}_deleted"] = x
