"""Figure 8: number of indexes scheduled per skyline point, LP vs online.

The paper's two findings for Montage:

* The LP interleaving algorithm schedules significantly more build
  operators than the online algorithm (fragmentation is known up front).
* The two skylines differ (the online algorithm's build operators
  interact with the dataflow placement, yielding cheaper schedules).
"""

import numpy as np

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.interleave.lp import lp_interleave
from repro.interleave.online import online_interleave
from repro.interleave.slots import BuildCandidate
from repro.scheduling.skyline import SkylineScheduler


def _candidates(rng, count=120):
    return [
        BuildCandidate(
            index_name=f"idx{i:03d}", partition_id=0,
            duration_s=float(rng.uniform(5.0, 35.0)),
            gain=float(rng.uniform(0.5, 5.0)),
        )
        for i in range(count)
    ]


def _run(workload):
    rng = np.random.default_rng(23)
    cands = _candidates(rng)
    lp_flow = workload.next_dataflow("montage", issued_at=0.0)
    lp = lp_interleave(
        lp_flow, cands, SkylineScheduler(PAPER_PRICING, max_skyline=6, max_containers=30)
    )
    online_flow = workload.next_dataflow("montage", issued_at=0.0)
    online = online_interleave(
        online_flow, cands, SkylineScheduler(PAPER_PRICING, max_skyline=6, max_containers=30)
    )
    return lp, online


def test_figure8_indexes_scheduled(benchmark, workload, figure_metrics):
    lp, online = benchmark.pedantic(_run, args=(workload,), rounds=1, iterations=1)

    print_header("Figure 8 — Indexes scheduled per skyline point (Montage)")
    rows = []
    for label, results in (("LP", lp), ("Online", online)):
        for inter in results:
            rows.append([
                label,
                f"{inter.schedule.money_quanta()}",
                f"{inter.schedule.makespan_quanta():.2f}",
                inter.num_builds,
            ])
    print_rows(["algorithm", "money (quanta)", "time (quanta)", "#indexes"], rows,
               widths=[12, 16, 16, 10])

    lp_max = max(i.num_builds for i in lp)
    online_max = max(i.num_builds for i in online)
    print(f"\nmax builds: LP={lp_max} online={online_max}")
    # LP schedules significantly more build operators.
    assert lp_max > online_max
    assert lp_max >= 1.3 * max(online_max, 1)
    # The two skylines are not the same (money points differ).
    lp_money = sorted(i.schedule.money_quanta() for i in lp)
    online_money = sorted(i.schedule.money_quanta() for i in online)
    assert lp_money != online_money
    benchmark.extra_info["lp_max_builds"] = lp_max
    benchmark.extra_info["online_max_builds"] = online_max
    figure_metrics["lp_max_builds"] = lp_max
    figure_metrics["online_max_builds"] = online_max
