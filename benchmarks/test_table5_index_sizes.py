"""Table 5: indexes on TPC-H ``lineitem`` (scale 2, ~12M rows, 1.4 GB).

Paper values:

    comment       text      422.30 MB   30.16 %
    shipinstruct  20 chars  248.95 MB   17.78 %
    commitdate    date      225.91 MB   16.13 %
    orderkey      integer   146.99 MB   10.49 %
"""

from conftest import print_header, print_rows

from repro.data.index_model import IndexCostModel, IndexSpec
from repro.data.tpch import TABLE5_COLUMNS, lineitem_table

PAPER = {
    "comment": (422.30, 30.16),
    "shipinstruct": (248.95, 17.78),
    "commitdate": (225.91, 16.13),
    "orderkey": (146.99, 10.49),
}


def _compute(pricing):
    table = lineitem_table(scale=2.0)
    model = IndexCostModel(pricing)
    table_mb = table.size_mb()
    sizes = {
        column: model.index_size_mb(table, IndexSpec("lineitem", (column,)))
        for column in TABLE5_COLUMNS
    }
    return table, table_mb, sizes


def test_table5_index_sizes(benchmark, pricing):
    table, table_mb, sizes = benchmark.pedantic(
        _compute, args=(pricing,), rounds=1, iterations=1
    )

    print_header("Table 5 — Indexes on table lineitem (scale 2)")
    print(f"table: {table.num_records:,} rows, {table_mb:.1f} MB, "
          f"{len(table.partitions)} partitions of <=128 MB")
    rows = []
    for column in TABLE5_COLUMNS:
        size = sizes[column]
        pct = 100.0 * size / table_mb
        psize, ppct = PAPER[column]
        rows.append([
            column,
            f"{size:8.2f} ({psize})",
            f"{pct:6.2f} % ({ppct} %)",
        ])
    print_rows(["column", "index size MB (paper)", "% table (paper)"], rows,
               widths=[16, 26, 24])

    for column in TABLE5_COLUMNS:
        psize, _ = PAPER[column]
        assert abs(sizes[column] - psize) / psize < 0.02, column
        benchmark.extra_info[f"{column}_mb"] = round(sizes[column], 2)
    # Ordering must match the paper exactly.
    ordered = sorted(sizes, key=sizes.get, reverse=True)
    assert tuple(ordered) == TABLE5_COLUMNS
