"""Figure 14: the random-generator service experiment (Section 6.5.2).

Applications arrive uniformly at random, so the index working set never
stabilises: indexes essentially never become non-beneficial and are
stored for longer. The Gain strategy still finishes more dataflows at a
lower average cost than the baselines, but the cost reduction is smaller
than under the phase generator.
"""

import pytest

from conftest import print_header, print_rows

from repro import Strategy, run_experiment

_RESULTS: dict[str, object] = {}

_ORDER = (Strategy.NO_INDEX, Strategy.RANDOM, Strategy.GAIN_NO_DELETE, Strategy.GAIN)
_LABEL = {
    Strategy.NO_INDEX: "No Index",
    Strategy.RANDOM: "Random",
    Strategy.GAIN_NO_DELETE: "Gain (no delete)",
    Strategy.GAIN: "Gain",
}


def _results(config):
    if not _RESULTS:
        for strategy in _ORDER:
            _RESULTS[strategy.value] = run_experiment(
                strategy, generator="random", config=config
            )
    return {s: _RESULTS[s.value] for s in _ORDER}


def test_figure14_random_generator(benchmark, config):
    results = benchmark.pedantic(_results, args=(config,), rounds=1, iterations=1)

    print_header("Figure 14 — Dataflows finished & cost/dataflow (random generator)")
    rows = []
    for strategy in _ORDER:
        m = results[strategy]
        rows.append([
            _LABEL[strategy],
            m.num_finished,
            f"{m.cost_per_dataflow_quanta():.2f}",
            f"{m.storage_dollars():.2f}",
        ])
    print_rows(
        ["strategy", "#dataflows", "cost/dataflow (q)", "storage $"],
        rows, widths=[20, 12, 20, 12],
    )

    no_index = results[Strategy.NO_INDEX]
    gain = results[Strategy.GAIN]

    # Gain finishes more dataflows at lower cost even on random input.
    assert gain.num_finished > no_index.num_finished
    assert gain.cost_per_dataflow_quanta() < no_index.cost_per_dataflow_quanta()
    benchmark.extra_info["no_index_finished"] = no_index.num_finished
    benchmark.extra_info["gain_finished"] = gain.num_finished
    benchmark.extra_info["gain_cost_q"] = round(gain.cost_per_dataflow_quanta(), 2)


def test_figure14_vs_phase_cost_reduction(benchmark, config):
    """The random workload's cost reduction is smaller than the phase one.

    "the cost per dataflow is reduced, but not as much as in the previous
    experiment ... indexes are stored for a longer period" (Section 6.5.2).
    """
    results = benchmark.pedantic(_results, args=(config,), rounds=1, iterations=1)
    from test_figure12_13_table7_phase import _results as phase_results

    phase = phase_results(config)
    random_ratio = (
        results[Strategy.GAIN].cost_per_dataflow_quanta()
        / results[Strategy.NO_INDEX].cost_per_dataflow_quanta()
    )
    phase_ratio = (
        phase[Strategy.GAIN].cost_per_dataflow_quanta()
        / phase[Strategy.NO_INDEX].cost_per_dataflow_quanta()
    )
    print_header("Figure 14 (cont.) — Cost reduction: random vs phase generator")
    print(f"phase generator:  gain/no-index cost ratio = {phase_ratio:.3f}")
    print(f"random generator: gain/no-index cost ratio = {random_ratio:.3f}")
    assert random_ratio < 1.0
    # The phase workload gives at least as strong a reduction.
    assert phase_ratio <= random_ratio + 0.15
    benchmark.extra_info["phase_ratio"] = round(phase_ratio, 3)
    benchmark.extra_info["random_ratio"] = round(random_ratio, 3)
