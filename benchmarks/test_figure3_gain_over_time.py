"""Figure 3: gain over time of two indexes A and B (Table 2 scenario).

The paper's example: index A is 100 MB, index B is 500 MB; dataflows
arrive at t = 10, 30, 50, 100 with the per-index gains of Table 2;
α = 0.5 and D = 60. Both gains start negative (build + storage cost),
become positive as dataflows use the indexes (B at ~t=30) and then decay
exponentially — B stops being beneficial around t = 125 and is deleted.
"""

import numpy as np

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.data.index_model import Index, IndexCostModel, IndexSpec
from repro.data.table import Column, ColumnType, TableSchema, TableStatistics, partition_table
from repro.tuning.gain import DataflowGainSample, GainModel, GainParameters

#: Table 2 — (arrival quantum, {index: (time gain, money gain)}).
TABLE2 = [
    (10, {"B": (1.0, 3.0)}),
    (30, {"B": (2.0, 5.0)}),
    (50, {"A": (2.0, 8.0), "B": (3.0, 8.0)}),
    (100, {"A": (3.0, 5.0)}),
]


def _index_of_size(name: str, size_mb: float) -> Index:
    """A single-column index whose built size is ~``size_mb``."""
    entry_bytes = 4.82 + 8.0  # key + pointer
    records = int(size_mb * 2**20 / entry_bytes)
    schema = TableSchema(name, (Column("orderkey", ColumnType.INTEGER),
                                Column("payload", ColumnType.TEXT)))
    stats = TableStatistics(avg_field_bytes={"orderkey": 4.82, "payload": 120.0})
    table = partition_table(name, schema, stats, total_records=records)
    return Index(spec=IndexSpec(name, ("orderkey",)), table=table)


def _gain_curves():
    params = GainParameters(
        alpha=0.5, fade_quanta=60.0, window_quanta=float("inf"),
        storage_window_quanta=2.0,
    )
    model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
    indexes = {"A": _index_of_size("ta", 100.0), "B": _index_of_size("tb", 500.0)}
    times = np.arange(0, 160)
    curves = {name: [] for name in indexes}
    for t in times:
        for name, index in indexes.items():
            samples = [
                DataflowGainSample(float(t - at), *gains[name])
                for at, gains in TABLE2
                if at <= t and name in gains
            ]
            curves[name].append(model.evaluate(index, samples).combined_dollars)
    return times, curves


def test_figure3_gain_over_time(benchmark, figure_metrics):
    times, curves = benchmark.pedantic(_gain_curves, rounds=1, iterations=1)

    print_header("Figure 3 — Gain over time of indexes A (100 MB) and B (500 MB)")
    rows = []
    for t in range(0, 160, 10):
        rows.append([t, f"{curves['A'][t]: .4f}", f"{curves['B'][t]: .4f}"])
    print_rows(["t (quanta)", "g(A, t) $", "g(B, t) $"], rows, widths=[12, 14, 14])

    a, b = np.array(curves["A"]), np.array(curves["B"])
    # Both start negative (storage + build cost, no dataflows yet).
    assert a[0] < 0 and b[0] < 0
    # B becomes beneficial once dataflows start using it (paper: ~t=30).
    first_b = int(np.argmax(b > 0))
    assert 10 <= first_b <= 40, first_b
    # A becomes beneficial after its first use at t=50.
    first_a = int(np.argmax(a > 0))
    assert 45 <= first_a <= 80, first_a
    # After the last use, gains decay monotonically...
    assert all(x >= y - 1e-12 for x, y in zip(b[101:], b[102:]))
    # ...and B eventually stops being beneficial (paper: ~t=125).
    later_zero = np.where(b[60:] <= 0)[0]
    assert later_zero.size > 0, "B never stopped being beneficial"
    crossing = 60 + int(later_zero[0])
    print(f"\nB stops being beneficial at t = {crossing} (paper: ~125)")
    benchmark.extra_info["b_beneficial_at"] = first_b
    benchmark.extra_info["b_deleted_at"] = crossing
    figure_metrics["a_beneficial_at_quanta"] = first_a
    figure_metrics["b_beneficial_at_quanta"] = first_b
    figure_metrics["b_deleted_at_quanta"] = crossing
