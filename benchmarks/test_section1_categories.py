"""Section 1's five operator categories, measured on the micro engine.

Table 6 times four queries; the paper's introduction motivates indexes
through five operator categories with complexity arguments:

* Lookup        O(n) -> O(log n) (B+tree) or O(1) (hash)
* Range select  O(n) -> O(log n + k)
* Sorting       O(n log n) -> O(n)
* Grouping      via sorting
* Join          sort-merge O(n+m) on sorted (indexed) inputs

This harness measures all five, including the grouping and join
categories Table 6 leaves out, and asserts the index side wins each one.
"""

import os
import time

from conftest import print_header, print_rows

from repro.engine.btree import BPlusTree
from repro.engine.executor import (
    group_by_btree,
    group_by_sort,
    lookup_btree,
    lookup_hash,
    lookup_scan,
    order_by_btree,
    order_by_sort,
    range_select_btree,
    range_select_scan,
    sort_merge_join,
    sort_merge_join_unindexed,
)
from repro.engine.hashindex import HashIndex
from repro.engine.heap import HeapFile
from repro.engine.queries import build_lineitem_heap

_NUM_ROWS = 200_000 if os.environ.get("REPRO_FULL") == "1" else 80_000


def _timed(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure():
    heap = build_lineitem_heap(_NUM_ROWS, seed=7)
    orderkey_btree = BPlusTree.bulk_load(heap.index_pairs("orderkey"), order=128)
    suppkey_btree = BPlusTree.bulk_load(heap.index_pairs("suppkey"), order=128)
    suppkey_hash = HashIndex.build(heap.index_pairs("suppkey"))
    keys = heap.column("orderkey")
    point = keys[_NUM_ROWS // 2]
    lo, hi = point, point + int((max(keys) - min(keys)) * 0.001)

    rows = {}
    t0, r0 = _timed(lambda: lookup_scan(heap, "orderkey", point))
    t1, r1 = _timed(lambda: lookup_btree(orderkey_btree, point))
    t2, _ = _timed(lambda: lookup_hash(suppkey_hash, heap.column("suppkey")[0]))
    assert sorted(r0) == sorted(r1)
    rows["lookup"] = (t0, t1)

    t0, r0 = _timed(lambda: range_select_scan(heap, "orderkey", lo, hi))
    t1, r1 = _timed(lambda: range_select_btree(orderkey_btree, lo, hi))
    assert sorted(r0) == sorted(r1)
    rows["range select"] = (t0, t1)

    t0, _ = _timed(lambda: order_by_sort(heap, "orderkey"), repeats=2)
    t1, _ = _timed(lambda: order_by_btree(orderkey_btree), repeats=2)
    rows["sorting"] = (t0, t1)

    t0, g0 = _timed(lambda: group_by_sort(heap, "suppkey"), repeats=2)
    t1, g1 = _timed(lambda: group_by_btree(suppkey_btree), repeats=2)
    assert len(g0) == len(g1)
    rows["grouping"] = (t0, t1)

    probe = HeapFile({"suppkey": heap.column("suppkey")[:400]})
    probe_btree = BPlusTree.bulk_load(probe.index_pairs("suppkey"), order=128)
    t0, j0 = _timed(
        lambda: sort_merge_join_unindexed(probe, "suppkey", heap, "suppkey"), repeats=2
    )
    t1, j1 = _timed(
        lambda: sort_merge_join(probe_btree.items(), suppkey_btree.items()), repeats=2
    )
    assert len(j0) == len(j1)
    rows["join"] = (t0, t1)
    return rows


def test_section1_five_categories(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print_header(f"Section 1 — the five operator categories ({_NUM_ROWS:,} rows)")
    table = []
    for category, (t_scan, t_idx) in rows.items():
        table.append([
            category,
            f"{t_scan * 1e3:10.2f} ms",
            f"{t_idx * 1e3:10.3f} ms",
            f"{t_scan / t_idx:8.1f}x",
        ])
    print_rows(["category", "no index", "with index", "speedup"], table,
               widths=[16, 16, 16, 12])

    # Every one of the paper's five categories is faster with an index.
    for category, (t_scan, t_idx) in rows.items():
        assert t_idx < t_scan, category
        benchmark.extra_info[f"{category.replace(' ', '_')}_speedup"] = round(
            t_scan / t_idx, 1
        )
    # And the complexity hierarchy makes the point-access categories the
    # most accelerated.
    speedups = {k: t0 / t1 for k, (t0, t1) in rows.items()}
    assert speedups["lookup"] > speedups["sorting"]
    assert speedups["range select"] > speedups["sorting"]
