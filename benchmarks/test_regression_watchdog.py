"""Adversarial workload shift: the regression watchdog recovers money.

The scenario plants a once-good, now-harmful index: a montage warm-up
phase makes the tuner build montage indexes that genuinely pay for
themselves, then the arrival stream shifts to ligo-only. Tables are
per-application, so from the shift onward every montage index sits on
storage rent with zero probes — exactly the "index whose workload left"
failure mode the watchdog exists for.

Three runs over the identical arrival trace:

* **baseline** — flags off; stranded indexes keep paying rent until the
  horizon ends.
* **observe** — ``roi_ledger=True``; the ledger prices the damage and
  the watchdog flags the regression, but nothing is deleted, so the
  bill matches the baseline to the cent.
* **rollback** — ``watchdog_rollback=True``; flagged indexes are
  dropped through the ordinary delete path within one confirmation
  window, and the total bill comes out strictly lower.
"""

from dataclasses import replace

from conftest import print_header, print_rows

from repro.core.config import ExperimentConfig
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload
from repro.obs import Observation


def _shift_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        total_time_s=90 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=5,
        # Slow the paper's own fading delete rule to a crawl so stranded
        # indexes survive on predicted gain alone; only the watchdog's
        # realized-benefit ledger can tell they stopped paying rent.
        fade_quanta=500.0,
        watchdog_window_quanta=5.0,
        watchdog_hysteresis=1,
    )
    return replace(base, **overrides) if overrides else base


def _shift_events() -> list[ArrivalEvent]:
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(4)]
    events += [
        ArrivalEvent(time=1000.0 + i * 300.0, app="ligo") for i in range(12)
    ]
    return events


def _run(config: ExperimentConfig):
    obs = Observation.recording()
    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN, obs=obs)
    metrics = service.run(_shift_events())
    return metrics, obs


def test_watchdog_recovers_money_after_workload_shift(benchmark, figure_metrics):
    def run():
        return {
            "baseline": _run(_shift_config()),
            "observe": _run(_shift_config(roi_ledger=True)),
            "rollback": _run(_shift_config(watchdog_rollback=True)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Workload shift (montage -> ligo): watchdog rollback")
    rows = []
    for label, (m, obs) in results.items():
        regressions = [
            e for e in obs.journal.events if e["event"] == "index_regression"
        ]
        deletes = [e for e in obs.journal.events if e["event"] == "index_delete"]
        rows.append([
            label, m.num_finished,
            f"{m.compute_dollars:.4f}", f"{m.storage_dollars():.4f}",
            f"{m.total_dollars():.4f}",
            len({e["index"] for e in regressions}), len(deletes),
        ])
    print_rows(
        ["mode", "finished", "compute $", "storage $", "total $",
         "flagged", "deletes"],
        rows, widths=[10, 10, 11, 11, 11, 9, 9],
    )

    base_m, _ = results["baseline"]
    obs_m, obs_obs = results["observe"]
    roll_m, roll_obs = results["rollback"]

    # Every mode serves the same dataflows; the shift never loses work.
    assert base_m.num_finished == obs_m.num_finished == roll_m.num_finished

    # Observe-only prices the regression without touching the bill.
    observe_flags = [
        e for e in obs_obs.journal.events if e["event"] == "index_regression"
    ]
    assert observe_flags, "the shift must strand at least one index"
    assert obs_m.total_dollars() == base_m.total_dollars()

    # Rollback: every flagged index is dropped via the ordinary delete
    # path within one confirmation window of its flag.
    regressions = [
        e for e in roll_obs.journal.events if e["event"] == "index_regression"
    ]
    deletes = [e for e in roll_obs.journal.events if e["event"] == "index_delete"]
    flagged = {str(e["index"]) for e in regressions}
    deleted = {str(e["index"]) for e in deletes}
    assert flagged and flagged <= deleted
    window_s = 5.0 * 60.0
    for name in sorted(flagged):
        flag_t = min(float(e["t"]) for e in regressions if e["index"] == name)
        del_t = min(float(e["t"]) for e in deletes if e["index"] == name)
        assert flag_t <= del_t <= flag_t + window_s, name

    # The recovered rent shows up as a strictly lower bill.
    assert roll_m.storage_dollars() < base_m.storage_dollars()
    assert roll_m.total_dollars() < base_m.total_dollars()

    recovered = base_m.total_dollars() - roll_m.total_dollars()
    benchmark.extra_info.update({
        "flagged": len(flagged),
        "rolled_back": len(flagged & deleted),
        "recovered_dollars": round(recovered, 6),
    })
    figure_metrics["baseline_total_dollars"] = base_m.total_dollars()
    figure_metrics["rollback_total_dollars"] = roll_m.total_dollars()
    figure_metrics["recovered_dollars"] = recovered


def test_watchdog_rollback_run_is_byte_deterministic(benchmark):
    def run():
        return [_run(_shift_config(watchdog_rollback=True)) for _ in range(2)]

    (_, obs_a), (_, obs_b) = benchmark.pedantic(run, rounds=1, iterations=1)
    assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()
    assert obs_a.metrics.to_json() == obs_b.metrics.to_json()
