"""Scale benchmark: the vectorized kernels vs the scalar paths they batch.

Three components at cluster scale, then their end-to-end composite:

* **simulator phase** — one giant interleaved schedule executed by
  ``ExecutionSimulator`` with ``vectorized`` off vs on (identical
  results, proven by ``tests/differential/test_simulator_oracle.py``);
* **gain scoring** — the naive Eq. 4/5 refold vs the columnar
  ``VectorizedGainEvaluator`` over a long ``DataflowHistory``;
* **build packing** — per-slot ``KnapsackItem`` churn vs the batched
  candidate matrix (modest by design: the solver core is shared).

The default leg sizes for CI (1.5k containers / 20k records); set
``REPRO_SCALE_FULL=1`` for the paper-scale 10k-container cluster and
100k-dataflow history. Headline numbers land in ``BENCH_scale.json``
via ``figure_metrics`` when ``REPRO_BENCH_METRICS_DIR`` is set.

Floors are deliberately far below the measured margins (reduced leg:
~8x sim, ~50x gain, ~4.8x composite; full leg: ~55x sim, ~90x gain,
~12x composite) so they trip only on a genuine regression, not on a
noisy CI machine.
"""

from __future__ import annotations

import copy
import os
import time

import numpy as np
from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.core.simulator import ExecutionSimulator
from repro.data.index_model import IndexCostModel
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.knapsack import reset_knapsack_cache
from repro.interleave.lp import InterleavedSchedule, pack_builds_into_schedule
from repro.interleave.slots import BuildCandidate
from repro.scheduling.schedule import Assignment, Schedule
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.vectorized import VectorizedGainEvaluator

from tests.differential.oracle import oracle_faded_sums

INDEX = "lineitem__l_orderkey"
FULL = os.environ.get("REPRO_SCALE_FULL") == "1"

# (operators, containers, history records, build candidates, floors)
if FULL:
    N_OPS, N_CONTAINERS, N_RECORDS, N_CANDIDATES = 30_000, 10_000, 100_000, 2_000
    FLOORS = {"sim": 5.0, "gain": 5.0, "pack": 0.85, "e2e": 5.0}
else:
    N_OPS, N_CONTAINERS, N_RECORDS, N_CANDIDATES = 4_500, 1_500, 20_000, 600
    FLOORS = {"sim": 3.0, "gain": 10.0, "pack": 0.85, "e2e": 2.5}

GAIN_CHECKPOINTS = 20


# ----------------------------------------------------------------------
# Fixtures (built outside every timer)
# ----------------------------------------------------------------------
def _cluster_schedule(n_ops: int, n_containers: int, seed: int = 0) -> InterleavedSchedule:
    """A sparse forward DAG spread over a large container fleet."""
    rng = np.random.default_rng(seed)
    df = Dataflow(name="scale")
    names = [f"op{i}" for i in range(n_ops)]
    runtimes = rng.uniform(5.0, 120.0, size=n_ops)
    for name, runtime in zip(names, runtimes):
        df.add_operator(Operator(name=name, runtime=float(runtime)))
    for src in rng.integers(0, n_ops - 1, size=int(n_ops * 1.5)):
        dst = int(src) + int(rng.integers(1, min(20, n_ops - int(src))))
        df.add_edge(names[int(src)], names[dst], data_mb=float(rng.uniform(0.0, 500.0)))
    cids = rng.integers(0, n_containers, size=n_ops)
    starts = rng.uniform(0.0, 5000.0, size=n_ops)
    assignments = [
        Assignment(name, int(cid), float(start), float(start) + float(runtime))
        for name, cid, start, runtime in zip(names, cids, starts, runtimes)
    ]
    schedule = Schedule(dataflow=df, pricing=PAPER_PRICING, assignments=assignments)
    return InterleavedSchedule(schedule=schedule)


def _long_history(n_records: int) -> tuple[GainModel, DataflowHistory]:
    params = GainParameters(fade_quanta=5.0, window_quanta=float(n_records))
    model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
    history = DataflowHistory(PAPER_PRICING)
    for i in range(n_records):
        history.add(
            DataflowRecord(
                name=f"df{i}",
                executed_at=30.0 * i,
                time_gains={INDEX: 2.0 + (i % 7)},
                money_gains={INDEX: 1.0 + (i % 5)},
            )
        )
    return model, history


def _pack_fixture(n_candidates: int) -> tuple[Schedule, list[BuildCandidate]]:
    rng = np.random.default_rng(3)
    n_ops = max(3, n_candidates * 3 // 2)
    df = Dataflow(name="slots")
    assignments = []
    for i in range(n_ops):
        name = f"op{i}"
        runtime = float(rng.uniform(10.0, 60.0))
        df.add_operator(Operator(name=name, runtime=runtime))
        start = float(rng.uniform(0.0, 2000.0))
        assignments.append(
            Assignment(name, int(rng.integers(0, max(1, n_ops // 3))), start, start + runtime)
        )
    schedule = Schedule(dataflow=df, pricing=PAPER_PRICING, assignments=assignments)
    candidates = [
        BuildCandidate("tbl__col", k, float(rng.uniform(1.0, 50.0)), float(rng.uniform(0.0, 10.0)))
        for k in range(n_candidates)
    ]
    return schedule, candidates


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
def _bench_simulator() -> dict:
    interleaved = _cluster_schedule(N_OPS, N_CONTAINERS)
    wall: dict[bool, float] = {}
    results = {}
    for vectorized in (False, True):
        work = copy.deepcopy(interleaved)
        sim = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.1,
            rng=np.random.default_rng(1), vectorized=vectorized,
        )
        t0 = time.perf_counter()
        results[vectorized] = sim.execute(work, 0.0)
        wall[vectorized] = time.perf_counter() - t0
    # The differential tier proves bit-identity; re-assert the headline
    # outcomes here so a scale-only divergence cannot slip through.
    assert results[False].makespan_seconds == results[True].makespan_seconds
    assert results[False].money_quanta == results[True].money_quanta
    return {
        "operators": N_OPS,
        "containers": N_CONTAINERS,
        "scalar_wall_s": wall[False],
        "vectorized_wall_s": wall[True],
        "speedup": wall[False] / wall[True],
    }


def _bench_gain() -> dict:
    model, history = _long_history(N_RECORDS)
    nows = [30.0 * N_RECORDS + 45.0 * k for k in range(GAIN_CHECKPOINTS)]

    t0 = time.perf_counter()
    naive_last = [oracle_faded_sums(model, history, INDEX, now) for now in nows][-1]
    naive_s = time.perf_counter() - t0

    evaluator = VectorizedGainEvaluator(model, history)
    evaluator.faded_sums(INDEX, nows[0])  # cold column build outside the timer
    t0 = time.perf_counter()
    vec_last = [evaluator.faded_sums(INDEX, now) for now in nows][-1]
    vectorized_s = time.perf_counter() - t0

    assert vec_last[2] == naive_last[2]  # in-window count is bit-identical
    return {
        "history_records": N_RECORDS,
        "checkpoints": GAIN_CHECKPOINTS,
        "naive_wall_s": naive_s,
        "vectorized_wall_s": vectorized_s,
        "speedup": naive_s / vectorized_s,
    }


def _bench_pack() -> dict:
    schedule, candidates = _pack_fixture(N_CANDIDATES)
    wall: dict[bool, float] = {}
    packed = {}
    for vectorized in (False, True):
        reset_knapsack_cache()
        t0 = time.perf_counter()
        packed[vectorized] = pack_builds_into_schedule(
            schedule, list(candidates), vectorized=vectorized
        )
        wall[vectorized] = time.perf_counter() - t0
    assert packed[False].build_assignments == packed[True].build_assignments
    return {
        "candidates": N_CANDIDATES,
        "scalar_wall_s": wall[False],
        "vectorized_wall_s": wall[True],
        "speedup": wall[False] / wall[True],
    }


def test_scale(benchmark, figure_metrics):
    sim = benchmark.pedantic(_bench_simulator, rounds=1, iterations=1)
    gain = _bench_gain()
    pack = _bench_pack()

    scalar_total = sim["scalar_wall_s"] + gain["naive_wall_s"] + pack["scalar_wall_s"]
    vectorized_total = (
        sim["vectorized_wall_s"] + gain["vectorized_wall_s"] + pack["vectorized_wall_s"]
    )
    e2e = scalar_total / vectorized_total

    leg = "full (REPRO_SCALE_FULL=1)" if FULL else "reduced (CI default)"
    print_header(f"Vectorized kernels at scale — {leg}")
    print_rows(
        ["component", "scalar wall", "vectorized wall", "speedup"],
        [
            [f"simulator ({N_OPS} ops / {N_CONTAINERS} ctr)",
             f"{sim['scalar_wall_s']:.3f}s", f"{sim['vectorized_wall_s']:.3f}s",
             f"{sim['speedup']:.1f}x"],
            [f"gain scoring ({N_RECORDS} records)",
             f"{gain['naive_wall_s']:.3f}s", f"{gain['vectorized_wall_s']:.3f}s",
             f"{gain['speedup']:.1f}x"],
            [f"build packing ({N_CANDIDATES} cands)",
             f"{pack['scalar_wall_s']:.3f}s", f"{pack['vectorized_wall_s']:.3f}s",
             f"{pack['speedup']:.1f}x"],
            ["end to end", f"{scalar_total:.3f}s", f"{vectorized_total:.3f}s",
             f"{e2e:.1f}x"],
        ],
        widths=[34, 14, 17, 10],
    )

    figure_metrics["artifact_stem"] = "scale"  # -> BENCH_scale.json
    figure_metrics["leg"] = "full" if FULL else "reduced"
    figure_metrics["simulator_phase"] = sim
    figure_metrics["gain_scoring"] = gain
    figure_metrics["build_packing"] = pack
    figure_metrics["end_to_end"] = {
        "scalar_wall_s": scalar_total,
        "vectorized_wall_s": vectorized_total,
        "speedup": e2e,
        "floor": FLOORS["e2e"],
    }
    benchmark.extra_info.update(
        sim_speedup=sim["speedup"], gain_speedup=gain["speedup"],
        pack_speedup=pack["speedup"], e2e_speedup=e2e,
    )

    assert sim["speedup"] >= FLOORS["sim"]
    assert gain["speedup"] >= FLOORS["gain"]
    assert pack["speedup"] >= FLOORS["pack"]
    assert e2e >= FLOORS["e2e"]
