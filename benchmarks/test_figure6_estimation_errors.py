"""Figure 6: sensitivity of the offline scheduler to estimation errors.

Operator runtimes and data sizes are perturbed within ±error% and the
schedule computed on the estimates is re-costed on the actual values.
The paper finds the estimations robust up to ~20% error, with the
deltas growing as estimates get very poor.
"""

import numpy as np

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.scheduling.estimation import perturb_dataflow, recost_schedule_on_actuals
from repro.scheduling.skyline import SkylineScheduler

ERRORS = (0.0, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.0)
TRIALS = 3


def _sweep(workload):
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2, max_containers=20)
    rng = np.random.default_rng(17)
    rows = []
    flows = [workload.next_dataflow("cybershake", issued_at=0.0) for _ in range(TRIALS)]
    schedules = [
        min(scheduler.schedule(f), key=lambda s: s.makespan_seconds()) for f in flows
    ]
    for error in ERRORS:
        dt, dm, dfr = [], [], []
        for flow, schedule in zip(flows, schedules):
            actual_flow = perturb_dataflow(flow, cpu_error=error, data_error=error, rng=rng)
            actual = recost_schedule_on_actuals(schedule, actual_flow, net_bw_mb_s=125.0)
            est_t, act_t = schedule.makespan_seconds(), actual.makespan_seconds()
            est_m, act_m = schedule.money_quanta(), actual.money_quanta()
            est_f = max(schedule.fragmentation_quanta(), 1e-9)
            act_f = actual.fragmentation_quanta()
            dt.append(100.0 * abs(act_t - est_t) / est_t)
            dm.append(100.0 * abs(act_m - est_m) / est_m)
            dfr.append(100.0 * abs(act_f - est_f) / est_f)
        rows.append((error, float(np.mean(dt)), float(np.mean(dm)), float(np.mean(dfr))))
    return rows


def test_figure6_estimation_errors(benchmark, workload):
    rows = benchmark.pedantic(_sweep, args=(workload,), rounds=1, iterations=1)

    print_header("Figure 6 — Offline scheduler sensitivity to estimation errors")
    print_rows(
        ["error %", "Δ time %", "Δ money %", "Δ fragmentation %"],
        [[f"{e * 100:.0f}", f"{t:.2f}", f"{m:.2f}", f"{f:.2f}"] for e, t, m, f in rows],
        widths=[10, 12, 12, 20],
    )

    by_error = {e: (t, m, f) for e, t, m, f in rows}
    # Zero error reproduces the schedule exactly.
    assert by_error[0.0][0] < 1e-6
    assert by_error[0.0][1] < 1e-6
    # Small errors stay small (robustness claim: <= ~20% error is fine).
    assert by_error[0.10][0] < 15.0
    assert by_error[0.20][0] < 25.0
    # Very poor estimates hurt noticeably more than small ones.
    assert by_error[1.0][0] > by_error[0.05][0]
    benchmark.extra_info["delta_time_at_20pct"] = round(by_error[0.20][0], 2)
    benchmark.extra_info["delta_time_at_100pct"] = round(by_error[1.0][0], 2)
