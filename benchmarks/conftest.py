"""Shared fixtures and report helpers for the reproduction benchmarks.

Every benchmark prints the table/figure it reproduces in a paper-style
layout and records the key numbers in ``benchmark.extra_info`` so they
survive into the pytest-benchmark JSON output.

Scale: the macro experiments default to 1/6 of the paper's 720-quanta
horizon; set ``REPRO_FULL=1`` for the full horizon.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.config import default_config
from repro.dataflow.client import build_workload


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_rows(headers: list[str], rows: list[list], widths: list[int] | None = None) -> None:
    widths = widths or [max(14, len(h) + 2) for h in headers]
    line = "".join(f"{h:<{w}}" for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("".join(f"{str(c):<{w}}" for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def pricing():
    return PAPER_PRICING


@pytest.fixture()
def workload(config):
    """A fresh workload/catalog per benchmark (catalogs are mutable)."""
    return build_workload(config.pricing, seed=config.seed)


@pytest.fixture()
def figure_metrics(request):
    """Opt-in per-figure metrics sink for CI artifact collection.

    Benchmarks drop their headline numbers into the yielded dict; when
    ``REPRO_BENCH_METRICS_DIR`` is set, teardown writes them to
    ``BENCH_<test>.json`` in that directory (sorted keys, so artifacts
    diff cleanly across runs). With the variable unset — the default
    local workflow — nothing is written.
    """
    values: dict[str, object] = {}
    yield values
    out_dir = os.environ.get("REPRO_BENCH_METRICS_DIR")
    if not out_dir or not values:
        return
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    # A benchmark may name its artifact explicitly (reserved key);
    # otherwise the test name is used.
    explicit = values.pop("artifact_stem", None)
    if not values:
        return
    stem = str(explicit) if explicit else re.sub(
        r"[^A-Za-z0-9_.-]+", "_", request.node.name
    )
    payload = {"test": request.node.nodeid, "metrics": values}
    (target / f"BENCH_{stem}.json").write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    )
