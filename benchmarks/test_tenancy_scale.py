"""Tenancy scale benchmark: front-end throughput and admission latency.

Three legs:

* **tenant sweep** — the multi-tenant front end at growing tenant
  counts: wall-clock throughput (executed dataflows / second) and the
  shed rate under a shared admission quantum;
* **admission latency** — the p50/p99 wall-clock latency of a single
  ``AdmissionController.decide`` call over a long synthetic submission
  stream (the per-arrival cost every tenant pays);
* **single-tenant overhead** — the front end wrapping exactly one
  tenant vs the classic ``run_experiment`` path on the same derived
  seed (min-of-N wall time). The contract is that the tenancy layer is
  free when unused: the ratio floor is 1.05 (≤5% overhead).

Headline numbers land in ``BENCH_tenancy.json`` via ``figure_metrics``
when ``REPRO_BENCH_METRICS_DIR`` is set. Set ``REPRO_SCALE_FULL=1``
for the 50-tenant flash-crowd leg.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np
from conftest import print_header, print_rows

from repro import run_experiment
from repro.core.config import ExperimentConfig
from repro.core.service import Strategy
from repro.experiments import derive_seed
from repro.tenancy import AdmissionController, Submission, TenantFrontEnd

FULL = os.environ.get("REPRO_SCALE_FULL") == "1"

TENANT_LEGS = (1, 4, 16, 50) if FULL else (1, 4, 16)
N_DECISIONS = 50_000 if FULL else 20_000
OVERHEAD_REPEATS = 5
OVERHEAD_FLOOR = 1.05  # single-tenant front end must stay within 5%

# figure_metrics writes BENCH_<stem>.json per test (last write wins), so
# the legs accumulate here and every teardown emits the union gathered
# so far: the final artifact carries all three sections.
_ACCUM: dict[str, object] = {}


def _publish(figure_metrics: dict, section: str, payload: object) -> None:
    _ACCUM[section] = payload
    figure_metrics["artifact_stem"] = "tenancy"
    figure_metrics.update(_ACCUM)


def _config(tenants: int, seed: int = 11) -> ExperimentConfig:
    """The fast-horizon config the tenancy tests use, at N tenants."""
    return ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=seed,
        tenants=tenants,
        tenant_skew=3.0 if tenants > 1 else 1.0,
        tenant_queue_depth=6,
    )


def test_tenant_sweep_throughput(figure_metrics):
    print_header("Tenancy scale: front-end throughput by tenant count")
    rows = []
    per_leg: dict[str, object] = {}
    for tenants in TENANT_LEGS:
        front = TenantFrontEnd(_config(tenants), Strategy.GAIN)
        start = time.perf_counter()
        report = front.run()
        elapsed = time.perf_counter() - start
        executed = report.total("executed")
        submitted = report.total("submitted")
        throughput = executed / elapsed if elapsed > 0 else float("inf")
        rows.append(
            [
                tenants,
                submitted,
                executed,
                f"{100 * report.shed_rate:.1f}%",
                f"{elapsed:.2f}s",
                f"{throughput:.0f}/s",
            ]
        )
        per_leg[f"tenants_{tenants}"] = {
            "submitted": submitted,
            "executed": executed,
            "shed_rate": round(report.shed_rate, 4),
            "wall_s": round(elapsed, 3),
            "throughput_per_s": round(throughput, 1),
        }
        assert executed > 0
        assert report.total("admitted") == executed + report.total("expired")
    print_rows(
        ["tenants", "submitted", "executed", "shed", "wall", "throughput"],
        rows,
        widths=[9, 11, 10, 8, 9, 12],
    )
    _publish(figure_metrics, "sweep", per_leg)


def test_admission_decision_latency(figure_metrics):
    print_header("Tenancy scale: admission-decision latency")
    tenants = 8
    controller = AdmissionController(
        tenants=tenants,
        quantum_seconds=60.0,
        queue_depth=8,
        rate_quanta=4.0,
        quantum_slots=16,
        shed_policy="defer",
    )
    rng = np.random.default_rng(0)
    tenant_ids = rng.integers(0, tenants, size=N_DECISIONS)
    gaps = rng.uniform(0.0, 2.0, size=N_DECISIONS)
    backlogs = rng.integers(0, 10, size=N_DECISIONS)
    latencies = np.empty(N_DECISIONS)
    now = 0.0
    for i in range(N_DECISIONS):
        now += float(gaps[i])
        submission = Submission(
            tenant_id=int(tenant_ids[i]),
            seq=i,
            time=now,
            app="montage",
            attempt=0,
        )
        t0 = time.perf_counter()
        controller.decide(submission, backlog=int(backlogs[i]))
        latencies[i] = time.perf_counter() - t0
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))
    print_rows(
        ["decisions", "p50", "p99", "max"],
        [
            [
                N_DECISIONS,
                f"{p50 * 1e6:.1f}us",
                f"{p99 * 1e6:.1f}us",
                f"{float(latencies.max()) * 1e6:.1f}us",
            ]
        ],
        widths=[11, 10, 10, 10],
    )
    _publish(
        figure_metrics,
        "admission_latency",
        {
            "decisions": N_DECISIONS,
            "p50_us": round(p50 * 1e6, 2),
            "p99_us": round(p99 * 1e6, 2),
        },
    )
    # A single admission decision is a handful of dict lookups; anything
    # above a millisecond at p99 is a genuine regression.
    assert p99 < 1e-3


def test_single_tenant_overhead(figure_metrics):
    print_header("Tenancy scale: single-tenant front-end overhead")
    cfg = _config(1)
    cfg = replace(cfg, tenant_queue_depth=10_000)
    plain_cfg = replace(cfg, seed=derive_seed(cfg.seed, 0))

    def plain_leg() -> float:
        start = time.perf_counter()
        run_experiment(Strategy.GAIN, config=plain_cfg)
        return time.perf_counter() - start

    def front_leg() -> float:
        start = time.perf_counter()
        TenantFrontEnd(cfg, Strategy.GAIN).run()
        return time.perf_counter() - start

    plain_leg()  # warm caches outside both timers
    plain = min(plain_leg() for _ in range(OVERHEAD_REPEATS))
    fronted = min(front_leg() for _ in range(OVERHEAD_REPEATS))
    ratio = fronted / plain
    print_rows(
        ["plain", "front end", "ratio", "floor"],
        [[f"{plain:.3f}s", f"{fronted:.3f}s", f"{ratio:.3f}", OVERHEAD_FLOOR]],
        widths=[10, 11, 8, 7],
    )
    _publish(
        figure_metrics,
        "single_tenant_overhead",
        {
            "plain_s": round(plain, 4),
            "front_s": round(fronted, 4),
            "ratio": round(ratio, 4),
        },
    )
    assert ratio <= OVERHEAD_FLOOR, (
        f"single-tenant front end is {ratio:.3f}x the plain path "
        f"(floor {OVERHEAD_FLOOR})"
    )
