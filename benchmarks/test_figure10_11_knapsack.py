"""Figures 10 and 11: the packing instance and the algorithm comparison.

Figure 10 shows a concrete instance: 8 idle time segments (up to ~0.6
quanta) and ~22 build operator times (up to ~0.2 quanta). Figure 11
packs that instance with three algorithms — the Graham-inspired greedy,
the LP interleaving algorithm, and the merged-segment theoretical upper
bound — with each operator's gain equal to its execution time. The LP
algorithm lands within ~5% of the upper bound and above Graham.
"""

import numpy as np

from conftest import print_header, print_rows

from repro.interleave.greedy import graham_pack, lp_pack, merged_upper_bound
from repro.interleave.knapsack import KnapsackItem


def _figure10_instance():
    """Idle segments and build-op times shaped like the paper's Fig. 10."""
    rng = np.random.default_rng(99)
    segments = sorted(
        (float(rng.uniform(0.05, 0.35)) for _ in range(8)), reverse=True
    )
    op_times = [float(rng.uniform(0.02, 0.2)) for _ in range(22)]
    items = [KnapsackItem(item_id=i, size=t, gain=t) for i, t in enumerate(op_times)]
    return segments, items


def _run():
    segments, items = _figure10_instance()
    graham = graham_pack(items, segments)
    lp = lp_pack(items, segments)
    upper = merged_upper_bound(items, segments)
    return segments, items, graham, lp, upper


def test_figure10_instance_and_figure11_gains(benchmark):
    segments, items, graham, lp, upper = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 10 — Idle time segments and build operator times")
    print_rows(
        ["segment", "size (quanta)"],
        [[i + 1, f"{s:.3f}"] for i, s in enumerate(segments)],
        widths=[10, 16],
    )
    times = sorted((it.size for it in items), reverse=True)
    print("\nbuild operator times (quanta):")
    print("  " + "  ".join(f"{t:.3f}" for t in times))
    print(f"\ntotal idle: {sum(segments):.3f} quanta, "
          f"total build work: {sum(times):.3f} quanta")

    print_header("Figure 11 — Total gain using different algorithms")
    print_rows(
        ["algorithm", "total gain", "% of upper bound", "#ops placed"],
        [
            ["Graham", f"{graham.total_gain:.3f}", f"{100 * graham.total_gain / upper:.1f}%",
             graham.num_scheduled],
            ["Linear Prog.", f"{lp.total_gain:.3f}", f"{100 * lp.total_gain / upper:.1f}%",
             lp.num_scheduled],
            ["Upper Bound", f"{upper:.3f}", "100.0%", "-"],
        ],
        widths=[16, 14, 20, 14],
    )

    # The paper's hierarchy: Graham <= LP <= upper bound, LP within ~5%.
    assert graham.total_gain <= lp.total_gain + 1e-9
    assert lp.total_gain <= upper + 1e-9
    assert lp.total_gain >= 0.90 * upper, "LP should be close to the upper bound"
    benchmark.extra_info["graham_gain"] = round(graham.total_gain, 3)
    benchmark.extra_info["lp_gain"] = round(lp.total_gain, 3)
    benchmark.extra_info["upper_bound"] = round(upper, 3)
    benchmark.extra_info["lp_pct_of_upper"] = round(100 * lp.total_gain / upper, 1)
