"""Extension: delayed index building when idle slots are short.

"Building indexes in a delayed manner for scenarios where idle slots are
short is an interesting direction of our future work" (Section 7). This
benchmark creates a workload whose idle slots are all shorter than the
build operators: interleaving alone builds nothing forever, while the
deferred policy accumulates the frustrated builds and proposes a
dedicated build batch whose explicit cost is a fraction of the queued
gain.
"""

from conftest import print_header, print_rows

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.lp import lp_interleave
from repro.interleave.slots import BuildCandidate
from repro.scheduling.skyline import SkylineScheduler
from repro.tuning.deferred import DeferredBuildPolicy


def _short_slot_flow(name):
    """Two parallel chains whose stagger leaves only ~12 s slots."""
    flow = Dataflow(name=name)
    flow.add_operator(Operator(name="a", runtime=24.0))
    prev_fast, prev_slow = "a", "a"
    for i in range(4):
        fast = Operator(name=f"fast{i}", runtime=24.0)
        slow = Operator(name=f"slow{i}", runtime=36.0)
        flow.add_operator(fast)
        flow.add_operator(slow)
        flow.add_edge(prev_fast, fast.name)
        flow.add_edge(prev_slow, slow.name)
        prev_fast, prev_slow = fast.name, slow.name
    join = Operator(name="join", runtime=24.0)
    flow.add_operator(join)
    flow.add_edge(prev_fast, join.name)
    flow.add_edge(prev_slow, join.name)
    return flow


def _candidates():
    """Builds of 65-90 s: none fits a sub-quantum slot."""
    return [
        BuildCandidate(index_name=f"t{i:02d}__k", partition_id=0,
                       duration_s=65.0 + 5 * i, gain=1.2)
        for i in range(6)
    ]


def _run():
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2, max_containers=4)
    policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=2, payback_factor=2.0)
    interleaved_counts = []
    batch = None
    rounds = 0
    for i in range(6):
        rounds += 1
        flow = _short_slot_flow(f"short-{i}")
        results = lp_interleave(flow, _candidates(), scheduler)
        best = max(results, key=lambda r: r.num_builds)
        interleaved_counts.append(best.num_builds)
        placed = {c.op_name for c in best.scheduled_builds}
        policy.record_placed([c for c in _candidates() if c.op_name in placed])
        policy.record_unplaced([c for c in _candidates() if c.op_name not in placed])
        batch = policy.propose_batch()
        if batch is not None:
            break
    return interleaved_counts, batch, rounds, policy


def test_extension_deferred_builds(benchmark):
    counts, batch, rounds, policy = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Extension — delayed building when idle slots are short")
    print(f"interleaved builds per round (slots are all shorter than any "
          f"build): {counts}")
    assert all(c == 0 for c in counts), "short slots must defeat interleaving"
    assert batch is not None, "the deferred policy never proposed a batch"
    print(f"\nafter {rounds} rounds the deferred policy proposes a dedicated batch:")
    print_rows(
        ["builds", "containers", "leased quanta", "cost $", "queued gain $"],
        [[len(batch.candidates), batch.num_containers, batch.leased_quanta,
          f"{batch.cost_dollars:.2f}", f"{batch.expected_gain_dollars:.2f}"]],
        widths=[10, 12, 15, 10, 15],
    )
    assert batch.worthwhile
    assert batch.expected_gain_dollars >= 2.0 * batch.cost_dollars
    policy.commit_batch(batch)
    assert len(policy) + len(batch.candidates) == 6
    benchmark.extra_info["rounds_until_batch"] = rounds
    benchmark.extra_info["batch_cost"] = round(batch.cost_dollars, 2)
    benchmark.extra_info["batch_gain"] = round(batch.expected_gain_dollars, 2)
