"""Circuit-breaker state machine and tenant-guard tests."""

import json

import pytest

from repro.core.service import MODE_FULL, MODE_INDEXED, MODE_UNINDEXED
from repro.obs import Observation
from repro.tenancy import BreakerState, CircuitBreaker, TenantGuard


def breaker(**overrides):
    kwargs = dict(threshold=3, cooldown_s=100.0, probes=2)
    kwargs.update(overrides)
    return CircuitBreaker("build", **kwargs)


class TestStateMachine:
    def test_opens_after_threshold_consecutive_failures(self):
        b = breaker()
        b.record_failure(1.0)
        b.record_failure(2.0)
        assert b.state is BreakerState.CLOSED
        b.record_failure(3.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow(3.5)

    def test_success_resets_the_consecutive_count(self):
        b = breaker()
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(3.0)
        b.record_failure(4.0)
        b.record_failure(5.0)
        assert b.state is BreakerState.CLOSED

    def test_cooldown_half_opens_and_probes_close(self):
        b = breaker()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert not b.allow(50.0)  # still cooling down
        assert b.allow(103.0)  # cooldown elapsed: half-open probe
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(104.0)
        assert b.state is BreakerState.HALF_OPEN  # needs probes=2
        b.record_success(105.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        b = breaker()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert b.allow(103.0)
        b.record_failure(104.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 2
        assert not b.allow(105.0)

    def test_threshold_zero_disables(self):
        b = breaker(threshold=0)
        for t in range(50):
            b.record_failure(float(t))
        assert b.state is BreakerState.CLOSED
        assert b.allow(100.0)
        assert b.trips == 0

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="threshold"):
            breaker(threshold=-1)
        with pytest.raises(ValueError, match="cooldown_s"):
            breaker(cooldown_s=0.0)
        with pytest.raises(ValueError, match="probes"):
            breaker(probes=0)

    def test_transition_callback_sees_every_edge(self):
        seen = []
        b = CircuitBreaker(
            "storage", threshold=1, cooldown_s=10.0,
            on_transition=lambda name, old, new, now: seen.append(
                (name, old.value, new.value, now)
            ),
        )
        b.record_failure(1.0)
        b.allow(12.0)
        b.record_success(13.0)
        assert seen == [
            ("storage", "closed", "open", 1.0),
            ("storage", "open", "half_open", 12.0),
            ("storage", "half_open", "closed", 13.0),
        ]


class TestTenantGuard:
    def test_deadline_ladder(self):
        guard = TenantGuard(0, deadline_s=100.0, breaker_threshold=0)
        assert guard.decide_mode(0.0, 50.0) == MODE_FULL
        assert guard.decide_mode(0.0, 150.0) == MODE_INDEXED
        assert guard.decide_mode(0.0, 250.0) == MODE_UNINDEXED
        assert guard.degraded == 2

    def test_open_build_breaker_degrades_decisions(self):
        guard = TenantGuard(1, breaker_threshold=2, breaker_cooldown_s=100.0)
        guard.record_build_failures(2, 10.0)
        assert guard.build_breaker.state is BreakerState.OPEN
        assert guard.decide_mode(10.0, 11.0) == MODE_INDEXED
        assert not guard.allow_build_put("idx", 12.0)

    def test_storage_breaker_routes_delete_outcomes(self):
        guard = TenantGuard(2, breaker_threshold=2, breaker_cooldown_s=50.0)
        assert guard.allow_storage_delete("a/b", 1.0)
        guard.record_storage_delete(False, 1.0)
        guard.record_storage_delete(False, 2.0)
        assert not guard.allow_storage_delete("a/b", 3.0)
        assert guard.allow_storage_delete("a/b", 60.0)  # half-open probe
        guard.record_storage_delete(True, 61.0)
        assert guard.storage_breaker.state is BreakerState.CLOSED

    def test_transitions_hit_journal_and_metrics(self):
        obs = Observation.recording()
        guard = TenantGuard(
            3, breaker_threshold=1, breaker_cooldown_s=10.0, obs=obs
        )
        guard.record_build_put(False, 5.0)
        events = [json.loads(l) for l in obs.journal.to_jsonl().splitlines()]
        assert [e["event"] for e in events] == ["breaker_transition"]
        assert events[0]["tenant"] == 3
        assert events[0]["old"] == "closed" and events[0]["new"] == "open"
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["tenancy/t3/breaker/build/trips"] == 1
        assert snapshot["gauges"]["tenancy/t3/breaker/build/state"] == 2

    def test_degradation_events_attributed_to_tenant(self):
        obs = Observation.recording()
        guard = TenantGuard(4, deadline_s=10.0, obs=obs)
        guard.decide_mode(0.0, 25.0)
        events = [json.loads(l) for l in obs.journal.to_jsonl().splitlines()]
        assert events[0]["event"] == "tenant_degraded"
        assert events[0]["tenant"] == 4
        assert events[0]["mode"] == MODE_UNINDEXED
        assert events[0]["reason"] == "deadline"
