"""Property-based tests for the structural artifact diff (``repro.obs.diff``).

Two laws the repro-vs-repro debugging workflow depends on:

1. *Localization*: perturbing exactly one field of one record always
   yields a divergence anchored at that record — never an earlier or
   later one — and, for payload edits, naming that key.
2. *Soundness of silence*: identical inputs always produce ``None``
   from every differ, and ``repro obs diff`` exits 0 on identical run
   directories.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.obs import diff_journals, diff_metrics, diff_traces

_scalars = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(alphabet="abcxyz_", max_size=8),
    st.booleans(),
)
_keys = st.text(alphabet="abcdefgh_", min_size=1, max_size=6)

_records = st.lists(
    st.fixed_dictionaries(
        {"event": st.sampled_from(["build", "delete", "probe", "decision"])},
        optional={},
    ).flatmap(
        lambda base: st.dictionaries(_keys, _scalars, max_size=4).map(
            lambda extra: {**extra, **base}
        )
    ),
    min_size=1,
    max_size=12,
)


def _jl(records: list[dict]) -> str:
    lines = []
    for i, r in enumerate(records):
        lines.append(
            json.dumps({**r, "t": float(i)}, sort_keys=True, separators=(",", ":"))
        )
    return "".join(line + "\n" for line in lines)


@given(records=_records, data=st.data())
@settings(max_examples=150, deadline=None, derandomize=True)
def test_single_journal_perturbation_localizes_to_that_event(records, data):
    idx = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
    victim = dict(records[idx])
    keys = sorted(k for k in victim if k != "event")
    if keys:
        key = data.draw(st.sampled_from(keys))
        replacement = data.draw(_scalars.filter(lambda v: v != victim[key]))
        victim[key] = replacement
        expect_key = key
    else:
        victim["event"] = "build" if victim["event"] != "build" else "delete"
        expect_key = None
    perturbed = records[:idx] + [victim] + records[idx + 1 :]
    d = diff_journals(_jl(records), _jl(perturbed))
    assert d is not None
    assert d.location.startswith(f"event {idx}"), d.location
    if expect_key is not None:
        assert f"key {expect_key!r}" in d.location


@given(records=_records, extra=_records)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_journal_truncation_localizes_to_first_missing_event(records, extra):
    longer = records + extra
    d = diff_journals(_jl(longer), _jl(records))
    assert d is not None
    assert d.location == f"event {len(records)}"
    assert d.a == f"{len(longer)} events"


_leaf_paths = st.lists(st.lists(_keys, min_size=1, max_size=3), min_size=1,
                       max_size=6, unique_by=lambda p: tuple(p))


def _nest(paths: list[list[str]], values: list) -> dict:
    root: dict = {}
    for path, value in zip(paths, values):
        node = root
        for part in path[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                break
        else:
            if not isinstance(node.get(path[-1]), dict):
                node[path[-1]] = value
    return root


def _leaves(node, prefix=""):
    for key in sorted(node):
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(node[key], dict):
            yield from _leaves(node[key], path)
        else:
            yield path


def _set_leaf(node, path, value):
    parts = path.split(".")
    for part in parts[:-1]:
        node = node[part]
    node[parts[-1]] = value


def _get_leaf(node, path):
    parts = path.split(".")
    for part in parts[:-1]:
        node = node[part]
    return node[parts[-1]]


@given(paths=_leaf_paths, data=st.data())
@settings(max_examples=150, deadline=None, derandomize=True)
def test_single_metrics_perturbation_names_exactly_that_key_path(paths, data):
    values = data.draw(
        st.lists(_scalars, min_size=len(paths), max_size=len(paths))
    )
    doc = _nest(paths, values)
    leaves = list(_leaves(doc))
    target = data.draw(st.sampled_from(leaves))
    perturbed = json.loads(json.dumps(doc))
    current = _get_leaf(doc, target)
    # != (not a string check): 0 == 0.0 == False would slip a no-op in.
    _set_leaf(
        perturbed, target,
        data.draw(_scalars.filter(lambda v: v != current)),
    )
    d = diff_metrics(json.dumps(doc), json.dumps(perturbed))
    assert d is not None
    assert d.location == f"key {target}"


@given(records=_records, paths=_leaf_paths, data=st.data())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_identical_inputs_are_always_silent(records, paths, data):
    journal = _jl(records)
    assert diff_journals(journal, journal) is None
    values = data.draw(st.lists(_scalars, min_size=len(paths), max_size=len(paths)))
    doc = json.dumps(_nest(paths, values))
    assert diff_metrics(doc, doc) is None
    trace = json.dumps({"traceEvents": json.loads(doc) and []})
    assert diff_traces(trace, trace) is None


def test_cli_diff_exits_zero_on_identical_run_dirs(tmp_path, capsys):
    a, b = tmp_path / "a", tmp_path / "b"
    for d in (a, b):
        d.mkdir()
        (d / "events.jsonl").write_text(_jl([{"event": "build", "x": 1}]))
        (d / "metrics.json").write_text(json.dumps({"counters": {"x": 1}}))
        (d / "trace.json").write_text(json.dumps({"traceEvents": []}))
    assert cli_main(["obs", "diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert out.count("identical") == 3


def test_cli_diff_exits_nonzero_on_any_divergence(tmp_path, capsys):
    a, b = tmp_path / "a", tmp_path / "b"
    for d in (a, b):
        d.mkdir()
        (d / "events.jsonl").write_text(_jl([{"event": "build", "x": 1}]))
    (b / "events.jsonl").write_text(_jl([{"event": "build", "x": 2}]))
    assert cli_main(["obs", "diff", str(a), str(b)]) == 1
    assert "key 'x'" in capsys.readouterr().out
