"""Unit and property-based tests for the B+tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.search(1) == []
        assert 1 not in tree

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(i, i * 10)
        assert tree.search(7) == [70]
        assert 49 in tree
        assert 50 not in tree

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert sorted(tree.search(5)) == [1, 2]
        assert tree.num_keys == 1
        assert len(tree) == 2

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for i in range(256):
            tree.insert(i, i)
        assert tree.height <= 8  # log_2(256) = 8 with order 4 (min fill 2)


class TestOrderedAccess:
    def test_keys_sorted(self):
        tree = BPlusTree(order=4)
        import random

        rng = random.Random(7)
        values = list(range(200))
        rng.shuffle(values)
        for v in values:
            tree.insert(v, v)
        assert list(tree.keys()) == sorted(values)

    def test_items_in_key_order(self):
        tree = BPlusTree(order=8)
        for v in [5, 3, 9, 1, 7]:
            tree.insert(v, v * 2)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_row_ids_in_order_matches_items(self):
        tree = BPlusTree(order=4)
        for v in [4, 2, 8, 6, 2, 4]:
            tree.insert(v, v + 100)
        assert tree.row_ids_in_order() == [r for _, r in tree.items()]

    def test_range_exclusive_bounds(self):
        tree = BPlusTree(order=4)
        for v in range(10):
            tree.insert(v, v)
        got = [k for k, _ in tree.range(2, 7)]
        assert got == [3, 4, 5, 6]

    def test_range_inclusive_bounds(self):
        tree = BPlusTree(order=4)
        for v in range(10):
            tree.insert(v, v)
        got = [k for k, _ in tree.range(2, 7, inclusive=True)]
        assert got == [2, 3, 4, 5, 6, 7]

    def test_range_empty_when_no_match(self):
        tree = BPlusTree(order=4)
        for v in (1, 10, 20):
            tree.insert(v, v)
        assert list(tree.range(2, 9)) == []


class TestBulkLoad:
    def test_bulk_load_equals_inserts(self):
        pairs = [(i % 37, i) for i in range(300)]
        loaded = BPlusTree.bulk_load(pairs, order=8)
        inserted = BPlusTree(order=8)
        for k, v in pairs:
            inserted.insert(k, v)
        assert list(loaded.keys()) == list(inserted.keys())
        assert len(loaded) == len(inserted) == 300
        for key in range(37):
            assert sorted(loaded.search(key)) == sorted(inserted.search(key))

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([], order=8)
        assert len(tree) == 0

    def test_bulk_load_invariants(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(1000)], order=16)
        tree.check_invariants()


@st.composite
def key_value_lists(draw):
    return draw(
        st.lists(
            st.tuples(st.integers(min_value=-1000, max_value=1000), st.integers()),
            max_size=300,
        )
    )


@given(pairs=key_value_lists(), order=st.integers(min_value=3, max_value=32))
@settings(max_examples=60, deadline=None)
def test_property_insert_preserves_invariants_and_content(pairs, order):
    tree = BPlusTree(order=order)
    expected: dict[int, list[int]] = {}
    for k, v in pairs:
        tree.insert(k, v)
        expected.setdefault(k, []).append(v)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(expected)
    for k, vals in expected.items():
        assert sorted(tree.search(k)) == sorted(vals)
    assert len(tree) == sum(len(v) for v in expected.values())


@given(pairs=key_value_lists(), order=st.integers(min_value=3, max_value=32))
@settings(max_examples=60, deadline=None)
def test_property_bulk_load_matches_semantics(pairs, order):
    tree = BPlusTree.bulk_load(pairs, order=order)
    tree.check_invariants()
    expected: dict[int, list[int]] = {}
    for k, v in pairs:
        expected.setdefault(k, []).append(v)
    assert list(tree.keys()) == sorted(expected)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
    low=st.integers(min_value=-10, max_value=510),
    high=st.integers(min_value=-10, max_value=510),
)
@settings(max_examples=60, deadline=None)
def test_property_range_matches_filter(keys, low, high):
    tree = BPlusTree(order=6)
    for i, k in enumerate(keys):
        tree.insert(k, i)
    got = sorted(r for _, r in tree.range(low, high))
    expected = sorted(i for i, k in enumerate(keys) if low < k < high)
    assert got == expected
