"""End-to-end tests for the exploration engine.

Covers the ISSUE 6 acceptance criteria:

* the planted delete-racing-build ordering bug is found by both the
  exhaustive and the random strategy, minimized to a one-entry trace,
  and reproduced byte-deterministically from a replay file;
* partial-order reduction provably visits fewer schedules than plain
  exhaustive enumeration on the toy workload while finding the same
  set of violations;
* strategies, minimization and replay-file validation behave as
  documented.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.explore import (
    DfsStrategy,
    DfsTree,
    IdentityStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    Scenario,
    build_scenario,
    explore,
    load_replay,
    run_replay,
    run_schedule,
    save_replay,
)
from repro.explore.minimize import minimize_trace
from repro.obs import Observation

PLANTED_BUG = "delete-racing-build"


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def test_unknown_scenario_lists_valid_names():
    with pytest.raises(ValueError) as err:
        build_scenario("nope")
    assert "nope" in str(err.value)
    assert "planted" in str(err.value) and "toy" in str(err.value)


def test_identity_schedule_is_clean():
    for name in ("toy", "planted", "service"):
        controller, violations, checks = run_schedule(
            Scenario(name), IdentityStrategy()
        )
        assert violations == (), name
        assert checks > 0, name
        assert controller.pending == [], name


# ----------------------------------------------------------------------
# the planted bug
# ----------------------------------------------------------------------
def test_planted_bug_found_by_exhaustive_and_minimized():
    report = explore(Scenario("planted"), "exhaustive", depth=8)
    assert PLANTED_BUG in report.violation_names()
    assert not report.truncated
    assert report.minimized is not None
    assert len(report.minimized.trace) == 1
    site, picked = report.minimized.trace[0]
    assert site.startswith("offer:build:")
    assert picked == "defer"
    assert {v.name for v in report.minimized.violations} == {PLANTED_BUG}


def test_planted_bug_found_by_random_walks():
    report = explore(Scenario("planted"), "random", budget=32)
    assert PLANTED_BUG in report.violation_names()
    assert report.schedules == 32


def test_random_walks_are_seeded_and_reproducible():
    a = explore(Scenario("planted", seed=3), "random", budget=12, minimize=False)
    b = explore(Scenario("planted", seed=3), "random", budget=12, minimize=False)
    assert [f.trace for f in a.violations] == [f.trace for f in b.violations]
    assert a.schedules == b.schedules
    assert a.distinct_orderings == b.distinct_orderings


# ----------------------------------------------------------------------
# exhaustive vs partial-order reduction
# ----------------------------------------------------------------------
def test_por_visits_fewer_schedules_same_violations():
    full = explore(Scenario("toy"), "exhaustive", depth=8, minimize=False)
    por = explore(Scenario("toy"), "por", depth=8, minimize=False)
    assert not full.truncated and not por.truncated
    assert por.schedules < full.schedules
    assert por.distinct_orderings < full.distinct_orderings
    assert por.pruned > 0
    assert full.pruned == 0
    assert por.violation_names() == full.violation_names()
    assert PLANTED_BUG in full.violation_names()


def test_exhaustive_covers_both_orders_of_independent_builds():
    # Epoch 1 of the toy scenario offers two independent builds; the
    # exhaustive tree must include schedules starting with each.
    report = explore(Scenario("toy"), "exhaustive", depth=8, minimize=False)
    assert report.schedules > 1
    assert report.distinct_orderings > 1


def test_explore_rejects_unknown_mode():
    with pytest.raises(ValueError) as err:
        explore(Scenario("toy"), "breadth-first")
    assert "exhaustive" in str(err.value) and "por" in str(err.value)


def test_explore_truncates_at_max_schedules():
    report = explore(
        Scenario("toy"), "exhaustive", depth=8, minimize=False, max_schedules=3
    )
    assert report.truncated
    assert report.schedules == 3


def test_explore_emits_obs_metrics_and_journal():
    obs = Observation.recording()
    report = explore(Scenario("planted"), "exhaustive", depth=8, obs=obs)
    assert not report.ok
    snapshot = json.loads(obs.metrics.to_json())
    assert snapshot["counters"]["explore/schedules"] == report.schedules
    assert snapshot["counters"]["explore/violations"] > 0
    events = [json.loads(line)["event"] for line in obs.journal.to_jsonl().splitlines()]
    assert "explore_violation" in events
    assert "explore_minimized" in events
    assert events[-1] == "explore_done"


def test_report_context_is_machine_readable():
    report = explore(Scenario("planted"), "exhaustive", depth=8)
    context = report.context()
    assert context["scenario"] == "planted"
    assert context["seed"] == 0
    assert isinstance(context["schedule_index"], int)
    assert context["schedule_prefix"]  # the failing trace, JSON-shaped
    json.dumps(context)  # must serialise


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def test_dfs_tree_enumerates_a_fixed_fanout():
    # A synthetic 2-site x 2-option tree: 4 leaves.
    tree = DfsTree()
    seen = []
    while True:
        strategy = DfsStrategy(tree)
        picks = [strategy.choose(f"s{i}", ("a", "b"), (None, None), None)
                 for i in range(2)]
        seen.append(tuple(picks))
        if not tree.advance():
            break
    assert seen == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_dfs_depth_bound_caps_branching():
    tree = DfsTree(depth=1)
    strategy = DfsStrategy(tree)
    assert strategy.choose("s0", ("a", "b"), (None, None), None) == 0
    # Beyond the depth budget: canonical, not recorded on the stack.
    assert strategy.choose("s1", ("a", "b"), (None, None), None) == 0
    assert len(tree.stack) == 1


def test_dfs_tree_rejects_bad_depth():
    with pytest.raises(ValueError):
        DfsTree(depth=0)


def test_random_walk_strategy_stays_in_range():
    rng = np.random.default_rng(0)
    strategy = RandomWalkStrategy(rng)
    for _ in range(50):
        assert 0 <= strategy.choose("s", ("a", "b", "c"), (None,) * 3, None) < 3


def test_replay_strategy_skips_nonmatching_sites():
    strategy = ReplayStrategy([("offer:x", "defer")])
    # A different site leaves the entry queued...
    assert strategy.choose("offer:y", ("run", "defer"), (None, None), None) == 0
    assert strategy.consumed == 0
    # ...until its own site arrives.
    assert strategy.choose("offer:x", ("run", "defer"), (None, None), None) == 1
    assert strategy.consumed == 1
    # Past the end: canonical.
    assert strategy.choose("offer:z", ("run", "defer"), (None, None), None) == 0
    assert strategy.divergences == 0


def test_replay_strategy_counts_divergences():
    strategy = ReplayStrategy([("offer:x", "not-an-option")])
    assert strategy.choose("offer:x", ("run", "defer"), (None, None), None) == 0
    assert strategy.divergences == 1


# ----------------------------------------------------------------------
# minimization
# ----------------------------------------------------------------------
def test_minimize_drops_irrelevant_choices():
    report = explore(Scenario("planted"), "random", budget=32, minimize=False)
    assert report.violations
    failing = next(
        f for f in report.violations
        if any(v.name == PLANTED_BUG for v in f.violations)
    )
    minimized = minimize_trace(
        Scenario("planted"), list(failing.trace), PLANTED_BUG
    )
    assert minimized is not None
    assert len(minimized) <= len(failing.trace)
    assert len(minimized) == 1


def test_minimize_returns_none_when_not_reproducible():
    # The empty trace is the canonical schedule, which is clean.
    assert minimize_trace(Scenario("planted"), [], PLANTED_BUG) is None


# ----------------------------------------------------------------------
# replay files
# ----------------------------------------------------------------------
def test_replay_file_round_trip_is_byte_deterministic(tmp_path):
    report = explore(Scenario("planted"), "exhaustive", depth=8)
    minimized = report.minimized
    assert minimized is not None
    path = tmp_path / "replay.json"
    save_replay(path, Scenario("planted"), list(minimized.trace),
                list(minimized.violations))

    results = [run_replay(load_replay(path)) for _ in range(2)]
    for result in results:
        assert result.reproduced
        assert result.violations == tuple(minimized.violations)
    assert results[0].violations == results[1].violations
    assert results[0].steps == results[1].steps


def test_replay_file_is_stable_json(tmp_path):
    path = tmp_path / "replay.json"
    save_replay(path, Scenario("planted"), [("offer:x", "defer")], [])
    raw = json.loads(path.read_text())
    assert raw["kind"] == "repro-explore-replay"
    assert raw["version"] == 1
    assert raw["scenario"] == {
        "name": "planted", "seed": 0, "params": {"horizon_quanta": 3},
    }
    assert raw["schedule"] == [["offer:x", "defer"]]


def test_load_replay_rejects_bad_files(tmp_path):
    path = tmp_path / "bad.json"

    path.write_text("not json")
    with pytest.raises(ValueError, match="unreadable"):
        load_replay(path)

    path.write_text(json.dumps({"kind": "other"}))
    with pytest.raises(ValueError, match="repro-explore-replay"):
        load_replay(path)

    path.write_text(json.dumps(
        {"kind": "repro-explore-replay", "version": 99}
    ))
    with pytest.raises(ValueError, match="version"):
        load_replay(path)

    path.write_text(json.dumps({
        "kind": "repro-explore-replay", "version": 1,
        "scenario": {"name": "nope"},
    }))
    with pytest.raises(ValueError) as err:
        load_replay(path)
    assert "planted" in str(err.value)  # valid names listed

    path.write_text(json.dumps({
        "kind": "repro-explore-replay", "version": 1,
        "scenario": {"name": "toy"},
        "schedule": [["bogus-site", "run"]],
    }))
    with pytest.raises(ValueError) as err:
        load_replay(path)
    assert "offer:" in str(err.value)  # valid site prefixes listed
