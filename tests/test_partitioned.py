"""Tests for partitioned heaps and incrementally built indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.heap import HeapFile
from repro.engine.partitioned import GlobalRowId, PartitionedHeap, PartitionedIndex


def make_heap(partition_keys: dict[int, list[int]]) -> PartitionedHeap:
    return PartitionedHeap(
        {pid: HeapFile({"k": keys}) for pid, keys in partition_keys.items()}
    )


@pytest.fixture
def heap():
    return make_heap({0: [5, 1, 9, 1], 1: [2, 8, 5], 2: [7, 3]})


@pytest.fixture
def index(heap):
    return PartitionedIndex(heap=heap, column="k", order=4)


class TestPartitionedHeap:
    def test_schema_must_match(self):
        with pytest.raises(ValueError):
            PartitionedHeap({0: HeapFile({"a": [1]}), 1: HeapFile({"b": [1]})})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PartitionedHeap({})

    def test_num_rows_and_scan(self, heap):
        assert heap.num_rows() == 9
        assert len(list(heap.scan())) == 9

    def test_value_access(self, heap):
        assert heap.value("k", GlobalRowId(1, 1)) == 8
        with pytest.raises(KeyError):
            heap.partition(9)


class TestIncrementalBuild:
    def test_starts_unbuilt(self, index):
        assert index.built_partitions == []
        assert index.unbuilt_partitions == [0, 1, 2]
        assert index.built_fraction() == 0.0
        assert not index.fully_built

    def test_build_one_partition(self, index):
        index.build_partition(0)
        assert index.built_partitions == [0]
        assert index.built_fraction() == pytest.approx(4 / 9)

    def test_build_all(self, index):
        for pid in list(index.unbuilt_partitions):
            index.build_partition(pid)
        assert index.fully_built
        assert index.built_fraction() == 1.0

    def test_drop_partition(self, index):
        index.build_partition(1)
        index.drop_partition(1)
        assert index.built_partitions == []
        index.drop_partition(1)  # idempotent


class TestHybridAccess:
    @pytest.mark.parametrize("built", [[], [0], [0, 2], [0, 1, 2]])
    def test_lookup_correct_at_any_coverage(self, heap, built):
        index = PartitionedIndex(heap=heap, column="k", order=4)
        for pid in built:
            index.build_partition(pid)
        for key in (1, 5, 8, 42):
            assert index.verify_against_scan(key), (built, key)

    @pytest.mark.parametrize("built", [[], [1], [0, 1, 2]])
    def test_range_correct_at_any_coverage(self, heap, built):
        index = PartitionedIndex(heap=heap, column="k", order=4)
        for pid in built:
            index.build_partition(pid)
        got = {(r.partition_id, r.row_id) for r in index.range(2, 8)}
        expected = {
            (r.partition_id, r.row_id)
            for r in heap.scan()
            if 2 < heap.value("k", r) < 8
        }
        assert got == expected

    @pytest.mark.parametrize("built", [[], [2], [0, 1, 2]])
    def test_rows_in_order_at_any_coverage(self, heap, built):
        index = PartitionedIndex(heap=heap, column="k", order=4)
        for pid in built:
            index.build_partition(pid)
        rows = index.rows_in_order()
        keys = [heap.value("k", r) for r in rows]
        assert keys == sorted(keys)
        assert len(rows) == heap.num_rows()


@given(
    part0=st.lists(st.integers(min_value=0, max_value=50), max_size=40),
    part1=st.lists(st.integers(min_value=0, max_value=50), max_size=40),
    build_first=st.booleans(),
    key=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_property_partial_index_is_transparent(part0, part1, build_first, key):
    """Partial coverage never changes query answers, only their cost."""
    heap = make_heap({0: part0 or [0], 1: part1 or [0]})
    index = PartitionedIndex(heap=heap, column="k", order=4)
    if build_first:
        index.build_partition(0)
    assert index.verify_against_scan(key)
    keys = [heap.value("k", r) for r in index.rows_in_order()]
    assert keys == sorted(keys)
