"""Tests for the standalone catalog builder and the Table 6 harness."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.data.catalog import (
    Catalog,
    INDEXABLE_COLUMNS,
    TABLE5_SIZE_FRACTIONS,
    TABLE6_SPEEDUPS,
    build_workload_catalog,
)
from repro.data.index_model import IndexSpec
from repro.data.tpch import lineitem_table
from repro.engine.queries import build_lineitem_heap, measure_table6_speedups


class TestCatalogRegistration:
    def test_add_table_twice_rejected(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=3, total_gb=1.0)
        table = next(iter(catalog.tables.values()))
        with pytest.raises(ValueError):
            catalog.add_table(table)

    def test_potential_index_idempotent(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=3, total_gb=1.0)
        name = next(iter(catalog.tables))
        first = catalog.add_potential_index(IndexSpec(name, ("orderkey",)))
        second = catalog.add_potential_index(IndexSpec(name, ("orderkey",)))
        assert first is second

    def test_unknown_table_rejected(self):
        catalog = Catalog(pricing=PAPER_PRICING)
        with pytest.raises(KeyError):
            catalog.add_potential_index(IndexSpec("ghost", ("orderkey",)))

    def test_unknown_column_rejected(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=2, total_gb=1.0)
        name = next(iter(catalog.tables))
        with pytest.raises(KeyError):
            catalog.add_potential_index(IndexSpec(name, ("nope",)))


class TestStandaloneCatalog:
    def test_shape(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=10, total_gb=5.0)
        assert len(catalog.tables) == 10
        assert len(catalog.indexes) == 40
        assert catalog.total_size_gb() == pytest.approx(5.0, rel=0.1)

    def test_index_sizes_follow_table5_fractions(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=2, total_gb=2.0)
        name = max(catalog.tables, key=lambda n: catalog.tables[n].size_mb())
        table = catalog.tables[name]
        for column in INDEXABLE_COLUMNS:
            spec = IndexSpec(name, (column,))
            frac = catalog.cost_model.index_size_mb(table, spec) / table.size_mb()
            assert frac == pytest.approx(TABLE5_SIZE_FRACTIONS[column], rel=0.15)

    def test_built_storage_accounting(self):
        catalog = build_workload_catalog(PAPER_PRICING, num_files=2, total_gb=0.5)
        assert catalog.built_storage_mb() == 0.0
        index = next(iter(catalog.indexes.values()))
        index.mark_built(index.table.partitions[0].partition_id, time=0.0)
        assert catalog.built_storage_mb() > 0.0
        assert catalog.built_indexes() == [index]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload_catalog(PAPER_PRICING, num_files=0)
        with pytest.raises(ValueError):
            build_workload_catalog(PAPER_PRICING, total_gb=0.0)


class TestTable6Harness:
    def test_speedups_positive_and_results_verified(self):
        results = measure_table6_speedups(num_rows=4000, repeats=1)
        assert set(results) == {"order_by", "range_large", "range_small", "lookup"}
        for timing in results.values():
            assert timing.speedup > 0
            assert timing.rows_returned >= 0

    def test_lookup_beats_order_by(self):
        results = measure_table6_speedups(num_rows=20_000, repeats=2)
        assert results["lookup"].speedup > results["order_by"].speedup

    def test_heap_columns(self):
        heap = build_lineitem_heap(100)
        assert len(heap) == 100
        assert "orderkey" in heap.column_names
        assert "comment" in heap.column_names

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            measure_table6_speedups(num_rows=0)

    def test_speedup_values_constant(self):
        # The Table 6 constants the workload generators sample from.
        assert TABLE6_SPEEDUPS["lookup"] == 627.14
        assert TABLE6_SPEEDUPS["order_by"] == 7.44
