"""Tests for workload trace serialization."""

import numpy as np
import pytest

from repro.core.metrics import DataflowOutcome, ServiceMetrics
from repro.dataflow.client import ArrivalEvent, phase_schedule
from repro.dataflow.trace import TRACE_VERSION, OutcomeRecord, WorkloadTrace


def sample_trace():
    events = [ArrivalEvent(time=10.0, app="montage"), ArrivalEvent(time=70.0, app="ligo")]
    metrics = ServiceMetrics(strategy="gain", horizon_s=1000.0)
    metrics.outcomes.append(
        DataflowOutcome(
            name="montage-00001", app="montage", issued_at=10.0, started_at=10.0,
            finished_at=200.0, money_quanta=5, ops_executed=100,
            builds_completed=3, builds_killed=1,
        )
    )
    return WorkloadTrace.from_run("phase", seed=42, horizon_s=1000.0,
                                  events=events, metrics=metrics)


class TestRoundTrip:
    def test_json_round_trip(self):
        trace = sample_trace()
        restored = WorkloadTrace.from_json(trace.to_json())
        assert restored == trace

    def test_file_round_trip(self, tmp_path):
        trace = sample_trace()
        path = trace.save(tmp_path / "trace.json")
        assert WorkloadTrace.load(path) == trace

    def test_version_guard(self):
        bad = sample_trace().to_json().replace(
            f'"version": {TRACE_VERSION}', '"version": 999'
        )
        with pytest.raises(ValueError):
            WorkloadTrace.from_json(bad)

    def test_trace_without_outcomes(self):
        trace = WorkloadTrace.from_run(
            "random", seed=1, horizon_s=60.0,
            events=[ArrivalEvent(time=1.0, app="ligo")],
        )
        restored = WorkloadTrace.from_json(trace.to_json())
        assert restored.strategy is None
        assert restored.outcomes == []


class TestSummaries:
    def test_arrivals_per_app(self):
        trace = sample_trace()
        assert trace.arrivals_per_app() == {"montage": 1, "ligo": 1}

    def test_finished_by(self):
        trace = sample_trace()
        assert trace.finished_by() == 1
        assert trace.finished_by(100.0) == 0

    def test_real_phase_schedule_serialises(self):
        rng = np.random.default_rng(7)
        events = phase_schedule(rng)
        trace = WorkloadTrace.from_run("phase", seed=7, horizon_s=43_200.0, events=events)
        restored = WorkloadTrace.from_json(trace.to_json())
        assert len(restored.events) == len(events)
        assert restored.events[0] == events[0]
