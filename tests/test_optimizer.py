"""Tests for the cost-based access-path optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import BPlusTree
from repro.engine.hashindex import HashIndex
from repro.engine.heap import HeapFile
from repro.engine.optimizer import (
    AccessPathOptimizer,
    PathChoice,
    PathKind,
    Predicate,
)


@pytest.fixture
def heap():
    keys = list(range(1000))
    return HeapFile({"k": keys, "cat": [k % 10 for k in keys]})


@pytest.fixture
def optimizer(heap):
    return AccessPathOptimizer(
        heap,
        btrees={"k": BPlusTree.bulk_load(heap.index_pairs("k"), order=16)},
        hashes={"cat": HashIndex.build(heap.index_pairs("cat"))},
    )


class TestPredicate:
    def test_exactly_one_shape(self):
        with pytest.raises(ValueError):
            Predicate(column="k")  # nothing
        with pytest.raises(ValueError):
            Predicate(column="k", equals=1, low=0)  # two shapes
        Predicate(column="k", equals=1)
        Predicate(column="k", low=0, high=10)
        Predicate(column="k", order_by=True)


class TestSelectivity:
    def test_equality_selectivity_uniform(self, optimizer):
        assert optimizer.equality_selectivity("k") == pytest.approx(1 / 1000)
        assert optimizer.equality_selectivity("cat") == pytest.approx(1 / 10)

    def test_range_selectivity_interpolates(self, optimizer):
        sel = optimizer.range_selectivity("k", 0, 499)
        assert sel == pytest.approx(0.5, abs=0.01)
        assert optimizer.range_selectivity("k", -100, 2000) == 1.0


class TestChoices:
    def test_point_lookup_uses_btree(self, optimizer):
        choice = optimizer.estimate(Predicate(column="k", equals=500))
        assert choice.kind is PathKind.BTREE
        assert choice.estimated_cost < choice.scan_cost

    def test_equality_on_hash_column_uses_hash(self, optimizer):
        choice = optimizer.estimate(Predicate(column="cat", equals=3))
        assert choice.kind is PathKind.HASH

    def test_unindexed_column_scans(self, heap):
        opt = AccessPathOptimizer(heap)
        choice = opt.estimate(Predicate(column="k", equals=1))
        assert choice.kind is PathKind.FULL_SCAN
        assert choice.speedup_estimate == 1.0

    def test_narrow_range_uses_btree(self, optimizer):
        choice = optimizer.estimate(Predicate(column="k", low=10, high=20))
        assert choice.kind is PathKind.BTREE

    def test_huge_range_falls_back_to_scan(self, optimizer):
        choice = optimizer.estimate(Predicate(column="k", low=-1, high=1001))
        assert choice.kind is PathKind.FULL_SCAN

    def test_hash_never_serves_ranges(self, heap):
        opt = AccessPathOptimizer(
            heap, hashes={"k": HashIndex.build(heap.index_pairs("k"))}
        )
        choice = opt.estimate(Predicate(column="k", low=1, high=3))
        assert choice.kind is PathKind.FULL_SCAN

    def test_order_by_prefers_btree(self, optimizer):
        choice = optimizer.estimate(Predicate(column="k", order_by=True))
        assert choice.kind is PathKind.BTREE
        # n vs n log n
        assert choice.estimated_cost < choice.scan_cost


class TestExecution:
    def test_all_paths_return_same_rows_for_equality(self, heap, optimizer):
        choice, rows = optimizer.execute(Predicate(column="k", equals=42))
        assert rows == [42]
        plain = AccessPathOptimizer(heap)
        choice2, rows2 = plain.execute(Predicate(column="k", equals=42))
        assert choice2.kind is PathKind.FULL_SCAN
        assert rows2 == rows

    def test_range_execution_matches_scan(self, heap, optimizer):
        _, rows = optimizer.execute(Predicate(column="k", low=100, high=110))
        plain = AccessPathOptimizer(heap)
        _, expected = plain.execute(Predicate(column="k", low=100, high=110))
        assert sorted(rows) == sorted(expected)

    def test_order_by_execution(self, heap, optimizer):
        _, rows = optimizer.execute(Predicate(column="k", order_by=True))
        keys = heap.column("k")
        assert [keys[i] for i in rows] == sorted(keys)

    def test_open_range_bounds(self, optimizer):
        _, rows = optimizer.execute(Predicate(column="k", low=995))
        assert sorted(rows) == [996, 997, 998, 999]


@given(
    keys=st.lists(st.integers(min_value=0, max_value=200), min_size=2, max_size=300),
    low=st.integers(min_value=-10, max_value=210),
    high=st.integers(min_value=-10, max_value=210),
)
@settings(max_examples=40, deadline=None)
def test_property_optimizer_result_equals_scan(keys, low, high):
    heap = HeapFile({"k": keys})
    opt = AccessPathOptimizer(
        heap, btrees={"k": BPlusTree.bulk_load(heap.index_pairs("k"), order=8)}
    )
    _, rows = opt.execute(Predicate(column="k", low=low, high=high))
    expected = [i for i, k in enumerate(keys) if low < k < high]
    assert sorted(rows) == sorted(expected)
