"""Tests for the future-work extensions: deferred builds, adaptive fading."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.interleave.slots import BuildCandidate
from repro.tuning.adaptive import AdaptiveFadingController, UsageTrace
from repro.tuning.deferred import DeferredBuildPolicy


def candidate(name="t__x", pid=0, duration=30.0, gain=1.0):
    return BuildCandidate(index_name=name, partition_id=pid,
                          duration_s=duration, gain=gain)


class TestDeferredQueue:
    def test_unplaced_builds_accumulate(self):
        policy = DeferredBuildPolicy(PAPER_PRICING)
        policy.record_unplaced([candidate(pid=0), candidate(pid=1)])
        assert len(policy) == 2

    def test_deferral_counter_increments(self):
        policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=3)
        for _ in range(3):
            policy.record_unplaced([candidate()])
        assert policy.ripe()[0].deferrals == 3

    def test_placed_builds_leave_the_queue(self):
        policy = DeferredBuildPolicy(PAPER_PRICING)
        policy.record_unplaced([candidate(pid=0), candidate(pid=1)])
        policy.record_placed([candidate(pid=0)])
        assert len(policy) == 1

    def test_drop_index_clears_its_builds(self):
        policy = DeferredBuildPolicy(PAPER_PRICING)
        policy.record_unplaced([candidate("a__x", 0), candidate("b__y", 0)])
        policy.drop_index("a__x")
        assert len(policy) == 1

    def test_not_ripe_before_min_deferrals(self):
        policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=2)
        policy.record_unplaced([candidate()])
        assert policy.ripe() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            DeferredBuildPolicy(PAPER_PRICING, min_deferrals=0)
        with pytest.raises(ValueError):
            DeferredBuildPolicy(PAPER_PRICING, payback_factor=0.0)
        with pytest.raises(ValueError):
            DeferredBuildPolicy(PAPER_PRICING, max_batch_containers=0)


class TestBatchProposal:
    def test_no_batch_when_gain_too_small(self):
        policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=1, payback_factor=2.0)
        # 30 s build = 1 leased quantum = $0.1; gain $0.05 < 2 * $0.1.
        policy.record_unplaced([candidate(gain=0.05)])
        assert policy.propose_batch() is None

    def test_batch_proposed_when_gain_justifies(self):
        policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=1, payback_factor=2.0)
        policy.record_unplaced([candidate(pid=i, gain=1.0) for i in range(4)])
        batch = policy.propose_batch()
        assert batch is not None and batch.worthwhile
        assert batch.expected_gain_dollars == pytest.approx(4.0)
        assert batch.num_containers >= 1
        assert batch.cost_dollars > 0

    def test_batch_cost_covers_parallel_makespan(self):
        policy = DeferredBuildPolicy(
            PAPER_PRICING, min_deferrals=1, max_batch_containers=2
        )
        policy.record_unplaced(
            [candidate(pid=i, duration=90.0, gain=10.0) for i in range(4)]
        )
        batch = policy.propose_batch()
        assert batch is not None
        # 360 s of work over 2 containers -> >= 180 s each -> >= 3 quanta each.
        assert batch.leased_quanta >= 6

    def test_commit_clears_batch(self):
        policy = DeferredBuildPolicy(PAPER_PRICING, min_deferrals=1)
        policy.record_unplaced([candidate(pid=i, gain=5.0) for i in range(3)])
        batch = policy.propose_batch()
        assert batch is not None
        policy.commit_batch(batch)
        assert len(policy) == 0


class TestUsageTrace:
    def test_records_and_gaps(self):
        trace = UsageTrace()
        for t in (0.0, 60.0, 120.0):
            trace.record(t)
        assert trace.gaps() == [60.0, 60.0]

    def test_rejects_time_travel(self):
        trace = UsageTrace()
        trace.record(100.0)
        with pytest.raises(ValueError):
            trace.record(50.0)


class TestAdaptiveFading:
    def _controller(self, **kwargs):
        return AdaptiveFadingController(PAPER_PRICING, **kwargs)

    def test_default_before_history(self):
        ctl = self._controller(default_fade=5.0)
        assert ctl.suggest_fade("idx") == 5.0
        assert ctl.regularity("idx") is None

    def test_regular_usage_scores_high(self):
        ctl = self._controller()
        for t in range(0, 600, 60):
            ctl.record_usage("regular", float(t))
        assert ctl.regularity("regular") == pytest.approx(1.0)

    def test_bursty_usage_scores_lower(self):
        ctl = self._controller()
        for t in (0, 1, 2, 3, 500, 501, 502, 1500):
            ctl.record_usage("bursty", float(t))
        regular = self._controller()
        for t in range(0, 8 * 60, 60):
            regular.record_usage("r", float(t))
        assert ctl.regularity("bursty") < regular.regularity("r")

    def test_regular_gets_longer_fade_than_bursty(self):
        # Same mean usage gap (50 s); only regularity differs.
        ctl = self._controller(min_fade=0.5, max_fade=30.0)
        t = 0.0
        for _ in range(8):
            t += 50.0
            ctl.record_usage("regular", t)
        t = 0.0
        for i in range(8):
            t += 5.0 if i % 2 == 0 else 95.0
            ctl.record_usage("bursty", t)
        assert ctl.suggest_fade("regular") > ctl.suggest_fade("bursty")

    def test_fade_clamped(self):
        ctl = self._controller(min_fade=2.0, max_fade=10.0)
        for t in range(0, 100_000, 10_000):  # huge gaps
            ctl.record_usage("sparse", float(t))
        assert 2.0 <= ctl.suggest_fade("sparse") <= 10.0

    def test_fade_overrides_only_with_history(self):
        ctl = self._controller()
        ctl.record_usage("one", 0.0)
        for t in range(0, 300, 60):
            ctl.record_usage("many", float(t))
        overrides = ctl.fade_overrides()
        assert "many" in overrides and "one" not in overrides

    def test_record_dataflow_covers_all_candidates(self):
        ctl = self._controller()
        ctl.record_dataflow({"a__x", "b__y"}, time=0.0)
        assert ctl.usage_count("a__x") == 1
        assert ctl.usage_count("b__y") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFadingController(PAPER_PRICING, min_fade=0.0)
        with pytest.raises(ValueError):
            AdaptiveFadingController(PAPER_PRICING, min_observations=1)


class TestTunerIntegration:
    def test_tuner_uses_controller(self):
        from tests.test_tuner import flow_using, make_catalog
        from repro.scheduling.skyline import SkylineScheduler
        from repro.tuning.gain import GainModel, GainParameters
        from repro.tuning.history import DataflowHistory
        from repro.tuning.tuner import OnlineIndexTuner

        catalog = make_catalog()
        controller = AdaptiveFadingController(PAPER_PRICING)
        tuner = OnlineIndexTuner(
            catalog=catalog,
            gain_model=GainModel(PAPER_PRICING, catalog.cost_model, GainParameters()),
            history=DataflowHistory(PAPER_PRICING),
            scheduler=SkylineScheduler(PAPER_PRICING, max_skyline=2),
            fading_controller=controller,
        )
        for i in range(5):
            flow = flow_using(["t0__k"], name=f"d{i}")
            tuner.on_dataflow(flow, now=i * 60.0)
        # The controller saw every dataflow's candidates.
        assert controller.usage_count("t0__k") == 5

    def test_gain_model_fade_override(self):
        from repro.data.index_model import IndexCostModel
        from repro.tuning.gain import DataflowGainSample, GainModel, GainParameters
        from repro.data.table import (
            Column, ColumnType, TableSchema, TableStatistics, partition_table,
        )
        from repro.data.index_model import Index, IndexSpec

        model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING),
                          GainParameters(fade_quanta=1.0))
        schema = TableSchema("t", (Column("k", ColumnType.INTEGER),))
        stats = TableStatistics(avg_field_bytes={"k": 8.0})
        table = partition_table("t", schema, stats, total_records=1000)
        index = Index(spec=IndexSpec("t", ("k",)), table=table)
        sample = [DataflowGainSample(5.0, 10.0, 10.0)]
        short = model.evaluate(index, sample)  # D = 1
        long = model.evaluate(index, sample, fade_quanta=50.0)
        assert long.time_gain_quanta > short.time_gain_quanta
