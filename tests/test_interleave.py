"""Tests for the LP and online interleaving algorithms (Section 5.3)."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.interleave.lp import (
    lp_interleave,
    pack_builds_into_schedule,
    select_fastest,
    update_runtimes_for_indexes,
)
from repro.interleave.online import online_interleave
from repro.interleave.slots import BuildCandidate, parse_build_op_name, slots_by_size
from repro.scheduling.skyline import SkylineScheduler


def fragmented_flow():
    """Two parallel branches of unequal length create idle slots."""
    flow = Dataflow(name="frag")
    flow.add_operator(Operator(name="a", runtime=20.0))
    flow.add_operator(Operator(name="long", runtime=100.0))
    flow.add_operator(Operator(name="short", runtime=20.0))
    flow.add_operator(Operator(name="join", runtime=20.0))
    flow.add_edge("a", "long")
    flow.add_edge("a", "short")
    flow.add_edge("long", "join")
    flow.add_edge("short", "join")
    return flow


def candidates(n=6, duration=15.0):
    return [
        BuildCandidate(index_name=f"t{i}__c", partition_id=0, duration_s=duration,
                       gain=float(n - i))
        for i in range(n)
    ]


class TestBuildCandidate:
    def test_op_name_round_trip(self):
        cand = BuildCandidate("tbl__col", 7, 10.0, 1.0)
        assert parse_build_op_name(cand.op_name) == ("tbl__col", 7)

    def test_parse_rejects_other_names(self):
        assert parse_build_op_name("mProject_001") is None
        assert parse_build_op_name("build::broken") is None

    def test_operator_is_optional_negative_priority(self):
        op = BuildCandidate("t__c", 0, 10.0, 1.0).to_operator()
        assert op.optional and op.priority == -1

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            BuildCandidate("t__c", 0, 0.0, 1.0)


class TestLPInterleave:
    def test_builds_fit_in_idle_slots(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4)
        results = lp_interleave(fragmented_flow(), candidates(), scheduler)
        assert results
        for inter in results:
            combined = inter.combined()
            combined.validate(require_all_assigned=False)
            # Interleaving must not change time or money.
            assert combined.makespan_seconds() == pytest.approx(
                inter.schedule.makespan_seconds()
            )
            assert combined.money_quanta() == inter.schedule.money_quanta()

    def test_interleaving_reduces_fragmentation(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4)
        results = lp_interleave(fragmented_flow(), candidates(), scheduler)
        placed = [r for r in results if r.num_builds > 0]
        assert placed, "no schedule had room for any build"
        for inter in placed:
            assert inter.combined().fragmentation_quanta() < (
                inter.schedule.fragmentation_quanta()
            )

    def test_no_candidates_is_fine(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2)
        results = lp_interleave(fragmented_flow(), [], scheduler)
        assert all(r.num_builds == 0 for r in results)

    def test_oversized_build_not_placed(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2)
        huge = [BuildCandidate("t__c", 0, 10_000.0, 5.0)]
        results = lp_interleave(fragmented_flow(), huge, scheduler)
        assert all(r.num_builds == 0 for r in results)

    def test_select_fastest(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4)
        results = lp_interleave(fragmented_flow(), candidates(), scheduler)
        best = select_fastest(results)
        assert best.schedule.makespan_seconds() == min(
            r.schedule.makespan_seconds() for r in results
        )
        with pytest.raises(ValueError):
            select_fastest([])

    def test_pack_orders_by_gain_within_slot(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=1)
        schedule = scheduler.schedule(fragmented_flow())[0]
        inter = pack_builds_into_schedule(schedule, candidates())
        by_container = {}
        gains = {c.op_name: c.gain for c in candidates()}
        for a in sorted(inter.build_assignments, key=lambda a: a.start):
            by_container.setdefault(a.container_id, []).append(gains[a.op_name])
        for seq in by_container.values():
            # Within one contiguous run the most useful build goes first.
            assert seq == sorted(seq, reverse=True) or len(seq) == 1


class TestOnlineInterleave:
    def test_constraints_never_violated(self):
        base = SkylineScheduler(PAPER_PRICING, max_skyline=4).schedule(fragmented_flow())
        best_time = min(s.makespan_seconds() for s in base)
        best_money = min(s.money_quanta() for s in base)
        flow = fragmented_flow()
        results = online_interleave(
            flow, candidates(), SkylineScheduler(PAPER_PRICING, max_skyline=4)
        )
        assert min(r.schedule.makespan_seconds() for r in results) <= best_time + 1e-6
        assert min(r.schedule.money_quanta() for r in results) <= best_money

    def test_lp_schedules_at_least_as_many_builds(self):
        """Figure 8: LP packs more builds than the online algorithm."""
        scheduler_lp = SkylineScheduler(PAPER_PRICING, max_skyline=4)
        scheduler_on = SkylineScheduler(PAPER_PRICING, max_skyline=4)
        cands = candidates(n=10, duration=12.0)
        lp_results = lp_interleave(fragmented_flow(), cands, scheduler_lp)
        on_results = online_interleave(fragmented_flow(), cands, scheduler_on)
        assert max(r.num_builds for r in lp_results) >= max(
            r.num_builds for r in on_results
        )

    def test_build_assignments_are_build_ops(self):
        flow = fragmented_flow()
        results = online_interleave(
            flow, candidates(), SkylineScheduler(PAPER_PRICING, max_skyline=2)
        )
        for r in results:
            for a in r.build_assignments:
                assert parse_build_op_name(a.op_name) is not None


class TestRuntimeUpdate:
    def test_update_shrinks_runtime_and_inputs(self):
        flow = Dataflow(name="d")
        op = Operator(
            name="scan", runtime=100.0,
            inputs=(DataFile("t", 1000.0),),
            index_speedup={"t__x": 10.0},
        )
        flow.add_operator(op)
        update_runtimes_for_indexes(
            flow, {"t__x"}, fractions={"t__x": 1.0}, index_sizes_mb={"t__x": 50.0}
        )
        assert op.runtime == pytest.approx(10.0)
        assert op.inputs[0].size_mb == pytest.approx(1000.0 / 10.0 + 50.0)

    def test_update_never_grows_inputs(self):
        flow = Dataflow(name="d")
        op = Operator(
            name="scan", runtime=100.0,
            inputs=(DataFile("t", 10.0),),
            index_speedup={"t__x": 2.0},
        )
        flow.add_operator(op)
        update_runtimes_for_indexes(
            flow, {"t__x"}, index_sizes_mb={"t__x": 500.0}  # index bigger than data
        )
        assert op.inputs[0].size_mb <= 10.0

    def test_unavailable_index_leaves_op_alone(self):
        flow = Dataflow(name="d")
        op = Operator(
            name="scan", runtime=100.0,
            inputs=(DataFile("t", 10.0),),
            index_speedup={"t__x": 10.0},
        )
        flow.add_operator(op)
        update_runtimes_for_indexes(flow, {"other__y"})
        assert op.runtime == 100.0

    def test_slots_by_size_descending(self):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=1)
        schedule = scheduler.schedule(fragmented_flow())[0]
        slots = slots_by_size(schedule)
        durations = [s.duration for s in slots]
        assert durations == sorted(durations, reverse=True)
