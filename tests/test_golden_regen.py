"""Meta-test: the golden regeneration recipe matches the checked-in files.

If this fails, either a behavior change forgot ``make regen-golden`` or
the recipe in ``tests/golden/__init__.py`` drifted from what CI
replays — both are byte-determinism regressions worth a red build.
"""

from __future__ import annotations

from tests.golden import GOLDEN_DIR, regenerate, write_goldens


def test_regeneration_is_a_noop_on_a_clean_tree():
    fresh = regenerate()
    assert set(fresh) == {"roi_table.txt", "two_container_trace.json"}
    for name, content in fresh.items():
        on_disk = (GOLDEN_DIR / name).read_text()
        assert content == on_disk, (
            f"{name} drifted from its regeneration recipe; "
            f"run `make regen-golden` (and review the diff)"
        )


def test_write_goldens_targets_the_requested_directory(tmp_path):
    written = write_goldens(tmp_path)
    assert sorted(p.name for p in written) == [
        "roi_table.txt", "two_container_trace.json",
    ]
    for path in written:
        assert path.parent == tmp_path
        assert path.read_text() == (GOLDEN_DIR / path.name).read_text()
