"""Tests for the container pool and cache-aware pooled execution."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.config import ExperimentConfig
from repro.core.pool import ContainerPool
from repro.core.service import QaaSService, Strategy
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.client import ArrivalEvent, build_workload
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.interleave.lp import InterleavedSchedule
from repro.scheduling.schedule import Assignment, Schedule


@pytest.fixture
def pool():
    return ContainerPool(PAPER_PRICING, max_containers=8)


class TestPoolLifecycle:
    def test_fresh_acquisition_is_free_until_occupied(self, pool):
        containers = pool.acquire(2, time=10.0)
        assert len(containers) == 2
        assert pool.stats.quanta_paid == 0  # nothing charged yet
        assert pool.stats.containers_created == 2
        pool.occupy(containers[0], start=10.0, until=20.0)
        # The lease clock starts at the first occupation (per-container
        # quantum boundaries, like a VM billed from its launch).
        assert containers[0].lease_start == 10.0
        assert containers[0].lease_end == 70.0
        assert pool.stats.quanta_paid == 1

    def test_idle_container_reused_within_quantum(self, pool):
        [c] = pool.acquire(1, time=0.0)
        pool.occupy(c, start=0.0, until=20.0)
        [again] = pool.acquire(1, time=30.0)
        assert again.container_id == c.container_id
        assert pool.stats.containers_reused == 1
        assert pool.stats.quanta_paid == 1  # no new lease

    def test_idle_container_expires_at_quantum_end(self, pool):
        [c] = pool.acquire(1, time=0.0)
        pool.occupy(c, start=0.0, until=20.0)
        pool.expire_idle(time=61.0)
        assert len(pool) == 0
        assert pool.stats.containers_expired == 1
        [fresh] = pool.acquire(1, time=61.0)
        assert fresh.container_id != c.container_id

    def test_busy_container_not_reused(self, pool):
        [c] = pool.acquire(1, time=0.0)
        pool.occupy(c, start=0.0, until=50.0)
        [other] = pool.acquire(1, time=10.0)
        assert other.container_id != c.container_id

    def test_occupy_extends_lease_and_charges(self, pool):
        [c] = pool.acquire(1, time=0.0)
        added = pool.occupy(c, start=0.0, until=150.0)
        assert added == 3  # quanta 0, 1, 2
        assert c.lease_end == 180.0
        assert pool.stats.quanta_paid == 3

    def test_occupy_within_lease_is_free(self, pool):
        [c] = pool.acquire(1, time=0.0)
        assert pool.occupy(c, start=0.0, until=59.0) == 1  # first quantum
        assert pool.occupy(c, start=59.0, until=59.5) == 0

    def test_cache_survives_reuse(self, pool):
        [c] = pool.acquire(1, time=0.0)
        c.cache.put("file", 10.0)
        pool.occupy(c, start=0.0, until=20.0)
        [again] = pool.acquire(1, time=30.0)
        assert "file" in again.cache

    def test_pool_exhaustion(self):
        small = ContainerPool(PAPER_PRICING, max_containers=1)
        [c] = small.acquire(1, time=0.0)
        small.occupy(c, start=0.0, until=50.0)
        with pytest.raises(RuntimeError):
            small.acquire(1, time=10.0)

    def test_validation(self, pool):
        with pytest.raises(ValueError):
            pool.acquire(0, time=0.0)
        with pytest.raises(ValueError):
            ContainerPool(PAPER_PRICING, max_containers=0)
        [c] = pool.acquire(1, time=0.0)
        pool.occupy(c, start=0.0, until=40.0)
        with pytest.raises(ValueError):
            pool.occupy(c, start=0.0, until=10.0)
        with pytest.raises(ValueError):
            pool.occupy(c, start=50.0, until=45.0)


def one_op_flow(name="d", size_mb=1250.0):
    flow = Dataflow(name=name)
    flow.add_operator(
        Operator(name="scan", runtime=20.0, inputs=(DataFile("bigfile", size_mb),))
    )
    return flow


def interleaved_for(flow):
    # 1250 MB transfer = 10 s at 125 MB/s; runtime 20 s.
    schedule = Schedule(
        dataflow=flow, pricing=PAPER_PRICING,
        assignments=[Assignment("scan", 0, 0.0, 30.0)],
    )
    return InterleavedSchedule(schedule=schedule)


class TestPooledExecution:
    def _simulator(self):
        return ExecutionSimulator(PAPER_PRICING, runtime_error=0.0,
                                  rng=np.random.default_rng(0))

    def test_cold_cache_pays_transfer(self, pool):
        sim = self._simulator()
        result = sim.execute_pooled(interleaved_for(one_op_flow("a")), 0.0, pool)
        assert result.makespan_seconds == pytest.approx(30.0)  # 20 + 10

    def test_warm_cache_skips_transfer(self, pool):
        sim = self._simulator()
        sim.execute_pooled(interleaved_for(one_op_flow("a")), 0.0, pool)
        # Second dataflow reads the same file 35 s later on the reused
        # container: the cache is warm, so only the 20 s of compute.
        result = sim.execute_pooled(interleaved_for(one_op_flow("b")), 35.0, pool)
        assert result.makespan_seconds == pytest.approx(20.0)

    def test_reuse_makes_second_run_cheaper(self, pool):
        sim = self._simulator()
        first = sim.execute_pooled(interleaved_for(one_op_flow("a")), 0.0, pool)
        second = sim.execute_pooled(interleaved_for(one_op_flow("b")), 35.0, pool)
        assert first.money_quanta == 1
        assert second.money_quanta == 0  # fits the already-paid quantum

    def test_expired_container_means_cold_cache(self, pool):
        sim = self._simulator()
        sim.execute_pooled(interleaved_for(one_op_flow("a")), 0.0, pool)
        # Two quanta later the idle container is gone.
        result = sim.execute_pooled(interleaved_for(one_op_flow("b")), 130.0, pool)
        assert result.makespan_seconds == pytest.approx(30.0)


class TestServicePooling:
    def _run(self, enable):
        """A backlog of same-app dataflows: once the concurrency slots
        fill, each new execution starts exactly when an earlier one
        finishes and can take over its still-leased containers."""
        cfg = ExperimentConfig(
            total_time_s=7200.0, max_skyline=2, scheduler_containers=8,
            max_candidates=30, max_queued_gain=5, enable_pooling=enable, seed=3,
        )
        workload = build_workload(cfg.pricing, seed=cfg.seed)
        service = QaaSService(workload, cfg, Strategy.NO_INDEX)
        events = [ArrivalEvent(time=1.0 + i, app="montage") for i in range(16)]
        return service.run(events), service

    def test_pooling_reuses_containers_under_backlog(self):
        plain, _ = self._run(enable=False)
        pooled, service = self._run(enable=True)
        assert pooled.num_finished == plain.num_finished
        assert service.pool is not None
        assert service.pool.stats.containers_reused > 0
        assert service.pool.stats.quanta_saved_by_reuse > 0

    def test_pooling_never_costs_more(self):
        plain, _ = self._run(enable=False)
        pooled, _ = self._run(enable=True)
        assert pooled.compute_quanta() <= plain.compute_quanta()

    def test_pooling_never_slows_dataflows(self):
        plain, _ = self._run(enable=False)
        pooled, _ = self._run(enable=True)
        assert np.mean([o.makespan_quanta for o in pooled.outcomes]) <= (
            np.mean([o.makespan_quanta for o in plain.outcomes]) + 1e-9
        )
