"""End-to-end chaos harness tests: subprocess kill sweeps + fault soak.

The sweep is the acceptance gate of the recovery subsystem: for seeded
workloads, kill the CLI process at every named crash point (plus sampled
WAL record boundaries and torn-record writes), resume with
``repro run --resume``, and require stdout and every obs artifact to be
byte-identical to the uninterrupted baseline. The soak composes random
in-process crashes with PR 1's fault injector under conservation
invariant monitors.
"""

from __future__ import annotations

import pytest

from repro.recovery.chaos import run_chaos_soak, run_crash_sweep
from repro.recovery.hooks import install_crash_plan


@pytest.fixture(autouse=True)
def _no_crash_plan():
    previous = install_crash_plan(None)
    yield
    install_crash_plan(previous)


@pytest.mark.parametrize("seed", [7, 23])
def test_crash_sweep_recovers_byte_identically(tmp_path, seed):
    report = run_crash_sweep(
        tmp_path,
        seed=seed,
        horizon_quanta=3,
        snapshot_every=3,
        wal_stride=83,
        torn_samples=2,
    )
    detail = "; ".join(f"{c.label}: {c.detail}" for c in report.failures)
    assert report.ok, detail
    # The sweep must have actually killed processes, including at least
    # one WAL-boundary and one torn-record case.
    assert report.crashes >= 10
    assert any(c.crashed for c in report.cases if c.label.startswith("wal-record"))
    assert any(c.crashed for c in report.cases if c.label.startswith("wal-torn"))
    assert report.wal_records > 10


def test_chaos_soak_holds_invariants_and_metrics(tmp_path):
    report = run_chaos_soak(
        tmp_path, seed=3, horizon_quanta=4, crashes=4, snapshot_every=2
    )
    assert report.identical
    assert report.crashes_hit >= 1
    assert report.resumes == report.crashes_hit
    assert report.checks > 0
