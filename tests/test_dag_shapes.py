"""Structural tests: the generated DAGs match the Figure 5 shapes."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.client import build_workload


@pytest.fixture(scope="module")
def flows():
    workload = build_workload(PAPER_PRICING, seed=5)
    return {
        app: workload.next_dataflow(app, issued_at=0.0)
        for app in ("montage", "ligo", "cybershake")
    }


class TestMontageShape:
    """Fig. 5A: wide projections -> pairwise diffs -> bottlenecks ->
    wide background level -> aggregation chain."""

    def test_entry_level_is_projections(self, flows):
        flow = flows["montage"]
        entries = flow.entry_operators()
        assert all(name.startswith("mProject") for name in entries)
        assert len(entries) >= 20

    def test_difffit_has_two_parents(self, flows):
        flow = flows["montage"]
        for name in flow.operators:
            if name.startswith("mDiffFit"):
                assert len(flow.predecessors(name)) == 2

    def test_concatfit_aggregates_all_diffs(self, flows):
        flow = flows["montage"]
        diffs = [n for n in flow.operators if n.startswith("mDiffFit")]
        assert sorted(flow.predecessors("mConcatFit")) == sorted(diffs)

    def test_tail_chain(self, flows):
        flow = flows["montage"]
        assert flow.successors("mImgTbl") == ["mAdd"]
        assert flow.successors("mAdd") == ["mShrink"]
        assert flow.successors("mShrink") == ["mJPEG"]
        assert flow.exit_operators() == ["mJPEG"]

    def test_background_joins_bgmodel_and_projection(self, flows):
        flow = flows["montage"]
        for name in flow.operators:
            if name.startswith("mBackground"):
                preds = flow.predecessors(name)
                assert "mBgModel" in preds
                assert any(p.startswith("mProject") for p in preds)


class TestLigoShape:
    """Fig. 5B: independent groups of two-stage template/inspiral
    pipelines with coincidence (Thinca) synchronisation points."""

    def test_group_structure(self, flows):
        flow = flows["ligo"]
        groups = {name.split("_")[1] for name in flow.operators if "_" in name}
        assert len(groups) == 5

    def test_inspiral_reads_data_banks_do_not(self, flows):
        flow = flows["ligo"]
        for name, op in flow.operators.items():
            if name.startswith("Inspiral1"):
                assert op.inputs, f"{name} should read detector frames"
            if name.startswith("TmpltBank"):
                assert not op.inputs

    def test_thinca_aggregates_its_group(self, flows):
        flow = flows["ligo"]
        for name in flow.operators:
            if name.startswith("Thinca1"):
                group = name.split("_")[1]
                preds = flow.predecessors(name)
                assert len(preds) == 5
                assert all(p.startswith(f"Inspiral1_{group}") for p in preds)

    def test_bimodal_runtimes(self, flows):
        flow = flows["ligo"]
        inspiral = [op.runtime for n, op in flow.operators.items() if "Inspiral" in n]
        other = [op.runtime for n, op in flow.operators.items() if "Inspiral" not in n]
        assert min(inspiral) > 10 * max(other)

    def test_groups_are_independent(self, flows):
        flow = flows["ligo"]
        # No edge crosses between groups.
        for edge in flow.edges:
            src_group = edge.src.split("_")[1]
            dst_group = edge.dst.split("_")[1]
            assert src_group == dst_group


class TestCybershakeShape:
    """Fig. 5C: a few SGT roots fan out to many synthesis/peak pairs,
    collected by two zip aggregators."""

    def test_four_extract_roots(self, flows):
        flow = flows["cybershake"]
        entries = flow.entry_operators()
        assert sorted(entries) == [f"ExtractSGT_{i}" for i in range(4)]

    def test_fanout_width(self, flows):
        flow = flows["cybershake"]
        synths = [n for n in flow.operators if n.startswith("SeismogramSynthesis")]
        assert len(synths) == 47
        for name in synths:
            preds = flow.predecessors(name)
            assert len(preds) == 1 and preds[0].startswith("ExtractSGT")

    def test_two_aggregators_collect_everything(self, flows):
        flow = flows["cybershake"]
        synths = {n for n in flow.operators if n.startswith("SeismogramSynthesis")}
        peaks = {n for n in flow.operators if n.startswith("PeakValCalc")}
        assert set(flow.predecessors("ZipSeis")) == synths
        assert set(flow.predecessors("ZipPSA")) == peaks
        assert sorted(flow.exit_operators()) == ["ZipPSA", "ZipSeis"]

    def test_heavy_tail_inputs_attached_to_roots(self, flows):
        flow = flows["cybershake"]
        root_inputs = [
            f.size_mb
            for n, op in flow.operators.items()
            if n.startswith("ExtractSGT")
            for f in op.inputs
        ]
        assert max(root_inputs) > 10_000  # the multi-GB SGT files
        assert min(root_inputs) < 100


class TestCrossApp:
    def test_dag_depth_ordering(self, flows):
        """LIGO's two-stage pipelines are the deepest; CyberShake's
        fan-out is the shallowest wide graph."""
        depths = {app: len(flow.levels()) for app, flow in flows.items()}
        assert depths["montage"] >= 6  # the long aggregation tail
        assert depths["ligo"] == 6  # bank -> inspiral -> thinca, twice
        assert depths["cybershake"] == 4  # extract -> synth -> peak -> zip

    def test_every_flow_validates(self, flows):
        for flow in flows.values():
            flow.validate()
            assert len(flow) == 100
