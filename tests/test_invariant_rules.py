"""Direct unit tests for every InvariantMonitor conservation rule.

The chaos soak and the exploration engine only ever see these rules
fire on *emergent* corruption; each test here instead seeds a state
that violates exactly one rule and asserts the monitor reports exactly
that rule — so a silently weakened (or accidentally deleted) check
fails its own test rather than a six-minute soak somewhere downstream.

The seeded service comes from the exploration scenario builder (tiny,
fault-free, deterministic); on it the full monitor is clean, which each
test asserts before planting its violation.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.explore.scenarios import build_scenario
from repro.recovery.invariants import InvariantError, InvariantMonitor


@pytest.fixture()
def run():
    scenario = build_scenario("toy", seed=0)
    return scenario.build()


@pytest.fixture()
def monitor(run):
    monitor = InvariantMonitor(run.service)
    assert monitor.check(run.state, run.service.storage.accounted_until) == []
    return monitor


def names(monitor, run) -> list[str]:
    t = run.service.storage.accounted_until
    return [v.name for v in monitor.check(run.state, t)]


class _FakeHistory:
    """A stand-in history whose window geometry tests control exactly."""

    def __init__(self, head: int, end: int, length: int, max_records=None):
        self.head_position = head
        self.end_position = end
        self.max_records = max_records
        self._length = length
        self.mutation_version = 0

    def __len__(self) -> int:
        return self._length


class _FakeMetrics:
    """A stand-in metrics object with a detached compute_dollars."""

    def __init__(self, quanta: list[int], compute_dollars: float):
        self._quanta = quanta
        self.compute_dollars = compute_dollars

    def finished(self, by=None):
        return [SimpleNamespace(money_quanta=q) for q in self._quanta]


# ----------------------------------------------------------------------
# billing
# ----------------------------------------------------------------------
def test_billing_conservation_detects_integral_drift(run, monitor):
    run.service.storage._mb_seconds += 1.0
    assert names(monitor, run) == ["billing-conservation"]


def test_billing_monotone_detects_backwards_integral(run, monitor):
    # A resume that rewound billing behind what an earlier check already
    # observed as settled: the watermark sits above the maintained value.
    monitor._last_mb_seconds = run.service.storage.accounted_mb_seconds + 5.0
    assert names(monitor, run) == ["billing-monotone"]


# ----------------------------------------------------------------------
# catalog/storage agreement
# ----------------------------------------------------------------------
def test_catalog_storage_detects_built_without_object(run, monitor):
    service = run.service
    name = sorted(service.catalog.indexes)[0]
    index = service.catalog.indexes[name]
    pid = sorted(index.partitions)[0]
    index.partitions[pid].mark_built(0.0, table_version=0)
    assert names(monitor, run) == ["catalog-storage"]


def test_catalog_storage_detects_untracked_live_object(run, monitor):
    service = run.service
    name = sorted(service.catalog.indexes)[0]
    index = service.catalog.indexes[name]
    pid = sorted(index.partitions)[0]
    path = index.spec.path(pid)
    service.storage.put(path, 1.0, service.storage.accounted_until)
    assert path not in service._orphan_paths
    assert names(monitor, run) == ["catalog-storage"]


# ----------------------------------------------------------------------
# history window
# ----------------------------------------------------------------------
def test_history_monotone_detects_head_rollback(run, monitor):
    monitor._last_head = run.service.tuner.history.head_position + 1
    assert names(monitor, run) == ["history-monotone"]


def test_history_monotone_detects_version_rollback(run, monitor):
    monitor._last_version = run.service.tuner.history.mutation_version + 1
    assert names(monitor, run) == ["history-monotone"]


def test_history_window_detects_inverted_window(run, monitor):
    run.service.tuner.history = _FakeHistory(head=5, end=3, length=0)
    assert names(monitor, run) == ["history-window"]


def test_history_window_detects_bound_overflow(run, monitor):
    run.service.tuner.history = _FakeHistory(
        head=0, end=3, length=3, max_records=2
    )
    assert names(monitor, run) == ["history-window"]


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_schedule_overlap_detects_double_booked_container(run, monitor):
    overlapping = [
        SimpleNamespace(container_id=1, start=0.0, end=10.0, op_name="op_a"),
        SimpleNamespace(container_id=1, start=5.0, end=15.0, op_name="op_b"),
    ]
    decision = SimpleNamespace(
        interleaved=SimpleNamespace(
            schedule=SimpleNamespace(
                dataflow_assignments=lambda: list(overlapping)
            )
        )
    )
    run.state.pending.append((60.0, None, decision, "app"))
    assert names(monitor, run) == ["schedule-overlap"]


# ----------------------------------------------------------------------
# money
# ----------------------------------------------------------------------
def test_money_conservation_detects_negative_quanta(run, monitor):
    run.state.metrics = _FakeMetrics(quanta=[-1], compute_dollars=-0.1)
    assert names(monitor, run) == ["money-conservation"]


def test_money_conservation_detects_dollar_mismatch(run, monitor):
    run.state.metrics = _FakeMetrics(quanta=[3], compute_dollars=1.0)
    assert names(monitor, run) == ["money-conservation"]


def test_money_conservation_detects_negative_storage_integral(run, monitor):
    storage = run.service.storage
    storage._mb_seconds = -1.0
    # Keep the other billing rules quiet so exactly this rule fires.
    storage.recompute_mb_seconds = lambda: -1.0
    monitor._last_mb_seconds = -1.0
    assert names(monitor, run) == ["money-conservation"]


# ----------------------------------------------------------------------
# the error type
# ----------------------------------------------------------------------
def test_invariant_error_carries_context(run, monitor):
    run.service.storage._mb_seconds += 1.0
    t = run.service.storage.accounted_until
    violations = monitor.check(run.state, t)
    error = InvariantError(
        violations, context={"seed": 7, "step_index": 3, "harness": "test"}
    )
    assert error.violations == violations
    assert error.context["seed"] == 7
    assert error.context["step_index"] == 3
    assert "billing-conservation" in str(error)


def test_invariant_error_context_defaults_empty():
    error = InvariantError([])
    assert error.context == {}
    assert str(error) == "invariant violation"
