"""Tests for heterogeneous VM types and the heterogeneous scheduler."""

import pytest

from repro.cloud.container import ContainerSpec
from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.vmtypes import VMType, default_vm_catalog
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.scheduling.hetero import HeterogeneousSkylineScheduler
from repro.scheduling.skyline import SkylineScheduler


def diamond(runtimes=(30.0, 120.0, 120.0, 30.0)):
    flow = Dataflow(name="diamond")
    for name, rt in zip("abcd", runtimes):
        flow.add_operator(Operator(name=name, runtime=rt))
    flow.add_edge("a", "b")
    flow.add_edge("a", "c")
    flow.add_edge("b", "d")
    flow.add_edge("c", "d")
    return flow


class TestVMType:
    def test_runtime_scaling(self):
        large = default_vm_catalog()[2]
        assert large.cpu_speed == 2.0
        assert large.runtime_seconds(100.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VMType("x", ContainerSpec(), cpu_speed=0.0)
        with pytest.raises(ValueError):
            VMType("x", ContainerSpec(), price_per_quantum=-1.0)
        with pytest.raises(ValueError):
            default_vm_catalog()[0].runtime_seconds(-1.0)

    def test_catalog_price_ordering(self):
        catalog = default_vm_catalog()
        prices = [t.price_per_quantum for t in catalog]
        speeds = [t.cpu_speed for t in catalog]
        assert prices == sorted(prices)
        assert speeds == sorted(speeds)


class TestHeterogeneousScheduler:
    def test_single_type_reduces_to_homogeneous(self):
        flow_a, flow_b = diamond(), diamond()
        single = [VMType("standard", ContainerSpec(), 1.0, 0.1)]
        hetero = HeterogeneousSkylineScheduler(
            PAPER_PRICING, vm_types=single, max_skyline=8, max_containers=4
        ).schedule(flow_a)
        homo = SkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(flow_b)
        assert min(h.makespan_seconds() for h in hetero) == pytest.approx(
            min(s.makespan_seconds() for s in homo)
        )

    def test_large_vms_unlock_faster_points(self):
        hetero = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(diamond())
        homo = SkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(diamond())
        assert min(h.makespan_seconds() for h in hetero) < min(
            s.makespan_seconds() for s in homo
        )

    def test_small_vms_unlock_cheaper_points(self):
        # 330 s of serial work: 6 standard quanta ($0.60) but only 11
        # small-VM quanta ($0.55) — the half-price flavour wastes less of
        # its final quantum.
        flow = diamond(runtimes=(30.0, 120.0, 150.0, 30.0))
        hetero = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(flow)
        homo = SkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(diamond(runtimes=(30.0, 120.0, 150.0, 30.0)))
        assert min(h.money_dollars() for h in hetero) < min(
            s.money_dollars() for s in homo
        )

    def test_skyline_is_pareto_on_time_dollars(self):
        skyline = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=4
        ).schedule(diamond())
        points = [(s.makespan_seconds(), s.money_dollars()) for s in skyline]
        for i, (t1, m1) in enumerate(points):
            for j, (t2, m2) in enumerate(points):
                if i != j:
                    assert not (t2 <= t1 + 1e-9 and m2 < m1 - 1e-9)

    def test_types_used_accounting(self):
        skyline = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=4, max_containers=4
        ).schedule(diamond())
        for schedule in skyline:
            counts = schedule.types_used()
            assert sum(counts.values()) == len(schedule.container_types)
            assert schedule.money_dollars() > 0

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            HeterogeneousSkylineScheduler(PAPER_PRICING, vm_types=[])

    def test_optional_ops_skipped(self):
        flow = diamond()
        flow.add_operator(Operator(name="bx", runtime=5.0, priority=-1, optional=True))
        skyline = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=4, max_containers=4
        ).schedule(flow)
        for schedule in skyline:
            assert all(a.op_name != "bx" for a in schedule.assignments)
