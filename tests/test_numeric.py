"""Unit tests for repro.core.numeric — the sanctioned tolerance helpers."""

from repro.core.numeric import (
    MONEY_EPS,
    TIME_EPS,
    ceil_tol,
    eq_tol,
    floor_tol,
    ge_tol,
    gt_tol,
    is_zero,
    le_tol,
    lt_tol,
    money_eq,
    ne_tol,
    time_eq,
)


class TestEquality:
    def test_money_eq_absorbs_summation_noise(self):
        assert money_eq(0.1 + 0.2, 0.3)
        assert money_eq(sum([0.1] * 10), 1.0)

    def test_money_eq_rejects_real_differences(self):
        assert not money_eq(0.3, 0.3 + 1e-6)
        assert not money_eq(0.0, MONEY_EPS * 10)

    def test_time_eq(self):
        assert time_eq(60.0 * 7, 420.0000000001)
        assert not time_eq(60.0, 60.001)

    def test_eq_ne_are_complements(self):
        for a, b in [(1.0, 1.0 + 1e-12), (1.0, 1.1), (0.0, 0.0)]:
            assert eq_tol(a, b) != ne_tol(a, b)


class TestOrderings:
    def test_ge_tol_forgives_shortfall_within_tol(self):
        assert ge_tol(1.0 - 1e-12, 1.0)
        assert not ge_tol(0.9, 1.0)

    def test_le_tol_forgives_overshoot_within_tol(self):
        assert le_tol(1.0 + 1e-12, 1.0)
        assert not le_tol(1.1, 1.0)

    def test_strict_comparisons_need_clear_margin(self):
        assert not gt_tol(1.0 + 1e-12, 1.0)
        assert gt_tol(1.0 + 1e-6, 1.0)
        assert not lt_tol(1.0 - 1e-12, 1.0)
        assert lt_tol(1.0 - 1e-6, 1.0)

    def test_zero_tolerance_is_exact(self):
        # The paper's benefit criterion (gain strictly positive) uses tol=0.
        assert gt_tol(1e-300, 0.0, tol=0.0)
        assert not gt_tol(0.0, 0.0, tol=0.0)


class TestGridRounding:
    def test_floor_tol_forgives_crumb_below_integer(self):
        assert floor_tol(2.9999999999) == 3
        assert floor_tol(2.5) == 2
        assert floor_tol(3.0) == 3

    def test_ceil_tol_forgives_crumb_above_integer(self):
        assert ceil_tol(3.0000000001) == 3
        assert ceil_tol(2.5) == 3
        assert ceil_tol(3.0) == 3

    def test_billing_grid_never_drops_a_quantum(self):
        # 42 quanta of 60 s accumulated as floats still bill 42 quanta.
        elapsed = sum([60.0 / 7] * 7 * 42)
        assert floor_tol(elapsed / 60.0) == 42
        assert ceil_tol(elapsed / 60.0) == 42

    def test_is_zero(self):
        assert is_zero(0.0)
        assert is_zero(1e-15)
        assert not is_zero(1e-9)
        assert TIME_EPS > 0
