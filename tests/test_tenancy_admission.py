"""Admission-controller unit and property tests.

The derandomized Hypothesis suites prove the controller's four contract
properties over arbitrary submission streams: fair-share weights are
respected within one quantum, token buckets never go negative, the shed
set is a pure function of the stream (deterministic for a fixed seed),
and no submission is ever silently dropped.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tenancy import (
    AdmissionController,
    AdmissionOutcome,
    Submission,
    TokenBucket,
)

QUANTUM = 60.0


def controller(**overrides):
    kwargs = dict(
        tenants=3,
        quantum_seconds=QUANTUM,
        queue_depth=8,
        quantum_slots=6,
        shed_policy="reject",
    )
    kwargs.update(overrides)
    return AdmissionController(**kwargs)


def sub(tenant, time, seq=0, attempt=0):
    return Submission(
        tenant_id=tenant, seq=seq, time=time, app="montage", attempt=attempt
    )


class TestGates:
    def test_admits_within_all_gates(self):
        d = controller().decide(sub(0, 1.0), backlog=0)
        assert d.outcome is AdmissionOutcome.ADMITTED
        assert d.reason == "ok"
        assert d.retry_at is None

    def test_backpressure_precedes_other_gates(self):
        c = controller(rate_quanta=0.0)
        d = c.decide(sub(0, 1.0), backlog=8)
        assert d.outcome is AdmissionOutcome.SHED
        assert d.reason == "queue_full"

    def test_rate_limit_names_its_gate(self):
        c = controller(rate_quanta=1.0, burst=1.0)
        assert c.decide(sub(0, 0.0), backlog=0).reason == "ok"
        d = c.decide(sub(0, 0.0, seq=1), backlog=0)
        assert d.outcome is AdmissionOutcome.SHED
        assert d.reason == "rate_limited"

    def test_fair_share_blocks_beyond_spare(self):
        c = controller(quantum_slots=3)
        # guarantee is 1 each; tenant 0 may take its guarantee plus the
        # unreserved spare, but never tenants 1/2's unconsumed slots.
        reasons = [c.decide(sub(0, 1.0, seq=i), backlog=0).reason for i in range(3)]
        assert reasons == ["ok", "fair_share", "fair_share"]
        assert c.decide(sub(1, 2.0), backlog=0).reason == "ok"
        assert c.decide(sub(2, 3.0), backlog=0).reason == "ok"

    def test_quantum_roll_resets_usage(self):
        c = controller(quantum_slots=3)
        for i in range(3):
            c.decide(sub(0, 1.0, seq=i), backlog=0)
        assert c.decide(sub(0, QUANTUM + 1.0, seq=9), backlog=0).reason == "ok"

    def test_defer_policy_requeues_then_sheds(self):
        c = controller(shed_policy="defer", defer_quanta=1.0, max_defers=2)
        d = c.decide(sub(0, 5.0), backlog=8)
        assert d.outcome is AdmissionOutcome.DEFERRED
        assert d.retry_at == pytest.approx(5.0 + QUANTUM)
        final = c.decide(sub(0, 5.0, attempt=2), backlog=8)
        assert final.outcome is AdmissionOutcome.SHED
        assert final.reason == "defer_limit"

    def test_priority_policy_sheds_lowest_weight_outright(self):
        c = controller(shed_policy="priority", weights=(2.0, 1.0, 0.5))
        heavy = c.decide(sub(0, 1.0), backlog=8)
        assert heavy.outcome is AdmissionOutcome.DEFERRED
        light = c.decide(sub(2, 1.0), backlog=8)
        assert light.outcome is AdmissionOutcome.SHED
        assert light.reason == "queue_full"

    def test_priority_with_uniform_weights_defers_everyone(self):
        c = controller(shed_policy="priority")
        d = c.decide(sub(2, 1.0), backlog=8)
        assert d.outcome is AdmissionOutcome.DEFERRED

    def test_init_aggregates_every_problem(self):
        with pytest.raises(ValueError) as err:
            AdmissionController(
                tenants=0,
                quantum_seconds=0.0,
                queue_depth=0,
                rate_quanta=-1.0,
                shed_policy="drop",
                max_defers=-1,
            )
        message = str(err.value)
        assert message.startswith("invalid AdmissionController: ")
        for field in ("tenants", "quantum_seconds", "queue_depth",
                      "rate_quanta", "shed_policy", "max_defers"):
            assert field in message


# ----------------------------------------------------------------------
# Property suites (derandomized: the examples are a pure function of
# the test body, like the seed-determinism contract they check).
# ----------------------------------------------------------------------
streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),       # tenant
        st.floats(min_value=0.0, max_value=5.0),     # inter-arrival gap
        st.integers(min_value=0, max_value=9),       # backlog
    ),
    max_size=60,
)


def drive(c, stream):
    """Feed a (tenant, gap, backlog) stream; returns the decisions."""
    now = 0.0
    decisions = []
    for seq, (tenant, gap, backlog) in enumerate(stream):
        now += gap
        decisions.append(c.decide(sub(tenant, now, seq=seq), backlog=backlog))
    return decisions


@given(stream=streams)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_fair_share_respected_within_one_quantum(stream):
    """A tenant submitting within its guarantee is never fair-share shed,
    and one quantum never admits more than its slot budget."""
    c = controller(quantum_slots=6, weights=(3.0, 2.0, 1.0))
    now = 0.0
    admitted_in_quantum = {}
    used = {}
    for seq, (tenant, gap, _backlog) in enumerate(stream):
        now += gap
        quantum = int(now // QUANTUM)
        used.setdefault(quantum, [0, 0, 0])
        admitted_in_quantum.setdefault(quantum, 0)
        decision = c.decide(sub(tenant, now, seq=seq), backlog=0)
        if used[quantum][tenant] < c.guaranteed[tenant]:
            # Within the reserved guarantee the fair-share gate may not
            # refuse (no backpressure, no rate limit in this suite).
            assert decision.outcome is AdmissionOutcome.ADMITTED
        if decision.outcome is AdmissionOutcome.ADMITTED:
            used[quantum][tenant] += 1
            admitted_in_quantum[quantum] += 1
            assert admitted_in_quantum[quantum] <= 6


@given(stream=streams)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_token_buckets_never_negative(stream):
    c = controller(rate_quanta=1.5, burst=2.0)
    now = 0.0
    for seq, (tenant, gap, backlog) in enumerate(stream):
        now += gap
        c.decide(sub(tenant, now, seq=seq), backlog=backlog)
        for t in range(3):
            assert c.bucket_level(t) >= 0.0


@given(stream=streams)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_shed_set_deterministic_for_fixed_stream(stream):
    """Two controllers fed the same stream make identical decisions —
    admission is a pure function of the submission sequence."""
    first = drive(controller(rate_quanta=1.0, shed_policy="defer"), stream)
    second = drive(controller(rate_quanta=1.0, shed_policy="defer"), stream)
    assert first == second
    shed = [d.submission.seq for d in first if d.outcome is AdmissionOutcome.SHED]
    shed2 = [d.submission.seq for d in second if d.outcome is AdmissionOutcome.SHED]
    assert shed == shed2


@given(
    stream=streams,
    policy=st.sampled_from(["reject", "defer", "priority"]),
)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_no_submission_silently_dropped(stream, policy):
    """Every submission gets exactly one typed decision and the outcome
    counters account for all of them."""
    c = controller(rate_quanta=2.0, shed_policy=policy, weights=(2.0, 1.0, 1.0))
    decisions = drive(c, stream)
    assert len(decisions) == len(stream)
    assert all(d.reason for d in decisions)
    deferred = [d for d in decisions if d.outcome is AdmissionOutcome.DEFERRED]
    assert all(d.retry_at is not None and d.retry_at > d.submission.time
               for d in deferred)
    assert sum(c.counts.values()) == len(stream)
    for outcome in AdmissionOutcome:
        assert c.counts[outcome.value] == sum(
            1 for d in decisions if d.outcome is outcome
        )


class TestTokenBucket:
    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate_per_s=10.0, capacity=3.0)
        assert bucket.try_take(0.0)
        bucket.refill(100.0)
        assert bucket.tokens == 3.0

    def test_take_below_one_token_fails(self):
        bucket = TokenBucket(rate_per_s=0.1, capacity=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(1.0)  # only 0.1 tokens accrued
        assert bucket.tokens >= 0.0
        assert bucket.try_take(10.0)
