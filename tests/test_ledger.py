"""Unit tests for the index ROI ledger and the regression watchdog.

The ledger/watchdog pair is the analysis tier of ``repro.obs``: pure
arithmetic over values the service feeds in, no simulation state. These
tests drive them directly with hand-picked numbers so every accrual
formula and the breach/hysteresis state machine is pinned down exactly.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    IndexLedger,
    MetricsRegistry,
    RecordingJournal,
    RegressionWatchdog,
)

#: Paper pricing: 60 s quanta, $0.1 per quantum, $1e-4 per MB-quantum.
Q = 60.0
MC = 0.1
MST = 1e-4


def make_ledger() -> tuple[IndexLedger, RecordingJournal, MetricsRegistry]:
    journal = RecordingJournal()
    metrics = MetricsRegistry()
    ledger = IndexLedger(
        journal=journal,
        metrics=metrics,
        quantum_seconds=Q,
        quantum_price=MC,
        storage_price_mb_quantum=MST,
    )
    return ledger, journal, metrics


# ----------------------------------------------------------------------
# Ledger accrual arithmetic
# ----------------------------------------------------------------------
def test_build_cost_priced_in_vm_quanta() -> None:
    ledger, _, _ = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=120.0)
    account = ledger.accounts["idx"]
    # 120 s = 2 quanta at $0.1.
    assert account.build_cost_dollars == pytest.approx(0.2)
    assert account.first_built_at == 0.0
    assert account.live


def test_storage_accrues_per_partition_from_build_instant() -> None:
    ledger, _, _ = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    ledger.on_build("idx", 1, t=600.0, size_mb=50.0, build_seconds=0.0)
    # At t=1200 s: partition 0 held 20 quanta, partition 1 held 10.
    expect = 100.0 * 20 * MST + 50.0 * 10 * MST
    assert ledger.storage_accrued_dollars("idx", 1200.0) == pytest.approx(expect)
    assert ledger.spent_dollars("idx", 1200.0) == pytest.approx(expect)


def test_probe_converts_saved_seconds_to_dollars_and_emits() -> None:
    ledger, journal, metrics = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=10.0, build_seconds=60.0)
    ledger.on_probe("idx", t=300.0, dataflow="montage-1", saved_seconds=180.0)
    account = ledger.accounts["idx"]
    assert account.realized_seconds == 180.0
    assert account.realized_dollars == pytest.approx(3 * MC)
    assert account.probes == 1
    [event] = journal.events
    assert event["event"] == "index_probe"
    assert event["dataflow"] == "montage-1"
    assert event["saved_dollars"] == pytest.approx(0.3)
    assert metrics.counter("ledger/probes").value == 1


def test_net_roi_is_realized_minus_build_and_storage() -> None:
    ledger, _, _ = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=60.0)
    ledger.on_probe("idx", t=600.0, dataflow="d", saved_seconds=600.0)
    # realized $1.0, build $0.1, storage 100 MB * 10 q * 1e-4 = $0.1.
    assert ledger.net_dollars("idx", 600.0) == pytest.approx(1.0 - 0.1 - 0.1)


def test_delete_freezes_storage_and_closes_with_roi_event() -> None:
    ledger, journal, _ = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    ledger.on_delete("idx", t=600.0)
    frozen = ledger.storage_accrued_dollars("idx", 600.0)
    # No further accrual after deletion.
    assert ledger.storage_accrued_dollars("idx", 6000.0) == pytest.approx(frozen)
    assert not ledger.accounts["idx"].live
    assert journal.events[-1]["event"] == "index_roi"
    assert journal.events[-1]["live"] is False
    # Deleting twice is a no-op.
    ledger.on_delete("idx", t=700.0)
    assert len(journal.events) == 1


def test_rebuild_after_delete_reopens_account_keeping_frozen_rent() -> None:
    ledger, _, _ = make_ledger()
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    ledger.on_delete("idx", t=600.0)
    frozen = ledger.storage_accrued_dollars("idx", 600.0)
    ledger.on_build("idx", 0, t=1200.0, size_mb=100.0, build_seconds=0.0)
    assert ledger.accounts["idx"].live
    # 10 more quanta of rent on top of the frozen closed period.
    expect = frozen + 100.0 * 10 * MST
    assert ledger.storage_accrued_dollars("idx", 1800.0) == pytest.approx(expect)


def test_roi_payload_and_finish_emit_sorted_statements() -> None:
    ledger, journal, metrics = make_ledger()
    ledger.on_build("b_idx", 0, t=0.0, size_mb=10.0, build_seconds=60.0)
    ledger.on_build("a_idx", 0, t=0.0, size_mb=10.0, build_seconds=60.0)
    ledger.on_predicted("a_idx", t=0.0, combined_dollars=2.5)
    ledger.finish(t=600.0)
    rois = [e for e in journal.events if e["event"] == "index_roi"]
    assert [e["index"] for e in rois] == ["a_idx", "b_idx"]
    payload = ledger.roi_payload("a_idx", 600.0)
    assert payload["predicted_combined_dollars"] == 2.5
    assert payload["net_dollars"] == pytest.approx(
        payload["realized_dollars"]
        - payload["build_cost_dollars"]
        - payload["storage_cost_dollars"]
    )
    assert metrics.gauge("ledger/spent_dollars").value > 0


def test_ledger_rejects_nonpositive_quantum() -> None:
    with pytest.raises(ValueError):
        IndexLedger(RecordingJournal(), MetricsRegistry(), 0.0, MC, MST)


# ----------------------------------------------------------------------
# Watchdog state machine
# ----------------------------------------------------------------------
def make_watchdog(
    window_quanta: float = 10.0, hysteresis: int = 2
) -> tuple[RegressionWatchdog, IndexLedger, RecordingJournal, MetricsRegistry]:
    ledger, journal, metrics = make_ledger()
    watchdog = RegressionWatchdog(
        ledger=ledger,
        journal=journal,
        metrics=metrics,
        quantum_seconds=Q,
        window_quanta=window_quanta,
        hysteresis=hysteresis,
    )
    return watchdog, ledger, journal, metrics


def test_watchdog_warmup_gives_one_full_window() -> None:
    watchdog, ledger, _, _ = make_watchdog(window_quanta=10.0, hysteresis=1)
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    watchdog.on_build("idx", t=0.0)
    # Inside the first window nothing is evaluated, rent notwithstanding.
    assert watchdog.check(599.0) == []
    # One full window later the idle index breaches and (hysteresis 1)
    # is flagged immediately.
    assert watchdog.check(600.0) == ["idx"]


def test_hysteresis_requires_consecutive_breaches() -> None:
    watchdog, ledger, journal, metrics = make_watchdog(
        window_quanta=10.0, hysteresis=2
    )
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    watchdog.on_build("idx", t=0.0)
    assert watchdog.check(600.0) == []  # breach 1 of 2
    # A productive window in between resets the count.
    ledger.on_probe("idx", t=900.0, dataflow="d", saved_seconds=600.0)
    assert watchdog.check(1200.0) == []  # reset
    assert watchdog.check(1800.0) == []  # breach 1 of 2 again
    assert watchdog.check(2400.0) == ["idx"]  # breach 2 -> flagged
    [event] = [e for e in journal.events if e["event"] == "index_regression"]
    assert event["breaches"] == 2
    assert event["realized_window_dollars"] == pytest.approx(0.0)
    assert event["storage_window_dollars"] > 0
    assert metrics.counter("watchdog/regressions_flagged").value == 1
    # Flagged once: later checks stay quiet.
    assert watchdog.check(3000.0) == []


def test_build_cost_is_sunk_not_part_of_the_trigger() -> None:
    # Huge build cost, but realized benefit covers the windowed rent:
    # the watchdog must not flag (the trigger asks about rent forward).
    watchdog, ledger, _, _ = make_watchdog(window_quanta=10.0, hysteresis=1)
    ledger.on_build("idx", 0, t=0.0, size_mb=10.0, build_seconds=36000.0)
    watchdog.on_build("idx", t=0.0)
    ledger.on_probe("idx", t=300.0, dataflow="d", saved_seconds=60.0)
    assert ledger.net_dollars("idx", 600.0) < 0  # cumulative ROI is deep red
    assert watchdog.check(600.0) == []  # but the rent is being paid


def test_delete_stops_watching() -> None:
    watchdog, ledger, _, _ = make_watchdog(window_quanta=10.0, hysteresis=1)
    ledger.on_build("idx", 0, t=0.0, size_mb=100.0, build_seconds=0.0)
    watchdog.on_build("idx", t=0.0)
    watchdog.on_delete("idx", t=300.0)
    assert watchdog.check(600.0) == []


def test_rolled_back_counter() -> None:
    watchdog, _, _, metrics = make_watchdog()
    watchdog.on_rolled_back("idx")
    assert metrics.counter("watchdog/rollbacks").value == 1


def test_watchdog_rejects_bad_knobs() -> None:
    ledger, journal, metrics = make_ledger()
    with pytest.raises(ValueError):
        RegressionWatchdog(ledger, journal, metrics, Q, 0.0, 1)
    with pytest.raises(ValueError):
        RegressionWatchdog(ledger, journal, metrics, Q, 10.0, 0)
