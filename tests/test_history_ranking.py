"""Tests for the dataflow history store and the 2D index ranking."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.tuning.gain import IndexGain
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.ranking import deletable_indexes, rank_indexes


def record(name, at, gains=None, running=False):
    gains = gains or {"t__x": 1.0}
    return DataflowRecord(
        name=name, executed_at=at,
        time_gains=dict(gains), money_gains=dict(gains), running=running,
    )


class TestHistory:
    def test_add_and_query(self):
        h = DataflowHistory(PAPER_PRICING)
        h.add(record("d1", at=0.0))
        h.add(record("d2", at=60.0))
        samples = h.samples_for("t__x", now=120.0)
        assert len(samples) == 2
        assert samples[0].age_quanta == pytest.approx(2.0)
        assert samples[1].age_quanta == pytest.approx(1.0)

    def test_unknown_index_no_samples(self):
        h = DataflowHistory(PAPER_PRICING)
        h.add(record("d1", at=0.0))
        assert h.samples_for("nope", now=10.0) == []

    def test_running_dataflow_has_age_zero(self):
        h = DataflowHistory(PAPER_PRICING)
        h.add(record("d1", at=0.0, running=True))
        samples = h.samples_for("t__x", now=6000.0)
        assert samples[0].age_quanta == 0.0

    def test_mark_finished(self):
        h = DataflowHistory(PAPER_PRICING)
        h.add(record("d1", at=0.0, running=True))
        h.mark_finished("d1", finished_at=120.0)
        samples = h.samples_for("t__x", now=180.0)
        assert samples[0].age_quanta == pytest.approx(1.0)
        with pytest.raises(KeyError):
            h.mark_finished("d1", finished_at=180.0)

    def test_eviction_respects_cap(self):
        h = DataflowHistory(PAPER_PRICING, max_records=3)
        for i in range(6):
            h.add(record(f"d{i}", at=float(i)))
        assert len(h) == 3
        assert [r.name for r in h.records] == ["d3", "d4", "d5"]
        assert len(h.samples_for("t__x", now=100.0)) == 3

    def test_index_names_sorted(self):
        h = DataflowHistory(PAPER_PRICING)
        h.add(record("d1", at=0.0, gains={"b__y": 1.0, "a__x": 1.0}))
        assert h.index_names() == ["a__x", "b__y"]


def gain(name, gt, gm, combined=None):
    return IndexGain(
        index_name=name,
        time_gain_quanta=gt,
        money_gain_dollars=gm,
        combined_dollars=combined if combined is not None else gt + gm,
    )


class TestRanking:
    def test_only_doubly_positive_are_beneficial(self):
        gains = [
            gain("both", 1.0, 1.0),
            gain("time_only", 1.0, -0.1),
            gain("money_only", -0.1, 1.0),
            gain("neither", -1.0, -1.0),
        ]
        ranked = rank_indexes(gains)
        assert [g.index_name for g in ranked] == ["both"]

    def test_sorted_by_combined_descending(self):
        gains = [
            gain("small", 0.1, 0.1, combined=0.2),
            gain("big", 5.0, 5.0, combined=10.0),
            gain("mid", 1.0, 1.0, combined=2.0),
        ]
        assert [g.index_name for g in rank_indexes(gains)] == ["big", "mid", "small"]

    def test_ties_broken_deterministically(self):
        gains = [gain("b", 1.0, 1.0, 2.0), gain("a", 1.0, 1.0, 2.0)]
        assert [g.index_name for g in rank_indexes(gains)] == ["a", "b"]

    def test_deletable_requires_both_nonpositive(self):
        gains = [
            gain("drop", -1.0, -1.0),
            gain("keep_t", 1.0, -1.0),
            gain("keep_m", -1.0, 1.0),
            gain("zero", 0.0, 0.0),  # boundary: <= 0 deletes
        ]
        assert {g.index_name for g in deletable_indexes(gains)} == {"drop", "zero"}
