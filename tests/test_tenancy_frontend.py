"""Multi-tenant front-end integration tests.

The contract under test: multi-tenant runs are byte-deterministic under
any seed (including fault storms with breakers tripping), admitted
dataflows are never silently dropped, bulkheads keep per-tenant state
disjoint, and the single-tenant default path never touches the tenancy
layer at all.
"""

import json
from dataclasses import replace

import pytest

from repro import run_experiment
from repro.core.config import ExperimentConfig
from repro.core.service import Strategy
from repro.obs import Observation
from repro.tenancy import TenantFrontEnd


def config(**overrides):
    base = ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=11,
        tenants=3,
        tenant_skew=3.0,
        tenant_queue_depth=6,
    )
    return replace(base, **overrides) if overrides else base


FAULT_STORM = dict(
    storage_put_failure_rate=0.6,
    storage_delete_failure_rate=0.6,
    operator_failure_rate=0.2,
    breaker_threshold=2,
    breaker_cooldown_quanta=2.0,
    deadline_quanta=1.0,
    shed_policy="priority",
    tenant_weights=(2.0, 1.0, 0.5),
)


def run_tenants(cfg, check_invariants=True):
    obs = Observation.recording()
    front = TenantFrontEnd(
        cfg, Strategy.GAIN, obs=obs, check_invariants=check_invariants
    )
    return front.run(), obs


class TestDeterminism:
    def test_two_runs_byte_identical(self):
        r1, o1 = run_tenants(config())
        r2, o2 = run_tenants(config())
        assert o1.journal.to_jsonl() == o2.journal.to_jsonl()
        assert o1.metrics.to_json() == o2.metrics.to_json()
        assert [vars(t.metrics) and t.admitted for t in r1.tenants] == [
            vars(t.metrics) and t.admitted for t in r2.tenants
        ]

    def test_fault_storm_with_breakers_byte_identical(self):
        cfg = config(**FAULT_STORM)
        r1, o1 = run_tenants(cfg)
        r2, o2 = run_tenants(cfg)
        assert o1.journal.to_jsonl() == o2.journal.to_jsonl()
        assert o1.metrics.to_json() == o2.metrics.to_json()
        assert sum(t.breaker_trips for t in r1.tenants) > 0
        assert sum(t.degraded for t in r1.tenants) > 0

    def test_different_seeds_diverge(self):
        _r1, o1 = run_tenants(config())
        _r2, o2 = run_tenants(config(seed=12))
        assert o1.journal.to_jsonl() != o2.journal.to_jsonl()


class TestAccounting:
    def test_no_admitted_dataflow_silently_dropped(self):
        report, obs = run_tenants(config(**FAULT_STORM))
        for t in report.tenants:
            assert t.admitted == t.executed + t.expired
            assert t.submitted == t.admitted + t.shed  # defers re-resolve
        records = [
            json.loads(l) for l in obs.journal.to_jsonl().splitlines()
        ]
        admitted = sum(1 for r in records if r["event"] == "tenant_admitted")
        shed = sum(1 for r in records if r["event"] == "tenant_shed")
        assert admitted == report.total("admitted")
        assert shed == report.total("shed") + report.total("expired")

    def test_shed_reasons_are_typed(self):
        _report, obs = run_tenants(config(tenant_queue_depth=1))
        reasons = {
            json.loads(l)["reason"]
            for l in obs.journal.to_jsonl().splitlines()
            if json.loads(l)["event"] == "tenant_shed"
        }
        assert reasons <= {"queue_full", "rate_limited", "fair_share",
                           "defer_limit", "horizon"}
        assert reasons

    def test_flash_crowd_tenant_shed_hardest(self):
        report, _obs = run_tenants(config(tenant_skew=6.0))
        t0 = report.tenants[0]
        others = report.tenants[1:]
        assert t0.submitted > max(t.submitted for t in others)
        assert t0.shed >= max(t.shed for t in others)


class TestBulkheads:
    def test_tenant_storage_owners_disjoint(self):
        cfg = config()
        front = TenantFrontEnd(cfg, Strategy.GAIN)
        owners = [rt.service.storage.owner for rt in front._runtimes]
        assert owners == ["t0", "t1", "t2"]
        seeds = {rt.service.config.seed for rt in front._runtimes}
        assert len(seeds) == 3  # derived per-tenant seeds

    def test_per_tenant_metrics_prefixes(self):
        report, obs = run_tenants(config(**FAULT_STORM))
        counters = obs.metrics.snapshot()["counters"]
        tenancy_keys = [k for k in counters if k.startswith("tenancy/")]
        assert any(k.startswith("tenancy/t0/") for k in tenancy_keys)
        assert any(k.startswith("tenancy/t1/") for k in tenancy_keys)

    def test_single_tenant_config_matches_plain_run(self):
        """tenants=1, no skew, no limits: the front end reproduces the
        classic run_experiment outcome stream exactly (same derived
        seed, same service construction)."""
        cfg = config(
            tenants=1, tenant_skew=1.0, tenant_queue_depth=10_000
        )
        report, _obs = run_tenants(cfg, check_invariants=False)
        from repro.experiments import derive_seed

        plain = run_experiment(
            Strategy.GAIN,
            config=replace(
                cfg, seed=derive_seed(cfg.seed, 0), tenants=1
            ),
        )
        stats = report.tenants[0]
        assert stats.metrics is not None
        assert len(plain.outcomes) == stats.executed
        assert [o.name for o in plain.outcomes] == [
            o.name for o in stats.metrics.outcomes
        ]
        assert [o.finished_at for o in plain.outcomes] == [
            o.finished_at for o in stats.metrics.outcomes
        ]


class TestGuardOffByDefault:
    def test_default_config_has_no_tenancy_surface(self):
        cfg = ExperimentConfig(
            total_time_s=30 * 60.0, max_skyline=2, scheduler_containers=10,
            max_candidates=40, max_queued_gain=10, seed=5,
        )
        assert cfg.tenants == 1
        assert cfg.breaker_threshold == 0
        assert cfg.deadline_quanta == 0.0
        metrics = run_experiment(Strategy.GAIN, config=cfg)
        assert metrics.degraded_decisions == 0
        assert metrics.breaker_skipped_builds == 0


class TestValidation:
    def test_tenancy_validation_aggregates_every_bad_field(self):
        with pytest.raises(ValueError) as err:
            config(
                tenants=0,
                tenant_skew=0.5,
                tenant_queue_depth=0,
                tenant_rate_quanta=-1.0,
                tenant_burst=0.0,
                shed_policy="drop",
                tenant_defer_quanta=0.0,
                tenant_max_defers=-1,
                admission_quantum_slots=-1,
                breaker_threshold=-1,
                breaker_cooldown_quanta=0.0,
                breaker_probes=0,
                deadline_quanta=-1.0,
            )
        message = str(err.value)
        assert message.startswith("invalid tenancy configuration: ")
        for field in (
            "tenants", "tenant_skew", "tenant_queue_depth",
            "tenant_rate_quanta", "tenant_burst", "shed_policy",
            "tenant_defer_quanta", "tenant_max_defers",
            "admission_quantum_slots", "breaker_threshold",
            "breaker_cooldown_quanta", "breaker_probes", "deadline_quanta",
        ):
            assert field in message, field

    def test_weights_checked_against_tenant_count(self):
        with pytest.raises(ValueError, match="tenant_weights has 4 entries"):
            config(tenant_weights=(1.0, 1.0, 1.0, 1.0))

    def test_valid_config_passes(self):
        config(**FAULT_STORM).validate()
