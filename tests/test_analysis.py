"""Self-tests for the repro.analysis lint framework.

Fixture-driven: every file under ``tests/analysis_fixtures/`` carries an
``# expect: CODE[,CODE...]`` header (empty for known-good fixtures) and
the harness asserts the linter reports exactly that multiset of codes.
The meta-test at the bottom then asserts the *live* ``src/repro`` tree
is lint-clean — the gate the CI lint job enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LINT_META_CODE,
    all_rules,
    known_codes,
    lint_paths,
    lint_source,
    module_name_for_path,
    register,
)
from repro.analysis.registry import SUPPRESSION_CODE, project_codes
from repro.analysis.runner import main
from repro.analysis.suppressions import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

RULE_CODES = ("DET01", "LAY01", "NUM01", "SEED01", "SIM01", "TYP01")


def expected_codes(source: str) -> list[str]:
    for raw in source.splitlines()[:5]:
        stripped = raw.strip()
        if stripped.startswith("# expect:"):
            spec = stripped.removeprefix("# expect:").strip()
            return sorted(c.strip().upper() for c in spec.split(",") if c.strip())
    raise AssertionError("fixture is missing an `# expect:` header")


def all_fixtures() -> list[Path]:
    fixtures = sorted(FIXTURES.glob("*.py"))
    assert fixtures, f"no fixtures found under {FIXTURES}"
    return fixtures


# ----------------------------------------------------------------------
# Fixture-driven rule self-tests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture", all_fixtures(), ids=lambda p: p.stem)
def test_fixture_reports_expected_codes(fixture: Path) -> None:
    source = fixture.read_text()
    diags = lint_source(source, fixture)
    got = sorted(d.code for d in diags)
    detail = "\n".join(d.format() for d in diags)
    assert got == expected_codes(source), f"diagnostics were:\n{detail}"


def test_every_rule_has_bad_and_good_fixtures() -> None:
    for code in RULE_CODES:
        assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{code.lower()}_good.py").is_file()


def test_fixture_suite_exercises_every_known_code() -> None:
    covered: set[str] = set()
    for fixture in all_fixtures():
        covered.update(expected_codes(fixture.read_text()))
    # Whole-program (--flow) rules and the runner-level SUP01 code are
    # exercised by their own fixture corpus in test_flow_analysis.py —
    # they need multi-module projects / a full gate run, not lint_source.
    module_level = set(known_codes()) - set(project_codes()) - {SUPPRESSION_CODE}
    assert covered >= module_level, "some rule has no failing fixture"


def test_registered_rules_match_documented_codes() -> None:
    assert tuple(rule.code for rule in all_rules()) == RULE_CODES


# ----------------------------------------------------------------------
# The meta-test: the live tree itself passes its own gate
# ----------------------------------------------------------------------
def test_live_tree_is_lint_clean() -> None:
    diags = lint_paths([SRC_TREE])
    assert diags == [], "\n".join(d.format() for d in diags)


# ----------------------------------------------------------------------
# Framework plumbing
# ----------------------------------------------------------------------
def test_registry_rejects_duplicate_code() -> None:
    with pytest.raises(ValueError, match="duplicate"):
        register("DET01", "imposter")(lambda ctx: [])


def test_registry_reserves_meta_code() -> None:
    with pytest.raises(ValueError, match="reserved"):
        register(LINT_META_CODE, "meta")(lambda ctx: [])


def test_module_name_for_path() -> None:
    assert module_name_for_path(Path("src/repro/core/simulator.py")) == "repro.core.simulator"
    assert module_name_for_path(Path("src/repro/core/__init__.py")) == "repro.core"
    assert module_name_for_path(Path("elsewhere/other.py")) is None


def test_unparsable_source_reports_meta_code() -> None:
    diags = lint_source("def broken(:\n", Path("broken.py"))
    assert [d.code for d in diags] == [LINT_META_CODE]


def test_suppression_parsing() -> None:
    sups = parse_suppressions("x = f()  # repro-lint: disable=DET01,NUM01 -- both safe here\n")
    assert len(sups) == 1
    assert sups[0].codes == {"DET01", "NUM01"}
    assert sups[0].justification == "both safe here"


def test_layering_carve_out_for_numeric_leaf() -> None:
    clean = "from repro.core.numeric import money_eq\n"
    assert lint_source(clean, Path("x.py"), module="repro.cloud.fixture") == []
    dirty = "from repro.core.service import QaaSService\n"
    diags = lint_source(dirty, Path("x.py"), module="repro.cloud.fixture")
    assert [d.code for d in diags] == ["LAY01"]


def test_layering_carve_out_for_obs_leaf() -> None:
    # Any layer (here: the lowest ones) may import the obs leaf...
    clean = "from repro.obs import Observation\n"
    for module in ("repro.cloud.fixture", "repro.data.fixture", "repro.engine.fixture"):
        assert lint_source(clean, Path("x.py"), module=module) == []
    # ...because obs itself must not import anything above it.
    dirty = "from repro.tuning.gain import IndexGain\n"
    diags = lint_source(dirty, Path("x.py"), module="repro.obs.fixture")
    assert [d.code for d in diags] == ["LAY01"]


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_exit_nonzero_on_bad_fixture(capsys: pytest.CaptureFixture[str]) -> None:
    code = main([str(FIXTURES / "det01_bad.py"), "--no-typecheck"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET01" in out and "problem(s) found" in out


def test_cli_clean_run(capsys: pytest.CaptureFixture[str]) -> None:
    code = main([str(FIXTURES / "det01_good.py"), "--no-typecheck"])
    assert code == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_cli_select_filters_rules(capsys: pytest.CaptureFixture[str]) -> None:
    code = main([str(FIXTURES / "seed01_bad.py"), "--select", "SEED01"])
    assert code == 1
    out = capsys.readouterr().out
    assert "SEED01" in out and "DET01" not in out


def test_cli_unknown_select_rejected(capsys: pytest.CaptureFixture[str]) -> None:
    with pytest.raises(SystemExit):
        main(["--select", "NOPE99", str(FIXTURES / "det01_good.py")])


def test_cli_list_rules(capsys: pytest.CaptureFixture[str]) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (*RULE_CODES, LINT_META_CODE):
        assert code in out


def test_cli_json_report(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    report_file = tmp_path / "report.json"
    code = main(
        [str(FIXTURES / "num01_bad.py"), "--no-typecheck", "--json", str(report_file)]
    )
    assert code == 1
    report = json.loads(report_file.read_text())
    assert report["tool"] == "repro-lint"
    assert report["counts"] == {"NUM01": 2}
    assert {r["code"] for r in report["rules"]} == set(RULE_CODES)
    for diag in report["diagnostics"]:
        assert {"path", "line", "col", "code", "message"} <= set(diag)
    assert report["typecheck"] is None
