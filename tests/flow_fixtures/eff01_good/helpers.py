# lint-module: fix.helpers
"""Helper module of the eff01_good fixture project."""


def mark_built(catalog, name):
    catalog.mark_built(name)
