# lint-module: fix.service
"""Known-good EFF01 fixture: the declared footprint covers every
inferred transitive effect (including the helper call in fix.helpers
and the implied billing write of the storage put)."""

from fix.helpers import mark_built

from repro.explore.hooks import Action, declared_effects

ACTION_EFFECTS = {
    "build": declared_effects("billing:w", "catalog:w", "storage:w"),
}


class Service:
    def __init__(self, storage, catalog):
        self.storage = storage
        self.catalog = catalog

    def _iter_build(self, name):
        self.storage.put(name, b"")
        yield "build.catalog_mark"
        mark_built(self.catalog, name)

    def build_action(self, name):
        return Action(
            key=f"build:{name}",
            kind="build",
            gen=self._iter_build(name),
            resources=frozenset((f"idx:{name}",)),
            entry="build.storage_put",
            effects=ACTION_EFFECTS["build"],
        )
