# lint-module: fix.goodsvc
"""Known-good EFF02 fixture: the same multi-resource generator as
eff02_bad, but the action holds ALL_RESOURCES — it claims independence
from nothing, so there is no commutativity claim to audit."""

from repro.explore.hooks import ALL_RESOURCES, Action, declared_effects

ACTION_EFFECTS = {
    "build": declared_effects("billing:w", "catalog:w", "storage:w"),
}


class Service:
    def __init__(self, storage, catalog):
        self.storage = storage
        self.catalog = catalog

    def _iter_build(self, name):
        self.storage.put(name, b"")
        yield "build.catalog_mark"
        self.catalog.mark_built(name)

    def build_action(self, name):
        return Action(
            key=f"build:{name}",
            kind="build",
            gen=self._iter_build(name),
            resources=frozenset((ALL_RESOURCES,)),
            entry="build.storage_put",
            effects=ACTION_EFFECTS["build"],
        )
