# lint-module: fix.helpers
"""Helper module of the eff01_bad fixture project: the catalog write
that the service's declaration forgot lives here, one call away."""


def mark_built(catalog, name):
    catalog.mark_built(name)
