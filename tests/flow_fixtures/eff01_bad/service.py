# lint-module: fix.service
"""Known-bad EFF01 fixture.

Two violations:

* the ``build`` declaration misses ``catalog:w`` — the write leaks in
  two calls deep, through ``fix.helpers.mark_built``, and the
  diagnostic must name that chain;
* the ``delete`` action has no ``ACTION_EFFECTS`` entry at all.
"""

from fix.helpers import mark_built

from repro.explore.hooks import Action, declared_effects

ACTION_EFFECTS = {
    "build": declared_effects("billing:w", "storage:w"),
}


class Service:
    def __init__(self, storage, catalog):
        self.storage = storage
        self.catalog = catalog

    def _iter_build(self, name):
        self.storage.put(name, b"")
        yield "build.catalog_mark"
        mark_built(self.catalog, name)

    def _iter_delete(self, name):
        self.storage.delete(name)
        yield "delete.catalog_drop"

    def build_action(self, name):
        return Action(
            key=f"build:{name}",
            kind="build",
            gen=self._iter_build(name),
            resources=frozenset((f"idx:{name}",)),
            entry="build.storage_put",
            effects=ACTION_EFFECTS["build"],
        )

    def delete_action(self, name):
        return Action(
            key=f"delete:{name}",
            kind="delete",
            gen=self._iter_delete(name),
            resources=frozenset((f"idx:{name}",)),
            entry="delete.storage_object",
        )
