# lint-module: fix.badsvc
"""Known-bad EFF02 fixture: the action claims a parameterized
(per-index) resource footprint while its generator writes two audited
shared resources (catalog + storage), so the oracle's independence
claim needs a justification."""

from repro.explore.hooks import Action, declared_effects

ACTION_EFFECTS = {
    "build": declared_effects("billing:w", "catalog:w", "storage:w"),
}


class Service:
    def __init__(self, storage, catalog):
        self.storage = storage
        self.catalog = catalog

    def _iter_build(self, name):
        self.storage.put(name, b"")
        yield "build.catalog_mark"
        self.catalog.mark_built(name)

    def build_action(self, name):
        return Action(
            key=f"build:{name}",
            kind="build",
            gen=self._iter_build(name),
            resources=frozenset((f"idx:{name}",)),
            entry="build.storage_put",
            effects=ACTION_EFFECTS["build"],
        )
