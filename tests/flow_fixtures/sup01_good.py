"""Known-good SUP01 fixture: the suppression is live — it silences a
real DET01 hit on its line, so it must not be reported as stale."""

import time


def stamp_label():
    return time.time()  # repro-lint: disable=DET01 -- fixture: display-only label
