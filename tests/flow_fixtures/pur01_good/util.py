# lint-module: repro.core.simutil
"""Helper module of the pur01_good fixture: seeded construction and
threaded draws only."""

import random


def make_rng(seed):
    return random.Random(seed)


def draw(rng):
    return rng.random()


def sample(rng):
    return draw(rng) * 2.0
