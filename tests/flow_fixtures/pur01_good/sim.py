# lint-module: repro.core.simulator
"""Known-good PUR01 fixture: the same call shape as pur01_bad, but the
randomness is an explicitly seeded stream threaded in by the caller —
an rng *effect*, never an rng *taint*."""

from repro.core.simutil import sample


def estimate(cost, rng):
    return cost + sample(rng)
