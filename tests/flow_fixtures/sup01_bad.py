"""Known-bad SUP01 fixture: the suppression silences nothing — the
line it sits on has no DET01 violation, so the escape hatch is stale."""

TIMEOUT_S = 30.0  # repro-lint: disable=DET01 -- supposedly a clock read (it is not)
