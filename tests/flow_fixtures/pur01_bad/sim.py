# lint-module: repro.core.simulator
"""Known-bad PUR01 fixture: the simulator-sink function picks up an
unseeded global rng draw **two calls deep** (estimate -> sample ->
draw -> random.random), which no local rule can see."""

from repro.core.simutil import sample


def estimate(cost):
    return cost + sample()
