# lint-module: repro.core.simutil
"""Helper module of the pur01_bad fixture: the taint source lives at
the bottom of a two-level helper chain, outside any sink module."""

import random


def draw():
    return random.random()


def sample():
    return draw() * 2.0
