"""CLI tests for the ``repro obs`` analysis family and run flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One seeded ledgered run's artifacts, shared across the module."""
    out = tmp_path_factory.mktemp("runA")
    rc = main([
        "run", "--strategy", "gain", "--horizon-quanta", "20", "--seed", "7",
        "--roi-ledger",
        "--trace-out", str(out / "trace.json"),
        "--events-out", str(out / "events.jsonl"),
        "--metrics-out", str(out / "metrics.json"),
    ])
    assert rc == 0
    return out


def test_run_accepts_watchdog_flags(tmp_path, capsys) -> None:
    rc = main([
        "run", "--strategy", "gain", "--horizon-quanta", "6", "--seed", "7",
        "--watchdog-rollback", "--watchdog-window-quanta", "5",
        "--watchdog-hysteresis", "1",
    ])
    assert rc == 0
    assert "finished=" in capsys.readouterr().out


def test_run_rejects_bad_watchdog_knobs(capsys) -> None:
    rc = main([
        "run", "--horizon-quanta", "2", "--watchdog-window-quanta", "0",
    ])
    assert rc == 2
    assert "watchdog_window_quanta" in capsys.readouterr().err


def test_obs_roi_prints_ledger_table(run_dir, capsys) -> None:
    rc = main(["obs", "roi", "--events", str(run_dir / "events.jsonl")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "index" in out and "net $" in out
    # Header, separator, and at least one real account row.
    assert len(out.strip().splitlines()) >= 3


def test_obs_roi_json_is_deterministic(run_dir, capsys) -> None:
    rc = main(["obs", "roi", "--events", str(run_dir / "events.jsonl"), "--json"])
    assert rc == 0
    first = capsys.readouterr().out
    payload = json.loads(first)
    assert payload["ledger_events"] is True
    assert payload["indexes"], "ledgered run must yield accounts"
    for row in payload["indexes"]:
        assert {"index", "net_dollars", "realized_dollars"} <= set(row)
    rc = main(["obs", "roi", "--events", str(run_dir / "events.jsonl"), "--json"])
    assert rc == 0
    assert capsys.readouterr().out == first


def test_obs_roi_without_ledger_events_falls_back_to_probes(
    tmp_path, capsys
) -> None:
    events = tmp_path / "events.jsonl"
    events.write_text(
        json.dumps({"event": "index_probe", "t": 1.0, "index": "i",
                    "dataflow": "d", "saved_seconds": 60.0,
                    "saved_dollars": 0.1}) + "\n"
    )
    rc = main(["obs", "roi", "--events", str(events), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ledger_events"] is False
    assert payload["indexes"][0]["realized_dollars"] == 0.1


def test_obs_roi_requires_events(capsys) -> None:
    assert main(["obs", "roi"]) == 2
    assert "--events" in capsys.readouterr().err


def test_obs_diff_identical_dirs_exit_zero(run_dir, tmp_path, capsys) -> None:
    other = tmp_path / "runB"
    other.mkdir()
    for name in ("trace.json", "events.jsonl", "metrics.json"):
        (other / name).write_bytes((run_dir / name).read_bytes())
    rc = main(["obs", "diff", str(run_dir), str(other)])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("identical") == 3


def test_obs_diff_localizes_first_divergent_event(
    run_dir, tmp_path, capsys
) -> None:
    other = tmp_path / "runC"
    other.mkdir()
    for name in ("trace.json", "events.jsonl", "metrics.json"):
        (other / name).write_bytes((run_dir / name).read_bytes())
    # Perturb one payload value of the third journal event.
    lines = (other / "events.jsonl").read_text().splitlines()
    record = json.loads(lines[2])
    record["t"] = float(record["t"]) + 1.0
    lines[2] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    (other / "events.jsonl").write_text("\n".join(lines) + "\n")
    rc = main(["obs", "diff", str(run_dir), str(other)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "journal: first divergence at event 2" in out
    assert "trace.json: identical" in out


def test_obs_diff_two_files(run_dir, tmp_path, capsys) -> None:
    a = run_dir / "metrics.json"
    b = tmp_path / "metrics.json"
    snapshot = json.loads(a.read_text())
    counter = sorted(snapshot["counters"])[0]
    snapshot["counters"][counter] += 1
    b.write_text(json.dumps(snapshot, sort_keys=True, indent=2) + "\n")
    rc = main(["obs", "diff", str(a), str(b)])
    assert rc == 1
    assert f"key counters.{counter}" in capsys.readouterr().out


def test_obs_top_ranks_spans_and_counters(run_dir, capsys) -> None:
    rc = main([
        "obs", "top", "--k", "3",
        "--trace", str(run_dir / "trace.json"),
        "--metrics", str(run_dir / "metrics.json"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "top 3 spans by total duration:" in out
    assert "top 3 counters by value:" in out
    # Deterministic: a second invocation prints the same bytes.
    main([
        "obs", "top", "--k", "3",
        "--trace", str(run_dir / "trace.json"),
        "--metrics", str(run_dir / "metrics.json"),
    ])
    assert capsys.readouterr().out == out


def test_obs_top_requires_an_input(capsys) -> None:
    assert main(["obs", "top"]) == 2
    assert "needs --metrics" in capsys.readouterr().err
