"""Differential tests: per-index savings attribution vs a frozen re-derivation.

``update_runtimes_for_indexes`` returns the runtime seconds each index
saved — the realized-benefit feed of the ROI ledger and the
``InterleavedSchedule.index_savings`` field. The oracle recomputes the
attribution from first principles (no ``Operator`` helper methods), and
a second property pins the accounting identity the ledger relies on:
the per-index splits must sum to the total runtime reduction the update
actually applied.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro.core.numeric import eq_tol
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.interleave.lp import update_runtimes_for_indexes

from tests.differential.oracle import oracle_index_savings

FILES = ["lineitem", "orders", "part"]
COLUMNS = ["a", "b"]
ALL_INDEXES = [f"{f}__{c}" for f in FILES for c in COLUMNS]


@st.composite
def _dataflows(draw):
    """A dataflow whose operators read random files with random speedups."""
    n_ops = draw(st.integers(min_value=1, max_value=6))
    df = Dataflow(name="df")
    for i in range(n_ops):
        n_inputs = draw(st.integers(min_value=0, max_value=3))
        file_names = draw(
            st.lists(st.sampled_from(FILES), min_size=n_inputs, max_size=n_inputs,
                     unique=True)
        )
        inputs = tuple(
            DataFile(
                name=f,
                size_mb=draw(st.floats(min_value=0.0, max_value=500.0,
                                       allow_nan=False)),
            )
            for f in file_names
        )
        speedups = {
            idx: draw(st.floats(min_value=0.25, max_value=8.0, allow_nan=False))
            for idx in draw(st.lists(st.sampled_from(ALL_INDEXES), max_size=4,
                                     unique=True))
        }
        df.add_operator(
            Operator(
                name=f"op{i}",
                runtime=draw(st.floats(min_value=1.0, max_value=200.0,
                                       allow_nan=False)),
                inputs=inputs,
                index_speedup=speedups,
            )
        )
    return df


_availables = st.sets(st.sampled_from(ALL_INDEXES), max_size=len(ALL_INDEXES))
_fractions = st.one_of(
    st.none(),
    st.dictionaries(
        st.sampled_from(ALL_INDEXES),
        st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),  # clamp fodder
        max_size=len(ALL_INDEXES),
    ),
)


@given(df=_dataflows(), available=_availables, fractions=_fractions)
@settings(max_examples=200, deadline=None, derandomize=True)
def test_savings_attribution_matches_frozen_oracle(df, available, fractions):
    """Bit-identical: both sides fold the same per-file terms in the
    same operator/input order."""
    expected = oracle_index_savings(df, available, fractions)
    got = update_runtimes_for_indexes(df, available, fractions)
    assert got == expected


@given(df=_dataflows(), available=_availables, fractions=_fractions)
@settings(max_examples=200, deadline=None, derandomize=True)
def test_savings_split_sums_to_total_runtime_reduction(df, available, fractions):
    """The accounting identity behind the ROI ledger: summed per-index
    savings equal the total runtime seconds the update removed."""
    before = {name: op.runtime for name, op in df.operators.items()}
    savings = update_runtimes_for_indexes(df, available, fractions)
    reduction = sum(
        before[name] - op.runtime for name, op in df.operators.items()
    )
    total = sum(savings.values())
    assert eq_tol(total, reduction, 1e-7 * max(1.0, abs(reduction)))
    # Zero-weight inputs (0 MB next to positive siblings) may record a
    # legitimate 0.0 entry; negative savings are impossible.
    assert all(s >= 0.0 for s in savings.values())
    assert reduction >= 0.0


def test_unavailable_or_useless_indexes_attract_no_savings():
    df = Dataflow(name="df")
    df.add_operator(
        Operator(
            name="scan",
            runtime=100.0,
            inputs=(DataFile("lineitem", 400.0), DataFile("orders", 100.0)),
            index_speedup={
                "lineitem__a": 4.0,   # available, helps
                "orders__a": 0.5,     # slowdown: must be ignored
                "part__a": 9.0,       # no matching input file
            },
        )
    )
    savings = update_runtimes_for_indexes(
        df, {"lineitem__a", "orders__a", "part__a"}
    )
    assert set(savings) == {"lineitem__a"}
    # weight 0.8 of a 100 s operator at factor 4 -> 80 * 0.75 = 60 s.
    assert eq_tol(savings["lineitem__a"], 60.0, 1e-9)
    assert eq_tol(df.operators["scan"].runtime, 40.0, 1e-9)


def test_mutation_preserves_oracle_agreement_on_second_application():
    """Applying the update twice (fraction growth) keeps agreeing with
    the oracle run on the already-mutated dataflow."""
    df = Dataflow(name="df")
    df.add_operator(
        Operator(
            name="scan",
            runtime=100.0,
            inputs=(DataFile("lineitem", 400.0),),
            index_speedup={"lineitem__a": 4.0},
        )
    )
    update_runtimes_for_indexes(df, {"lineitem__a"}, {"lineitem__a": 0.5})
    snapshot = copy.deepcopy(df)
    expected = oracle_index_savings(snapshot, {"lineitem__a"}, {"lineitem__a": 1.0})
    got = update_runtimes_for_indexes(df, {"lineitem__a"}, {"lineitem__a": 1.0})
    assert got == expected
