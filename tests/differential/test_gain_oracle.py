"""Differential tests: incremental gain sums vs the naive Eq. 4/5 oracle.

The incremental evaluator maintains the faded benefit inflows across
decision points by decay-rescaling (``S(now+δ) = e^(-δ/D)·S(now) - …``),
which is tolerance-equal — not bit-identical — to the oracle's direct
per-sample summation. Hypothesis drives adversarial episodes (appends,
running→finished flips, evictions, out-of-order history, fade changes,
backwards time) and every checkpoint must agree with the oracle within
a relative 1e-7 — far tighter than any decision threshold in the model
(delete threshold 0.05 quanta) and far looser than the proven drift
bound (one rounding error per advance, exact refresh every 32).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.core.numeric import eq_tol
from repro.data.index_model import IndexCostModel
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.incremental import REFRESH_EVERY, IncrementalGainEvaluator

from tests.differential.oracle import oracle_faded_sums

INDEX = "lineitem__l_orderkey"
OTHER = "orders__o_custkey"


def _model(window_quanta: float, fade_quanta: float) -> GainModel:
    params = GainParameters(
        fade_quanta=fade_quanta, window_quanta=window_quanta,
        storage_window_quanta=fade_quanta,
    )
    return GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)


def _assert_sums_match(
    model: GainModel,
    history: DataflowHistory,
    evaluator: IncrementalGainEvaluator,
    now: float,
    fade: float | None,
) -> None:
    for name in (INDEX, OTHER):
        naive_t, naive_m, naive_n = oracle_faded_sums(model, history, name, now, fade)
        inc_t, inc_m, inc_n = evaluator.faded_sums(name, now, fade)
        assert inc_n == naive_n, f"{name}: sample count {inc_n} != oracle {naive_n}"
        tol_t = 1e-7 * max(1.0, abs(naive_t))
        tol_m = 1e-7 * max(1.0, abs(naive_m))
        assert eq_tol(inc_t, naive_t, tol_t), (
            f"{name}: time sum {inc_t!r} != oracle {naive_t!r} at now={now}"
        )
        assert eq_tol(inc_m, naive_m, tol_m), (
            f"{name}: money sum {inc_m!r} != oracle {naive_m!r} at now={now}"
        )


# One episode event: (kind, payload) drawn by the strategy below.
_gain_floats = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_events = st.lists(
    st.one_of(
        st.tuples(st.just("append"), _gain_floats, _gain_floats,
                  st.floats(min_value=0.0, max_value=400.0),
                  st.booleans()),
        st.tuples(st.just("append_running"), _gain_floats, _gain_floats),
        st.tuples(st.just("finish"), st.floats(min_value=0.0, max_value=300.0)),
        st.tuples(st.just("check"), st.floats(min_value=0.0, max_value=900.0)),
    ),
    min_size=1,
    max_size=40,
)


@given(
    events=_events,
    window_quanta=st.sampled_from([1.0, 5.0, 30.0, 90.0]),
    fade_quanta=st.sampled_from([0.5, 5.0, 50.0]),
    fade_override=st.sampled_from([None, 0.25, 12.0]),
    max_records=st.sampled_from([None, 3, 8, 64]),
)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_incremental_sums_match_oracle_on_random_episodes(
    events, window_quanta, fade_quanta, fade_override, max_records
):
    """Every checkpoint of a random episode agrees with the naive fold.

    Episodes interleave finished appends (occasionally with out-of-order
    ``executed_at``, which must force a rebuild rather than a wrong
    answer), running appends, running→finished flips (history mutation),
    bounded-history eviction, fade-controller changes and non-monotone
    "now" checkpoints.
    """
    model = _model(window_quanta, fade_quanta)
    history = DataflowHistory(PAPER_PRICING, max_records=max_records)
    evaluator = IncrementalGainEvaluator(model, history)
    now = 0.0
    serial = 0
    for event in events:
        kind = event[0]
        if kind == "append":
            _, gtd, gmd, back_s, shared = event
            record = DataflowRecord(
                name=f"df{serial}",
                executed_at=max(0.0, now - back_s),  # back_s > 0: out of order
                time_gains={INDEX: gtd, **({OTHER: gtd * 0.5} if shared else {})},
                money_gains={INDEX: gmd, **({OTHER: gmd * 0.5} if shared else {})},
            )
            history.add(record)
            serial += 1
        elif kind == "append_running":
            _, gtd, gmd = event
            history.add(
                DataflowRecord(
                    name=f"df{serial}", executed_at=now,
                    time_gains={INDEX: gtd}, money_gains={INDEX: gmd},
                    running=True,
                )
            )
            serial += 1
        elif kind == "finish":
            _, delay_s = event
            running = [r for r in history.records if r.running]
            if running:
                history.mark_finished(running[0].name, now + delay_s)
        else:  # check
            _, jump_s = event
            now = max(0.0, now + jump_s - 300.0)  # jumps can go backwards
            _assert_sums_match(model, history, evaluator, now, fade_override)
    _assert_sums_match(model, history, evaluator, now + 60.0, fade_override)


def test_empty_history_is_zero():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = IncrementalGainEvaluator(model, history)
    assert evaluator.faded_sums(INDEX, 0.0) == (0.0, 0.0, 0)
    assert evaluator.faded_sums(INDEX, 1e6) == (0.0, 0.0, 0)


def test_fully_faded_window_drops_every_sample():
    """Samples older than W contribute nothing — and are expired, not
    just masked: the internal window drains as time passes."""
    model = _model(window_quanta=2.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = IncrementalGainEvaluator(model, history)
    for i in range(5):
        history.add(
            DataflowRecord(
                name=f"df{i}", executed_at=60.0 * i,
                time_gains={INDEX: 10.0}, money_gains={INDEX: 4.0},
            )
        )
    early = evaluator.faded_sums(INDEX, 240.0)
    assert early[2] == 3  # executed at 120/180/240 are within 2 quanta
    late = evaluator.faded_sums(INDEX, 1_000_000.0)
    assert late == (0.0, 0.0, 0)
    assert not evaluator._states[INDEX].window


def test_running_records_contribute_at_full_weight_until_finished():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = IncrementalGainEvaluator(model, history)
    history.add(
        DataflowRecord(
            name="df0", executed_at=0.0,
            time_gains={INDEX: 10.0}, money_gains={INDEX: 4.0}, running=True,
        )
    )
    mc = PAPER_PRICING.quantum_price
    for now in (0.0, 600.0, 3600.0):  # running gain never fades
        assert evaluator.faded_sums(INDEX, now) == (10.0, mc * 4.0, 1)
    history.mark_finished("df0", 3600.0)
    sum_t, sum_m, count = evaluator.faded_sums(INDEX, 3600.0 + 300.0)
    dc = math.exp(-5.0 / 5.0)  # five quanta old, D = 5
    assert count == 1
    assert eq_tol(sum_t, dc * 10.0, 1e-12)
    assert eq_tol(sum_m, dc * mc * 4.0, 1e-12)


def test_drift_stays_bounded_across_many_advances():
    """Thousands of decay-rescales stay within the oracle tolerance
    thanks to the periodic exact refresh."""
    model = _model(window_quanta=1000.0, fade_quanta=50.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = IncrementalGainEvaluator(model, history)
    now = 0.0
    for i in range(10 * REFRESH_EVERY):
        if i % 3 == 0:
            history.add(
                DataflowRecord(
                    name=f"df{i}", executed_at=now,
                    time_gains={INDEX: 7.5}, money_gains={INDEX: 2.5},
                )
            )
        now += 37.0
        evaluator.faded_sums(INDEX, now)
    _assert_sums_match(model, history, evaluator, now, None)
    stats = evaluator.stats
    assert stats.hits > stats.misses + stats.invalidations, (
        "monotone episode should advance incrementally, not rebuild"
    )


def test_cache_stats_classify_rebuild_causes():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = IncrementalGainEvaluator(model, history)
    history.add(DataflowRecord("df0", 0.0, {INDEX: 1.0}, {INDEX: 1.0}))
    evaluator.faded_sums(INDEX, 60.0)
    assert evaluator.stats.misses == 1  # first sight: cold rebuild
    evaluator.faded_sums(INDEX, 120.0)
    assert evaluator.stats.hits == 1  # monotone advance
    evaluator.faded_sums(INDEX, 60.0)  # time moved backwards
    assert evaluator.stats.invalidations == 1
    evaluator.faded_sums(INDEX, 120.0, fade_quanta=2.0)  # controller changed D
    assert evaluator.stats.invalidations == 2
    history.add(DataflowRecord("df1", 0.0, {INDEX: 1.0}, {INDEX: 1.0}, running=True))
    history.mark_finished("df1", 90.0)  # in-place mutation
    evaluator.faded_sums(INDEX, 120.0, fade_quanta=2.0)
    assert evaluator.stats.invalidations == 3
