"""Naive oracle implementations the optimised hot paths are tested against.

These are *frozen references*: deliberately simple, recompute-everything
implementations whose correctness is evident from the paper's equations
(or that are verbatim copies of the pre-optimisation code). They are
never imported by ``src/`` — only the differential tests use them — and
they must stay naive: do not "optimise" an oracle.

Contents:

* :func:`oracle_faded_sums` — the O(window) per-decision fold of the
  faded benefit inflows (Eqs. 4/5) that
  :class:`repro.tuning.incremental.IncrementalGainEvaluator` replaces.
* :class:`OracleSkylineScheduler` — the pre-optimisation Algorithm 4
  scheduler (no dominance prefilter, objectives recomputed from scratch
  at every prune, no topo-order cache). The optimised scheduler must be
  **assignment-identical** to it.
* :func:`oracle_solve_knapsack` — the pre-optimisation branch-and-bound
  (recursive suffix bounds, no memo). The optimised solver must return
  bit-identical solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.container import PAPER_CONTAINER, ContainerSpec
from repro.cloud.pricing import PricingModel
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.knapsack import (
    KnapsackItem,
    KnapsackSolution,
    fractional_bound,
)
from repro.scheduling.schedule import Assignment, Schedule
from repro.tuning.gain import GainModel
from repro.tuning.history import DataflowHistory


# ----------------------------------------------------------------------
# Gain oracle: Eqs. 4/5 benefit inflow, recomputed from scratch
# ----------------------------------------------------------------------
def oracle_faded_sums(
    model: GainModel,
    history: DataflowHistory,
    index_name: str,
    now: float,
    fade_quanta: float | None = None,
) -> tuple[float, float, int]:
    """(Σ dc·gtd, Σ dc·Mc·gmd, #in-window samples) by direct summation.

    One ``exp`` per sample per call — exactly what the naive tuner path
    does via :meth:`GainModel.time_gain` / :meth:`GainModel.money_gain`,
    and exactly what ``IncrementalGainEvaluator.faded_sums`` maintains
    incrementally.
    """
    mc = model.pricing.quantum_price
    sum_time = 0.0
    sum_money = 0.0
    count = 0
    for sample in history.samples_for(index_name, now):
        if not model.in_window(sample.age_quanta):
            continue
        dc = model.fading(sample.age_quanta, fade_quanta)
        sum_time += dc * sample.time_gain_quanta
        sum_money += dc * mc * sample.money_gain_quanta
        count += 1
    return sum_time, sum_money, count


# ----------------------------------------------------------------------
# Skyline oracle: the pre-optimisation Algorithm 4 (frozen copy)
# ----------------------------------------------------------------------
@dataclass
class _OraclePartial:
    """A partial schedule: enough state to branch and to score."""

    assignments: tuple[Assignment, ...] = ()
    container_avail: dict[int, float] = field(default_factory=dict)
    container_first: dict[int, float] = field(default_factory=dict)
    op_end: dict[str, float] = field(default_factory=dict)
    op_container: dict[str, int] = field(default_factory=dict)
    time_end: float = 0.0

    def branch(self) -> "_OraclePartial":
        return _OraclePartial(
            assignments=self.assignments,
            container_avail=dict(self.container_avail),
            container_first=dict(self.container_first),
            op_end=dict(self.op_end),
            op_container=dict(self.op_container),
            time_end=self.time_end,
        )


class OracleSkylineScheduler:
    """The skyline scheduler exactly as it was before the hot-path work.

    Every branch copies the full partial state, every prune recomputes
    money and idle from the assignment list, and nothing is filtered
    before scoring. Slow, but every step is a direct transcription of
    Algorithm 4 — which is what makes it an oracle.
    """

    def __init__(
        self,
        pricing: PricingModel,
        container: ContainerSpec = PAPER_CONTAINER,
        max_containers: int = 100,
        max_skyline: int = 8,
        include_input_transfer: bool = True,
    ) -> None:
        if max_containers <= 0:
            raise ValueError("max_containers must be positive")
        if max_skyline <= 0:
            raise ValueError("max_skyline must be positive")
        self.pricing = pricing
        self.container = container
        self.max_containers = max_containers
        self.max_skyline = max_skyline
        self.include_input_transfer = include_input_transfer

    def schedule(self, dataflow: Dataflow) -> list[Schedule]:
        order = self._ready_order(dataflow)
        skyline: list[_OraclePartial] = [_OraclePartial()]
        for op_name in order:
            op = dataflow.operators[op_name]
            branched: list[_OraclePartial] = []
            if op.optional:
                branched.extend(skyline)  # keeping the op unscheduled is allowed
            for partial in skyline:
                for cid in self._candidate_containers(partial):
                    branched.append(self._assign(partial, dataflow, op, cid))
            skyline = self._prune(branched)
        return [
            Schedule(dataflow=dataflow, pricing=self.pricing, assignments=list(p.assignments))
            for p in skyline
        ]

    @staticmethod
    def _ready_order(dataflow: Dataflow) -> list[str]:
        topo = dataflow.topological_order()
        required = [n for n in topo if not dataflow.operators[n].optional]
        optional = [n for n in topo if dataflow.operators[n].optional]
        return required + optional

    def _candidate_containers(self, partial: _OraclePartial) -> list[int]:
        used = sorted(partial.container_avail)
        if len(used) < self.max_containers:
            fresh = (max(used) + 1) if used else 0
            return used + [fresh]
        return used

    def _assign(
        self, partial: _OraclePartial, dataflow: Dataflow, op: Operator, cid: int
    ) -> _OraclePartial:
        out = partial.branch()
        ready = 0.0
        for edge in dataflow.in_edges(op.name):
            src_end = partial.op_end.get(edge.src)
            if src_end is None:
                continue
            arrival = src_end
            if partial.op_container.get(edge.src) != cid:
                arrival += edge.data_mb / self.container.net_bw_mb_s
            ready = max(ready, arrival)
        start = max(ready, partial.container_avail.get(cid, 0.0))
        duration = op.runtime
        if self.include_input_transfer and op.inputs:
            duration += op.input_mb() / self.container.net_bw_mb_s
        end = start + duration
        out.assignments = (*partial.assignments, Assignment(op.name, cid, start, end))
        out.container_avail[cid] = end
        out.container_first.setdefault(cid, start)
        out.op_end[op.name] = end
        out.op_container[op.name] = cid
        if not op.optional:
            out.time_end = max(partial.time_end, end)
        return out

    def _money_quanta(self, partial: _OraclePartial) -> int:
        tq = self.pricing.quantum_seconds
        total = 0
        for cid, first in partial.container_first.items():
            start_q = math.floor(first / tq + 1e-9)
            end_q = max(start_q + 1, math.ceil(partial.container_avail[cid] / tq - 1e-9))
            total += end_q - start_q
        return total

    def _max_sequential_idle(self, partial: _OraclePartial) -> float:
        tq = self.pricing.quantum_seconds
        per_container: dict[int, list[Assignment]] = {}
        for a in partial.assignments:
            per_container.setdefault(a.container_id, []).append(a)
        best = 0.0
        for cid, items in per_container.items():
            items = sorted(items, key=lambda a: a.start)
            lease_start = math.floor(items[0].start / tq + 1e-9) * tq
            lease_end = math.ceil(max(a.end for a in items) / tq - 1e-9) * tq
            cursor = lease_start
            for a in items:
                best = max(best, a.start - cursor)
                cursor = max(cursor, a.end)
            best = max(best, lease_end - cursor)
        return best

    def _prune(self, partials: list[_OraclePartial]) -> list[_OraclePartial]:
        if not partials:
            return []
        scored = []
        for p in partials:
            time_q = p.time_end / self.pricing.quantum_seconds
            money_q = self._money_quanta(p)
            scored.append([time_q, money_q, -len(p.assignments), 0.0, p])
        groups: dict[tuple[float, int, int], list[list]] = {}
        for row in scored:
            groups.setdefault((round(row[0], 9), row[1], row[2]), []).append(row)
        for rows in groups.values():
            if len(rows) > 1:
                for row in rows:
                    row[3] = -self._max_sequential_idle(row[4])
        scored.sort(key=lambda s: (s[0], s[1], s[2], s[3]))
        front: list[tuple[float, int, _OraclePartial]] = []
        best_money = math.inf
        seen: set[tuple[float, int]] = set()
        for time_q, money_q, _neg_ops, _neg_idle, p in scored:
            key = (round(time_q, 9), money_q)
            if money_q < best_money and key not in seen:
                front.append((time_q, money_q, p))
                best_money = money_q
                seen.add(key)
        if len(front) > self.max_skyline:
            if self.max_skyline == 1:
                front = [front[0]]
            else:
                step = (len(front) - 1) / (self.max_skyline - 1)
                picked = {round(i * step) for i in range(self.max_skyline)}
                front = [front[i] for i in sorted(picked)]
        return [p for _, _, p in front]


# ----------------------------------------------------------------------
# Knapsack oracle: the pre-optimisation branch-and-bound (frozen copy)
# ----------------------------------------------------------------------
def oracle_solve_knapsack(
    items: list[KnapsackItem],
    capacity: float,
    max_nodes: int = 200_000,
) -> KnapsackSolution:
    """Branch-and-bound exactly as shipped before the array-based DFS.

    Suffix bounds re-walk ``order[depth:]`` per node and paths are built
    as tuples — the float accumulation order the optimised solver must
    preserve bit for bit.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    fit = [it for it in items if it.size <= capacity + 1e-12]
    if not fit:
        return KnapsackSolution(selected=(), total_gain=0.0, total_size=0.0, lp_bound=0.0)
    order = sorted(fit, key=_density, reverse=True)
    lp_bound = fractional_bound(order, capacity)

    def suffix_bound(depth: int, room: float) -> float:
        value = 0.0
        for item in order[depth:]:
            if item.size <= 0:
                value += item.gain
            elif item.size <= room:
                value += item.gain
                room -= item.size
            else:
                value += item.gain * (room / item.size)
                break
        return value

    best_gain = -1.0
    best_set: tuple[int, ...] = ()
    best_size = 0.0
    nodes = 0

    stack: list[tuple[int, float, float, tuple[int, ...]]] = [(0, 0.0, 0.0, ())]
    while stack:
        depth, used, gain, chosen = stack.pop()
        nodes += 1
        if gain > best_gain:
            best_gain, best_set, best_size = gain, chosen, used
        if depth >= len(order) or nodes > max_nodes:
            continue
        bound = gain + suffix_bound(depth, capacity - used)
        if bound <= best_gain + 1e-12:
            continue
        item = order[depth]
        stack.append((depth + 1, used, gain, chosen))
        if used + item.size <= capacity + 1e-12:
            stack.append((depth + 1, used + item.size, gain + item.gain, (*chosen, item.item_id)))

    return KnapsackSolution(
        selected=best_set,
        total_gain=max(best_gain, 0.0),
        total_size=best_size,
        lp_bound=lp_bound,
    )


def _density(item: KnapsackItem) -> float:
    if item.size <= 0:
        return float("inf")
    return item.gain / item.size


# ----------------------------------------------------------------------
# Simulator oracle: the scalar dataflow phase of execute() (frozen copy)
# ----------------------------------------------------------------------
def oracle_dataflow_phase(
    dataflow: Dataflow,
    assignments: list[Assignment],
    durations: list[float],
    pricing: PricingModel,
    container: ContainerSpec = PAPER_CONTAINER,
) -> tuple[dict[str, float], dict[str, float], float, int, dict[int, tuple[float, float]]]:
    """Phase 1 of ``ExecutionSimulator.execute`` plus its lease loop.

    A direct transcription of the fault-free scalar walk: assignments
    must already be in the simulator's processing order
    (``sorted(key=lambda a: (a.start, a.end))``) and ``durations`` are
    the noise-adjusted runtimes, one per assignment in that order (noise
    policy is the caller's — drawing it outside keeps the oracle free of
    RNG state). Returns ``(op_starts, op_ends, makespan, money_quanta,
    leases)``; the vectorized kernels must match every value bit for
    bit.
    """
    avail: dict[int, float] = {}
    op_start: dict[str, float] = {}
    op_end: dict[str, float] = {}
    op_container: dict[str, int] = {}
    busy: dict[int, list[tuple[float, float]]] = {}
    for a, duration in zip(assignments, durations):
        ready = 0.0
        for edge in dataflow.in_edges(a.op_name):
            src_end = op_end.get(edge.src)
            if src_end is None:
                continue
            arrival = src_end
            if op_container.get(edge.src) != a.container_id:
                arrival += edge.data_mb / container.net_bw_mb_s
            ready = max(ready, arrival)
        start = max(ready, avail.get(a.container_id, 0.0))
        end = start + duration
        avail[a.container_id] = end
        op_start[a.op_name] = start
        op_end[a.op_name] = end
        op_container[a.op_name] = a.container_id
        busy.setdefault(a.container_id, []).append((start, end))
    makespan = max((e for ivs in busy.values() for _, e in ivs), default=0.0)
    tq = pricing.quantum_seconds
    leases: dict[int, tuple[float, float]] = {}
    money_quanta = 0
    for cid, intervals in busy.items():
        first = min(s for s, _ in intervals)
        last = max(e for _, e in intervals)
        lease_start = math.floor(first / tq + 1e-9) * tq
        lease_end = max(lease_start + tq, math.ceil(last / tq - 1e-9) * tq)
        leases[cid] = (lease_start, lease_end)
        money_quanta += int(round((lease_end - lease_start) / tq))
    return op_start, op_end, makespan, money_quanta, leases


# ----------------------------------------------------------------------
# Index-savings oracle: Algorithm 2 lines 1-5 attribution, re-derived
# ----------------------------------------------------------------------
def oracle_index_savings(
    dataflow: Dataflow,
    available: set[str],
    fractions: dict[str, float] | None = None,
) -> dict[str, float]:
    """Runtime seconds each index saves, re-derived from first principles.

    Mirrors the attribution of
    :func:`repro.interleave.lp.update_runtimes_for_indexes` without
    using any of the ``Operator`` helper methods: the per-file weights,
    effective speedup factors and the best-index selection are all
    recomputed inline, so a bookkeeping bug in the helpers cannot hide
    in both sides of the comparison. Must be called on the dataflow
    *before* the production function mutates it.
    """
    savings: dict[str, float] = {}
    for op in dataflow.operators.values():
        if not op.index_speedup or not op.inputs:
            continue
        total_mb = sum(f.size_mb for f in op.inputs)
        if total_mb <= 0:
            weights = {f.name: 1.0 / len(op.inputs) for f in op.inputs}
        else:
            weights = {f.name: f.size_mb / total_mb for f in op.inputs}
        # The production path skips operators whose runtime would not
        # actually improve; re-derive that guard from the same factors.
        new_runtime = 0.0
        factors: dict[str, tuple[str | None, float]] = {}
        for data_file in op.inputs:
            best_name: str | None = None
            best = 1.0
            for index_name, speedup in op.index_speedup.items():
                if not index_name.startswith(f"{data_file.name}__"):
                    continue
                if index_name not in available or speedup <= 1.0:
                    continue
                fraction = 1.0 if fractions is None else fractions.get(index_name, 1.0)
                fraction = min(max(fraction, 0.0), 1.0)
                effective = 1.0 / ((1.0 - fraction) + fraction / speedup)
                if effective > best:
                    best_name, best = index_name, effective
            factors[data_file.name] = (best_name, best)
            new_runtime += op.runtime * weights[data_file.name] / best
        if new_runtime >= op.runtime:
            continue
        for data_file in op.inputs:
            index_name, factor = factors[data_file.name]
            if index_name is None or factor <= 1.0:
                continue
            saved_s = op.runtime * weights.get(data_file.name, 0.0) * (1.0 - 1.0 / factor)
            savings[index_name] = savings.get(index_name, 0.0) + saved_s
    return savings
