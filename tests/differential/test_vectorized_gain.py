"""Differential tests: batch columnar gain sums vs the naive Eq. 4/5 oracle.

The vectorized evaluator folds the faded benefit inflows through one
``np.exp`` + dot product per call instead of one ``math.exp`` per
sample, so the sums carry the incremental evaluator's tolerance
contract (relative 1e-7) while the in-window sample *count* must be
bit-identical (ages and the cutoff comparison use the same IEEE ops).
The episode generator mirrors ``test_gain_oracle`` exactly — appends,
running records, finish flips, eviction, fade overrides, backwards
time — every adversarial schedule the incremental path is proven on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.core.numeric import eq_tol
from repro.data.index_model import IndexCostModel
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.vectorized import VectorizedGainEvaluator

from tests.differential.oracle import oracle_faded_sums

INDEX = "lineitem__l_orderkey"
OTHER = "orders__o_custkey"


def _model(window_quanta: float, fade_quanta: float) -> GainModel:
    params = GainParameters(
        fade_quanta=fade_quanta, window_quanta=window_quanta,
        storage_window_quanta=fade_quanta,
    )
    return GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)


def _assert_sums_match(
    model: GainModel,
    history: DataflowHistory,
    evaluator: VectorizedGainEvaluator,
    now: float,
    fade: float | None,
) -> None:
    for name in (INDEX, OTHER):
        naive_t, naive_m, naive_n = oracle_faded_sums(model, history, name, now, fade)
        vec_t, vec_m, vec_n = evaluator.faded_sums(name, now, fade)
        assert vec_n == naive_n, f"{name}: sample count {vec_n} != oracle {naive_n}"
        tol_t = 1e-7 * max(1.0, abs(naive_t))
        tol_m = 1e-7 * max(1.0, abs(naive_m))
        assert eq_tol(vec_t, naive_t, tol_t), (
            f"{name}: time sum {vec_t!r} != oracle {naive_t!r} at now={now}"
        )
        assert eq_tol(vec_m, naive_m, tol_m), (
            f"{name}: money sum {vec_m!r} != oracle {naive_m!r} at now={now}"
        )


_gain_floats = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_events = st.lists(
    st.one_of(
        st.tuples(st.just("append"), _gain_floats, _gain_floats,
                  st.floats(min_value=0.0, max_value=400.0),
                  st.booleans()),
        st.tuples(st.just("append_running"), _gain_floats, _gain_floats),
        st.tuples(st.just("finish"), st.floats(min_value=0.0, max_value=300.0)),
        st.tuples(st.just("check"), st.floats(min_value=0.0, max_value=900.0)),
    ),
    min_size=1,
    max_size=40,
)


@given(
    events=_events,
    window_quanta=st.sampled_from([1.0, 5.0, 30.0, 90.0]),
    fade_quanta=st.sampled_from([0.5, 5.0, 50.0]),
    fade_override=st.sampled_from([None, 0.25, 12.0]),
    max_records=st.sampled_from([None, 3, 8, 64]),
)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_vectorized_sums_match_oracle_on_random_episodes(
    events, window_quanta, fade_quanta, fade_override, max_records
):
    """Every checkpoint of a random episode agrees with the naive fold.

    The columnar evaluator has no carried float state, so unlike the
    incremental path there is no drift to bound — but snapshot
    staleness (mutation, eviction, appends between calls) and the
    running/future age clamps must still reproduce the oracle.
    """
    model = _model(window_quanta, fade_quanta)
    history = DataflowHistory(PAPER_PRICING, max_records=max_records)
    evaluator = VectorizedGainEvaluator(model, history)
    now = 0.0
    serial = 0
    for event in events:
        kind = event[0]
        if kind == "append":
            _, gtd, gmd, back_s, shared = event
            history.add(
                DataflowRecord(
                    name=f"df{serial}",
                    executed_at=max(0.0, now - back_s),
                    time_gains={INDEX: gtd, **({OTHER: gtd * 0.5} if shared else {})},
                    money_gains={INDEX: gmd, **({OTHER: gmd * 0.5} if shared else {})},
                )
            )
            serial += 1
        elif kind == "append_running":
            _, gtd, gmd = event
            history.add(
                DataflowRecord(
                    name=f"df{serial}", executed_at=now,
                    time_gains={INDEX: gtd}, money_gains={INDEX: gmd},
                    running=True,
                )
            )
            serial += 1
        elif kind == "finish":
            _, delay_s = event
            running = [r for r in history.records if r.running]
            if running:
                history.mark_finished(running[0].name, now + delay_s)
        else:  # check
            _, jump_s = event
            now = max(0.0, now + jump_s - 300.0)
            _assert_sums_match(model, history, evaluator, now, fade_override)
    _assert_sums_match(model, history, evaluator, now + 60.0, fade_override)


def test_empty_history_is_zero():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = VectorizedGainEvaluator(model, history)
    assert evaluator.faded_sums(INDEX, 0.0) == (0.0, 0.0, 0)
    assert evaluator.faded_sums(INDEX, 1e6) == (0.0, 0.0, 0)


def test_running_records_never_fade():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = VectorizedGainEvaluator(model, history)
    history.add(
        DataflowRecord(
            name="df0", executed_at=0.0,
            time_gains={INDEX: 10.0}, money_gains={INDEX: 4.0}, running=True,
        )
    )
    mc = PAPER_PRICING.quantum_price
    for now in (0.0, 600.0, 3600.0):
        assert evaluator.faded_sums(INDEX, now) == (10.0, mc * 4.0, 1)


def test_snapshot_reuse_and_invalidation_counters():
    model = _model(window_quanta=60.0, fade_quanta=5.0)
    history = DataflowHistory(PAPER_PRICING)
    evaluator = VectorizedGainEvaluator(model, history)
    history.add(DataflowRecord("df0", 0.0, {INDEX: 1.0}, {INDEX: 1.0}))
    evaluator.faded_sums(INDEX, 60.0)
    assert evaluator.stats.misses == 1  # cold snapshot
    evaluator.faded_sums(INDEX, 120.0)
    assert evaluator.stats.hits == 1  # same history, later now: reuse
    evaluator.faded_sums(INDEX, 60.0)  # backwards time is fine (no state)
    assert evaluator.stats.hits == 2
    history.add(DataflowRecord("df1", 0.0, {INDEX: 1.0}, {INDEX: 1.0}, running=True))
    evaluator.faded_sums(INDEX, 120.0)  # history grew: rebuild columns
    assert evaluator.stats.invalidations == 1
    history.mark_finished("df1", 90.0)  # in-place mutation: rebuild
    evaluator.faded_sums(INDEX, 120.0)
    assert evaluator.stats.invalidations == 2
    evaluator.reset()
    assert evaluator.stats.invalidations == 3
    evaluator.faded_sums(INDEX, 120.0)
    assert evaluator.stats.misses == 2


def test_eviction_slices_off_the_dead_prefix():
    """Head-evicted records must vanish from the sums without a rebuild
    of the whole snapshot (the searchsorted slice handles them)."""
    model = _model(window_quanta=1000.0, fade_quanta=50.0)
    history = DataflowHistory(PAPER_PRICING, max_records=3)
    evaluator = VectorizedGainEvaluator(model, history)
    for i in range(6):
        history.add(
            DataflowRecord(
                name=f"df{i}", executed_at=10.0 * i,
                time_gains={INDEX: 1.0}, money_gains={INDEX: 1.0},
            )
        )
    sums = evaluator.faded_sums(INDEX, 100.0)
    naive = oracle_faded_sums(model, history, INDEX, 100.0)
    assert sums[2] == naive[2] == 3
    assert eq_tol(sums[0], naive[0], 1e-9)
