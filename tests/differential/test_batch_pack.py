"""Differential tests: batched knapsack construction vs the per-item path.

``pack_builds_into_schedule(..., vectorized=True)`` hands the solver
views of one contiguous candidate matrix instead of freshly allocated
``KnapsackItem`` lists, and ``solve_knapsack_arrays`` claims
**bit-identity** with the frozen pre-optimisation branch-and-bound
(``oracle_solve_knapsack``): same fit filter, same density tie-breaks,
same float accumulation order in bounds and incumbents. Hypothesis
drives random schedules and candidate matrices; solutions, packed
assignments and observability counters must be exactly equal.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.knapsack import (
    KnapsackItem,
    reset_knapsack_cache,
    solve_knapsack,
    solve_knapsack_arrays,
)
from repro.interleave.lp import pack_builds_into_schedule
from repro.interleave.slots import BuildCandidate
from repro.perf.vectorized import density_order
from repro.scheduling.schedule import Assignment, Schedule

from tests.differential.oracle import oracle_solve_knapsack

_sizes = st.lists(
    st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
    min_size=0, max_size=12,
)


@given(
    sizes=_sizes,
    gain_seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    max_nodes=st.sampled_from([20, 200_000]),
    scrambled_ids=st.booleans(),
)
@settings(max_examples=200, deadline=None, derandomize=True)
def test_solve_knapsack_arrays_bit_identical_to_oracle(
    sizes, gain_seed, capacity, max_nodes, scrambled_ids
):
    """The array entry point equals the frozen branch-and-bound exactly
    — including under the node cap, duplicate densities and id labels
    that are not 0..n-1 (the batch packer passes original indices)."""
    rng = np.random.default_rng(gain_seed)
    gains = [float(rng.uniform(0.0, 50.0)) for _ in sizes]
    ids = list(range(len(sizes)))
    if scrambled_ids:
        ids = [i * 7 + 3 for i in ids]
    items = [KnapsackItem(item_id=i, size=s, gain=g) for i, s, g in zip(ids, sizes, gains)]
    expected = oracle_solve_knapsack(items, capacity, max_nodes=max_nodes)
    reset_knapsack_cache()
    got = solve_knapsack_arrays(
        np.asarray(sizes, dtype=np.float64),
        np.asarray(gains, dtype=np.float64),
        np.asarray(ids, dtype=np.int64),
        capacity,
        max_nodes=max_nodes,
    )
    assert got == expected
    # And the memoised second call returns the identical object state.
    assert solve_knapsack_arrays(
        np.asarray(sizes, dtype=np.float64),
        np.asarray(gains, dtype=np.float64),
        np.asarray(ids, dtype=np.int64),
        capacity,
        max_nodes=max_nodes,
    ) == expected
    # The per-item path agrees too (shared _solve_sorted core).
    reset_knapsack_cache()
    assert solve_knapsack(items, capacity, max_nodes=max_nodes) == expected


@given(
    sizes=_sizes,
    gain_seed=st.integers(min_value=0, max_value=2**16),
    dup_density=st.booleans(),
)
@settings(max_examples=150, deadline=None, derandomize=True)
def test_density_order_matches_python_stable_sort(sizes, gain_seed, dup_density):
    rng = np.random.default_rng(gain_seed)
    gains = [float(rng.uniform(0.0, 50.0)) for _ in sizes]
    if dup_density and len(sizes) >= 2:
        # Force exact density ties (and zero-size +inf ties).
        gains[0] = sizes[0] * 2.0
        gains[1] = sizes[1] * 2.0
    items = [KnapsackItem(item_id=i, size=s, gain=g) for i, (s, g) in enumerate(zip(sizes, gains))]

    def _density(item):
        return float("inf") if item.size <= 0 else item.gain / item.size

    expected = [it.item_id for it in sorted(items, key=_density, reverse=True)]
    got = density_order(
        np.asarray(sizes, dtype=np.float64), np.asarray(gains, dtype=np.float64)
    ).tolist()
    assert got == expected


def _schedule_with_slots(seed: int) -> Schedule:
    rng = np.random.default_rng(seed)
    df = Dataflow(name=f"df{seed}")
    assignments = []
    n = int(rng.integers(1, 6))
    for i in range(n):
        name = f"op{i}"
        runtime = float(rng.uniform(5.0, 50.0))
        df.add_operator(Operator(name=name, runtime=runtime))
        start = float(rng.uniform(0.0, 150.0))
        assignments.append(Assignment(name, int(rng.integers(0, 3)), start, start + runtime))
    return Schedule(dataflow=df, pricing=PAPER_PRICING, assignments=assignments)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_candidates=st.integers(min_value=0, max_value=25),
)
@settings(max_examples=100, deadline=None, derandomize=True)
def test_batch_pack_assignment_identical_to_scalar(seed, n_candidates):
    """The batched packer must place the same builds at the same times
    on the same containers, slot for slot."""
    rng = np.random.default_rng(seed + 1)
    candidates = [
        BuildCandidate(
            index_name="tbl__col",
            partition_id=k,
            duration_s=float(rng.uniform(1.0, 70.0)),
            gain=float(rng.uniform(0.0, 10.0)),
        )
        for k in range(n_candidates)
    ]
    schedule = _schedule_with_slots(seed)
    reset_knapsack_cache()
    scalar = pack_builds_into_schedule(schedule, list(candidates), vectorized=False)
    reset_knapsack_cache()
    batch = pack_builds_into_schedule(schedule, list(candidates), vectorized=True)
    assert batch.build_assignments == scalar.build_assignments
    assert batch.scheduled_builds == scalar.scheduled_builds
    assert batch.num_builds == scalar.num_builds


def test_batch_pack_obs_counters_match_scalar():
    from repro.obs import Observation

    rng = np.random.default_rng(0)
    candidates = [
        BuildCandidate("tbl__col", k, float(rng.uniform(1.0, 70.0)), float(rng.uniform(0.0, 10.0)))
        for k in range(12)
    ]
    schedule = _schedule_with_slots(5)
    counters = {}
    for vectorized in (False, True):
        reset_knapsack_cache()
        obs = Observation.recording()
        pack_builds_into_schedule(schedule, list(candidates), obs=obs, vectorized=vectorized)
        counters[vectorized] = {
            name: obs.metrics.counter(name).value
            for name in (
                "interleave/lp/slots_visited",
                "interleave/lp/builds_packed",
                "interleave/lp/builds_unplaced",
            )
        }
    assert counters[False] == counters[True]
