"""Differential-testing harness for the hot-path performance layer.

Every optimisation in the performance layer (incremental gain sums,
skyline dominance pruning + incremental objectives, knapsack solve
memoisation) is paired here with a *naive oracle* — a frozen,
obviously-correct reference implementation — and driven over randomised
scenarios (Hypothesis). The optimised code must agree with the oracle:
bit-for-bit where the optimisation is exact (skyline, knapsack memo),
within the repo's money/time epsilons where it is tolerance-preserving
(decay-rescaled gain sums).
"""
