"""Differential tests: vectorized simulator phase vs the frozen scalar oracle.

The batch kernels (:mod:`repro.perf.vectorized`) claim **bit-identity**
with the scalar simulator walk — not tolerance equality: ``max`` is an
exact selection, ``end = start + duration`` is the same single IEEE
add, and the batched noise draw consumes the Generator stream exactly
like the per-assignment scalar draws. Hypothesis drives random DAGs,
container placements and noisy runtimes; every float of every result
must be ``==`` to the frozen oracle's and to the scalar simulator's.
"""

from __future__ import annotations

import copy
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.core.numeric import TIME_EPS, ceil_tol, floor_tol
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.lp import InterleavedSchedule
from repro.perf.vectorized import TIME_EPS as VEC_TIME_EPS
from repro.perf.vectorized import lease_bounds
from repro.scheduling.schedule import Assignment, Schedule

from tests.differential.oracle import oracle_dataflow_phase


@st.composite
def _cases(draw):
    """A random dataflow, its (possibly shuffled) assignments and builds."""
    n = draw(st.integers(min_value=1, max_value=10))
    runtimes = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    cids = draw(st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n))
    starts = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
            ),
            max_size=15,
        )
    )
    builds = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # container (maybe unused)
                st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=90.0, allow_nan=False),
            ),
            max_size=4,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return n, runtimes, cids, starts, edges, builds, seed


def _build_case(case) -> InterleavedSchedule:
    n, runtimes, cids, starts, edges, builds, _seed = case
    df = Dataflow(name="df")
    names = [f"op{i}" for i in range(n)]
    for name, runtime in zip(names, runtimes):
        df.add_operator(Operator(name=name, runtime=runtime))
    for i, j, mb in edges:
        if i < j:  # DAG on operator index; assignment order stays random
            df.add_edge(names[i], names[j], data_mb=mb)
    assignments = [
        Assignment(name, cid, start, start + runtime)
        for name, cid, start, runtime in zip(names, cids, starts, runtimes)
    ]
    schedule = Schedule(dataflow=df, pricing=PAPER_PRICING, assignments=assignments)
    build_assignments = [
        Assignment(f"build::tbl__col::p{k:05d}", cid, start, start + dur)
        for k, (cid, start, dur) in enumerate(builds)
    ]
    return InterleavedSchedule(schedule=schedule, build_assignments=build_assignments)


@given(case=_cases(), runtime_error=st.sampled_from([0.0, 0.1]))
@settings(max_examples=120, deadline=None, derandomize=True)
def test_vectorized_execute_bit_identical_to_scalar(case, runtime_error):
    """Full ExecutionResult equality — every field, every float, plus the
    RNG stream position afterwards (phase 2 draws must stay aligned)."""
    seed = case[-1]
    interleaved = _build_case(case)
    scalar = ExecutionSimulator(
        PAPER_PRICING, runtime_error=runtime_error, rng=np.random.default_rng(seed)
    )
    batch = ExecutionSimulator(
        PAPER_PRICING, runtime_error=runtime_error,
        rng=np.random.default_rng(seed), vectorized=True,
    )
    r1 = scalar.execute(copy.deepcopy(interleaved), 123.0)
    r2 = batch.execute(copy.deepcopy(interleaved), 123.0)
    assert r1 == r2
    assert scalar.rng.uniform() == batch.rng.uniform()


@given(case=_cases(), runtime_error=st.sampled_from([0.0, 0.1]))
@settings(max_examples=120, deadline=None, derandomize=True)
def test_both_paths_match_frozen_oracle(case, runtime_error):
    """Makespan, money and leases of both simulators equal the frozen
    naive transcription fed the identical noise stream."""
    seed = case[-1]
    interleaved = _build_case(case)
    df_sorted = sorted(
        interleaved.schedule.dataflow_assignments(), key=lambda a: (a.start, a.end)
    )
    rng = np.random.default_rng(seed)
    durations = []
    for a in df_sorted:
        noise = 1.0
        if runtime_error > 0.0:
            noise = float(rng.uniform(1.0 - runtime_error, 1.0 + runtime_error))
        durations.append(a.duration * noise)
    _starts, _ends, makespan, money, leases = oracle_dataflow_phase(
        interleaved.schedule.dataflow, df_sorted, durations, PAPER_PRICING
    )
    for vectorized in (False, True):
        sim = ExecutionSimulator(
            PAPER_PRICING, runtime_error=runtime_error,
            rng=np.random.default_rng(seed), vectorized=vectorized,
        )
        # Strip the builds: the oracle covers the dataflow phase + leases.
        bare = InterleavedSchedule(schedule=copy.deepcopy(interleaved.schedule))
        result = sim.execute(bare, 0.0)
        assert result.makespan_seconds == makespan
        assert result.money_quanta == money
    batch = ExecutionSimulator(
        PAPER_PRICING, runtime_error=runtime_error,
        rng=np.random.default_rng(seed), vectorized=True,
    )
    if df_sorted:
        mk, mq, batch_leases, _busy = batch._vectorized_dataflow_phase(
            interleaved.schedule.dataflow, df_sorted, interleaved, 0, 0.0
        )
        assert mk == makespan
        assert mq == money
        assert batch_leases == leases


@given(
    firsts=st.lists(
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
        min_size=1, max_size=30,
    ),
    extents=st.lists(
        st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
        min_size=30, max_size=30,
    ),
    quantum=st.sampled_from([60.0, 37.5, 300.0]),
)
@settings(max_examples=200, deadline=None, derandomize=True)
def test_lease_bounds_bit_identical_to_floor_ceil_tol(firsts, extents, quantum):
    """The batched lease window mirrors floor_tol/ceil_tol exactly —
    including values a rounding crumb off a quantum boundary."""
    lasts = [f + e for f, e in zip(firsts, extents)]
    # Adversarial: exact boundaries and crumb-offset boundaries.
    firsts = firsts + [2.0 * quantum, 3.0 * quantum - 1e-10]
    lasts = lasts + [3.0 * quantum, 3.0 * quantum + 1e-10]
    ls, le, q = lease_bounds(
        np.asarray(firsts, dtype=np.float64),
        np.asarray(lasts, dtype=np.float64),
        quantum,
    )
    for k, (first, last) in enumerate(zip(firsts, lasts)):
        lease_start = floor_tol(first / quantum) * quantum
        lease_end = max(lease_start + quantum, ceil_tol(last / quantum) * quantum)
        assert ls[k] == lease_start
        assert le[k] == lease_end
        assert int(q[k]) == int(round((lease_end - lease_start) / quantum))


def test_time_eps_pinned_to_core_numeric():
    """LAY01 forces repro.perf to duplicate the epsilon instead of
    importing repro.core.numeric; this pin keeps the copies in lock-step."""
    assert VEC_TIME_EPS == TIME_EPS


def test_perf_vectorized_is_a_leaf():
    """The kernel module must import no other repro package (leaf-to-
    leaf and leaf-to-core imports are LAY01 violations) — which is why
    it carries its own TIME_EPS copy instead of the canonical one."""
    import ast
    import repro.perf.vectorized as mod

    tree = ast.parse(pathlib.Path(mod.__file__).read_text())
    bad = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            bad += [a.name for a in node.names if a.name.startswith("repro")]
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro"):
                bad.append(node.module)
    assert not bad, f"repro.perf.vectorized imports repro modules: {bad}"


def test_faults_force_the_scalar_path():
    """A fault-active execution must ignore vectorized=True: the per-
    attempt retry/crash draws are inherently sequential."""
    from repro.faults.injector import FaultInjector, FaultProfile

    case = (2, [30.0, 40.0], [0, 0], [0.0, 30.0], [], [], 7)
    interleaved = _build_case(case)
    results = []
    for vectorized in (False, True):
        injector = FaultInjector(
            FaultProfile(operator_failure_rate=0.5),
            rng=np.random.default_rng(11),
        )
        sim = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.1, rng=np.random.default_rng(5),
            injector=injector, vectorized=vectorized,
        )
        results.append(sim.execute(copy.deepcopy(interleaved), 0.0))
    assert results[0] == results[1]
    assert results[0].operator_retries > 0 or results[0].operators_recovered >= 0


def test_empty_schedule_takes_scalar_path():
    df = Dataflow(name="empty")
    schedule = Schedule(dataflow=df, pricing=PAPER_PRICING, assignments=[])
    sim = ExecutionSimulator(PAPER_PRICING, vectorized=True)
    result = sim.execute(InterleavedSchedule(schedule=schedule), 0.0)
    assert result.makespan_seconds == 0.0
    assert result.money_quanta == 0


@pytest.mark.parametrize("runtime_error", [0.0, 0.1])
def test_execute_pooled_never_vectorizes(runtime_error):
    """execute_pooled carries sequential cache state; the flag is inert."""
    from repro.core.pool import ContainerPool

    case = (3, [20.0, 30.0, 40.0], [0, 1, 0], [0.0, 0.0, 20.0],
            [(0, 2, 100.0)], [], 3)
    interleaved = _build_case(case)
    results = []
    for vectorized in (False, True):
        pool = ContainerPool(PAPER_PRICING, max_containers=10)
        sim = ExecutionSimulator(
            PAPER_PRICING, runtime_error=runtime_error,
            rng=np.random.default_rng(9), vectorized=vectorized,
        )
        results.append(sim.execute_pooled(copy.deepcopy(interleaved), 0.0, pool))
    assert results[0] == results[1]
