"""Differential tests: optimised skyline scheduler vs the frozen oracle.

The dominance prefilter, incremental money/idle objectives and cached
topological orders are all *exact* optimisations — the optimised
scheduler must produce assignment-identical schedules to the
pre-optimisation oracle on every input, not merely an equivalent Pareto
front. Random layered DAGs (with optional index-build operators, the
online-interleaving case) exercise branching, tie-breaking and the
skyline cap.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.scheduling.skyline import SkylineScheduler

from tests.differential.oracle import OracleSkylineScheduler


@st.composite
def random_dags(draw):
    """Random layered DAGs, some operators optional (index builds)."""
    num_ops = draw(st.integers(min_value=2, max_value=14))
    runtimes = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=400.0),
            min_size=num_ops, max_size=num_ops,
        )
    )
    num_optional = draw(st.integers(min_value=0, max_value=3))
    edge_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    edge_prob = draw(st.sampled_from([0.0, 0.2, 0.45]))
    flow = Dataflow(name="diff")
    for i, runtime in enumerate(runtimes):
        flow.add_operator(Operator(name=f"op{i}", runtime=runtime))
    rng = np.random.default_rng(edge_seed)
    # Edges only from lower to higher indices: acyclic by construction.
    for j in range(1, num_ops):
        for i in range(j):
            if rng.random() < edge_prob:
                flow.add_edge(f"op{i}", f"op{j}", data_mb=float(rng.uniform(0, 80)))
    # Optional operators model index builds: no edges, skippable.
    for k in range(num_optional):
        flow.add_operator(
            Operator(
                name=f"build{k}",
                runtime=float(rng.uniform(10, 200)),
                optional=True,
            )
        )
    return flow


def _fingerprint(schedules) -> list[tuple]:
    """Assignment-level identity: (op, container, start, end) per schedule."""
    return [
        tuple((a.op_name, a.container_id, a.start, a.end) for a in s.assignments)
        for s in schedules
    ]


@given(
    flow=random_dags(),
    max_skyline=st.sampled_from([1, 2, 4, 8]),
    max_containers=st.sampled_from([2, 3, 8, 100]),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_optimised_scheduler_is_assignment_identical_to_oracle(
    flow, max_skyline, max_containers
):
    oracle = OracleSkylineScheduler(
        PAPER_PRICING, max_skyline=max_skyline, max_containers=max_containers
    )
    optimised = SkylineScheduler(
        PAPER_PRICING, max_skyline=max_skyline, max_containers=max_containers
    )
    expected = oracle.schedule(flow)
    actual = optimised.schedule(flow)
    assert _fingerprint(actual) == _fingerprint(expected)


@given(flow=random_dags(), max_skyline=st.sampled_from([2, 6]))
@settings(max_examples=30, deadline=None, derandomize=True)
def test_pareto_front_objectives_match_oracle(flow, max_skyline):
    """Beyond identical assignments: the (time, money) points and the
    idle-slot tie-break objective agree schedule by schedule."""
    oracle = OracleSkylineScheduler(PAPER_PRICING, max_skyline=max_skyline, max_containers=6)
    optimised = SkylineScheduler(PAPER_PRICING, max_skyline=max_skyline, max_containers=6)
    expected = oracle.schedule(flow)
    actual = optimised.schedule(flow)
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.makespan_quanta() == want.makespan_quanta()
        assert got.money_quanta() == want.money_quanta()
        assert got.fragmentation_quanta() == want.fragmentation_quanta()


def test_topo_cache_reuse_does_not_change_schedules():
    """Scheduling the same structure repeatedly (the service's steady
    state, where the topo cache hits) returns identical schedules."""
    rng = np.random.default_rng(7)
    flow = Dataflow(name="steady")
    for i in range(8):
        flow.add_operator(Operator(name=f"op{i}", runtime=float(rng.uniform(5, 300))))
    for j in range(1, 8):
        for i in range(j):
            if rng.random() < 0.3:
                flow.add_edge(f"op{i}", f"op{j}", data_mb=float(rng.uniform(0, 40)))
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=8)
    first = _fingerprint(scheduler.schedule(flow))
    for _ in range(3):
        assert _fingerprint(scheduler.schedule(flow)) == first
    assert scheduler.topo_stats.hits >= 3
