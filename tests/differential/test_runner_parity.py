"""Differential tests: parallel experiment runner vs serial execution.

``--workers N`` is a throughput knob, never a semantic one: the same
tasks produce byte-identical metrics and observability artifacts
whether they run in-process or fanned out over spawned workers, and a
repetition that crashes surfaces as a clean re-raised error rather than
a truncated result list.

The multiprocess legs use a deliberately tiny horizon — each worker
pays a full interpreter spawn — and one shared fan-out for several
assertions.
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.core.service import Strategy
from repro.experiments import (
    ExperimentTask,
    TaskResult,
    derive_seed,
    run_campaign,
    run_tasks,
)


def _config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        total_time_s=10 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=seed,
    )


def _tasks(root_seed: int, repeats: int) -> list[ExperimentTask]:
    return [
        ExperimentTask(
            strategy=Strategy.GAIN,
            generator="phase",
            seed=derive_seed(root_seed, rep),
            config=_config(derive_seed(root_seed, rep)),
            record_obs=True,
        )
        for rep in range(repeats)
    ]


def _artifact_bytes(result: TaskResult) -> tuple[str, str, str]:
    assert result.journal_jsonl is not None
    assert result.metrics_json is not None
    assert result.trace_json is not None
    return (result.journal_jsonl, result.metrics_json, result.trace_json)


def test_worker_fanout_is_byte_identical_to_serial():
    """Metrics and all three artifact streams match bytewise, rep by rep."""
    tasks = _tasks(root_seed=5, repeats=3)
    serial = run_tasks(tasks, workers=1)
    parallel = run_tasks(tasks, workers=4)
    assert len(serial) == len(parallel) == 3
    for ser, par in zip(serial, parallel):
        assert ser.task == par.task  # submission-order merge
        assert repr(ser.metrics) == repr(par.metrics)
        assert _artifact_bytes(ser) == _artifact_bytes(par)
    # Not vacuous: repetitions with different derived seeds differ.
    assert _artifact_bytes(serial[0]) != _artifact_bytes(serial[1])


def test_rep0_keeps_the_root_seed():
    assert derive_seed(123, 0) == 123
    # Later repetitions are deterministic functions of (root, rep).
    assert derive_seed(123, 1) == derive_seed(123, 1)
    assert derive_seed(123, 1) != derive_seed(123, 2)
    assert derive_seed(124, 1) != derive_seed(123, 1)
    with pytest.raises(ValueError):
        derive_seed(123, -1)


def test_crashed_worker_raises_cleanly():
    """A task that blows up in a worker re-raises at the call site —
    no hang, no silently truncated result list."""
    bad = ExperimentTask(
        strategy=Strategy.GAIN,
        generator="no-such-generator",
        seed=7,
        config=_config(7),
    )
    good = _tasks(root_seed=5, repeats=1)[0]
    with pytest.raises(Exception) as excinfo:
        run_tasks([good, bad], workers=2)
    assert "no-such-generator" in str(excinfo.value) or "generator" in str(
        excinfo.value
    ).lower()


def test_campaign_workers_match_serial_campaign():
    cfg = _config(41)
    serial = run_campaign(
        Strategy.GAIN, seeds=[41, 42], config=cfg, workers=1
    )
    parallel = run_campaign(
        Strategy.GAIN, seeds=[41, 42], config=cfg, workers=2
    )
    assert [repr(m) for m in serial.runs] == [repr(m) for m in parallel.runs]
