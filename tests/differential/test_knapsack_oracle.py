"""Differential tests: memoised array-DFS knapsack vs the frozen oracle.

The optimised solver changed the mechanics (parallel arrays, cons-list
paths, whole-solve memo) but is required to preserve the original float
accumulation order, so solutions must be **bit-identical** to the
oracle — selected ids, total gain, total size and LP bound — on every
input, memo hit or miss. A brute-force subset enumeration additionally
anchors both against ground truth on small instances.
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.interleave.knapsack import (
    KnapsackItem,
    clear_knapsack_cache,
    solve_knapsack,
)

from tests.differential.oracle import oracle_solve_knapsack

_items = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),  # size
        st.floats(min_value=0.0, max_value=100.0),  # gain
    ),
    min_size=0,
    max_size=14,
).map(
    lambda raw: [
        KnapsackItem(item_id=i, size=size, gain=gain)
        for i, (size, gain) in enumerate(raw)
    ]
)


@given(
    items=_items,
    capacity=st.floats(min_value=0.0, max_value=120.0),
    max_nodes=st.sampled_from([50, 200_000]),
)
@settings(max_examples=120, deadline=None, derandomize=True)
def test_optimised_solver_is_bit_identical_to_oracle(items, capacity, max_nodes):
    expected = oracle_solve_knapsack(items, capacity, max_nodes)
    clear_knapsack_cache()
    cold = solve_knapsack(items, capacity, max_nodes)
    warm = solve_knapsack(items, capacity, max_nodes)  # memo hit
    for got in (cold, warm):
        assert got.selected == expected.selected
        assert got.total_gain == expected.total_gain
        assert got.total_size == expected.total_size
        assert got.lp_bound == expected.lp_bound


@given(
    items=_items.filter(lambda xs: len(xs) <= 10),
    capacity=st.floats(min_value=0.0, max_value=120.0),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_solver_gain_is_sandwiched_by_brute_force_optima(items, capacity):
    """Ground truth: exhaustive enumeration sandwiches the solver.

    The solver admits items within a 1e-12 fit slop, so its value lies
    between the strict-capacity optimum (it never does worse, modulo
    the bound-prune epsilon) and the slop-capacity optimum (it cannot
    conjure gain from nowhere).
    """
    best_strict = 0.0
    best_slop = 0.0
    for r in range(len(items) + 1):
        for combo in combinations(items, r):
            size = sum(it.size for it in combo)
            gain = sum(it.gain for it in combo)
            if size <= capacity:
                best_strict = max(best_strict, gain)
            if size <= capacity + 1e-12:
                best_slop = max(best_slop, gain)
    solution = solve_knapsack(items, capacity)
    assert solution.total_gain >= best_strict - 1e-9 * max(1.0, best_strict)
    assert solution.total_gain <= best_slop + 1e-9 * max(1.0, best_slop)
    assert solution.total_size <= capacity + 1e-9
