"""Guard tests: the batch kernels are unreachable unless ``vectorized=True``.

The byte-determinism contract says a zero-flag run must not change by a
single byte when a new subsystem lands. The strongest proof is
structural: poison every batch entry point at its call site and drive a
full default-config experiment — if any poisoned kernel fires, the
scalar paths are no longer the default. A second test pins the
flags-on contract at the service level: the vectorized run's metrics
are field-identical to the scalar run's (the journal/trace artifacts
carry gain floats under the 1e-7 tolerance contract, so the *metrics
outcome*, not artifact bytes, is the cross-flag invariant).
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro import Strategy, run_experiment
from repro.core.config import default_config

SEED = 7
HORIZON_S = 4 * 60.0


def _small_config(**overrides):
    return replace(default_config(), seed=SEED, total_time_s=HORIZON_S, **overrides)


def _poison(name):
    def _boom(*args, **kwargs):
        raise AssertionError(f"batch kernel {name} reached with vectorized=False")

    return _boom


POISON_SITES = [
    # (module path, attribute) — the *call-site* binding, not the kernel
    # module, so a stale import alias cannot dodge the patch.
    ("repro.core.simulator", "simulate_dataflow_phase"),
    ("repro.core.simulator", "group_min_max"),
    ("repro.core.simulator", "lease_bounds"),
    ("repro.tuning.vectorized", "faded_sums_kernel"),
    ("repro.tuning.vectorized", "ages_quanta"),
    ("repro.interleave.knapsack", "density_order"),
    ("repro.interleave.knapsack", "solve_knapsack_arrays"),
    ("repro.interleave.lp", "_pack_builds_batch"),
]


def test_default_config_has_the_flag_off():
    assert default_config().vectorized is False


def test_default_run_never_reaches_a_batch_kernel(monkeypatch):
    import importlib

    for module_path, attr in POISON_SITES:
        module = importlib.import_module(module_path)
        assert hasattr(module, attr), f"{module_path}.{attr} vanished"
        monkeypatch.setattr(module, attr, _poison(f"{module_path}.{attr}"))
    for strategy in (Strategy.GAIN, Strategy.NO_INDEX):
        metrics = run_experiment(strategy, config=_small_config())
        assert len(metrics.outcomes) > 0


def test_vectorized_run_matches_scalar_metrics_field_for_field():
    scalar = run_experiment(Strategy.GAIN, config=_small_config())
    batch = run_experiment(Strategy.GAIN, config=_small_config(vectorized=True))
    diffs = []
    for f in dataclasses.fields(scalar):
        if f.name == "registry":
            # Observability counters legitimately differ (the two gain
            # evaluators publish different cache hit/miss profiles).
            continue
        a, b = getattr(scalar, f.name), getattr(batch, f.name)
        if a != b:
            diffs.append((f.name, a, b))
    assert not diffs, f"vectorized run diverged on metric fields: {diffs}"


@pytest.mark.parametrize("vectorized", [False, True])
def test_runs_are_reproducible_under_either_flag(vectorized):
    a = run_experiment(Strategy.GAIN, config=_small_config(vectorized=vectorized))
    b = run_experiment(Strategy.GAIN, config=_small_config(vectorized=vectorized))
    fields = {f.name for f in dataclasses.fields(a)} - {"registry"}
    for name in sorted(fields):
        assert getattr(a, name) == getattr(b, name), name
