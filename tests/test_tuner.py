"""Tests for the online index tuner (Algorithm 1)."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.data.catalog import Catalog
from repro.data.index_model import IndexSpec
from repro.data.table import (
    Column,
    ColumnType,
    TableSchema,
    TableStatistics,
    partition_table,
)
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.scheduling.skyline import SkylineScheduler
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory
from repro.tuning.tuner import OnlineIndexTuner


def make_catalog(num_tables=2, size_mb=50.0):
    catalog = Catalog(pricing=PAPER_PRICING)
    schema_cols = (Column("k", ColumnType.INTEGER), Column("pay", ColumnType.TEXT))
    stats = TableStatistics(avg_field_bytes={"k": 8.0, "pay": 92.0})
    for i in range(num_tables):
        name = f"t{i}"
        table = partition_table(
            name, TableSchema(name, schema_cols), stats,
            total_records=int(size_mb * 2**20 / 100.0),
        )
        catalog.add_table(table)
        catalog.add_potential_index(IndexSpec(name, ("k",)))
    return catalog


def flow_using(index_names, runtime=200.0, speedup=10.0, name="d1"):
    """A fragmented dataflow whose long branch reads indexed tables."""
    flow = Dataflow(name=name)
    inputs = tuple(DataFile(n.split("__")[0], 50.0) for n in index_names)
    flow.add_operator(Operator(name="a", runtime=20.0))
    flow.add_operator(
        Operator(
            name="long", runtime=runtime, inputs=inputs,
            index_speedup={n: speedup for n in index_names},
        )
    )
    flow.add_operator(Operator(name="short", runtime=15.0))
    flow.add_operator(Operator(name="join", runtime=20.0))
    flow.add_edge("a", "long")
    flow.add_edge("a", "short")
    flow.add_edge("long", "join")
    flow.add_edge("short", "join")
    for n in index_names:
        flow.candidate_indexes.add(n)
    return flow


def make_tuner(catalog, interleaver="lp", **gain_kwargs):
    params = GainParameters(**gain_kwargs) if gain_kwargs else GainParameters()
    return OnlineIndexTuner(
        catalog=catalog,
        gain_model=GainModel(PAPER_PRICING, catalog.cost_model, params),
        history=DataflowHistory(PAPER_PRICING),
        scheduler=SkylineScheduler(PAPER_PRICING, max_skyline=4),
        interleaver=interleaver,
    )


class TestGainBookkeeping:
    def test_dataflow_gains_memoised(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        flow = flow_using(["t0__k"])
        first = tuner.dataflow_gains(flow)
        second = tuner.dataflow_gains(flow)
        assert first is second

    def test_record_execution_lands_in_history(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        tuner.record_execution("d1", 60.0, {"t0__k": 2.0}, {"t0__k": 1.5})
        assert len(tuner.history) == 1
        assert tuner.history.samples_for("t0__k", now=60.0)

    def test_evaluate_includes_queued(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        current = flow_using(["t0__k"], name="cur")
        queued = [flow_using(["t0__k"], name=f"q{i}") for i in range(4)]
        alone = tuner.evaluate_gains(0.0, current=current)["t0__k"]
        with_queue = tuner.evaluate_gains(0.0, current=current, queued=queued)["t0__k"]
        assert with_queue.time_gain_quanta > alone.time_gain_quanta


class TestDecisions:
    def test_beneficial_index_gets_build_candidates(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        # Strong repeated usage makes t0__k beneficial.
        for i in range(3):
            tuner.record_execution(f"h{i}", 0.0, {"t0__k": 5.0}, {"t0__k": 5.0})
        decision = tuner.on_dataflow(flow_using(["t0__k"]), now=60.0)
        assert any(g.index_name == "t0__k" for g in decision.ranked)
        assert decision.chosen.num_builds > 0

    def test_useless_index_not_built(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        flow = flow_using(["t0__k"], runtime=1.0, speedup=1.5)
        decision = tuner.on_dataflow(flow, now=0.0)
        assert decision.ranked == []
        assert decision.chosen.num_builds == 0

    def test_deletion_flagged_when_gains_fade(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog, fade_quanta=1.0)
        index = catalog.index("t0__k")
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=0.0)
        # History is ancient; a new dataflow that does not use t0 arrives.
        tuner.record_execution("old", 0.0, {"t0__k": 5.0}, {"t0__k": 5.0})
        decision = tuner.on_dataflow(flow_using(["t1__k"]), now=6000.0)
        assert "t0__k" in decision.to_delete

    def test_periodic_cleanup(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog, fade_quanta=1.0)
        index = catalog.index("t0__k")
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=0.0)
        tuner.record_execution("old", 0.0, {"t0__k": 5.0}, {"t0__k": 5.0})
        assert tuner.periodic_cleanup(now=6000.0) == ["t0__k"]
        assert tuner.periodic_cleanup(now=0.0) == []

    def test_decision_carries_original_gains(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog)
        flow = flow_using(["t0__k"])
        decision = tuner.on_dataflow(flow, now=0.0)
        assert "t0__k" in decision.dataflow_time_gains
        assert decision.dataflow_time_gains["t0__k"] > 0

    def test_interleaver_validation(self):
        catalog = make_catalog()
        with pytest.raises(ValueError):
            make_tuner(catalog, interleaver="bogus")

    def test_online_interleaver_works_end_to_end(self):
        catalog = make_catalog()
        tuner = make_tuner(catalog, interleaver="online")
        for i in range(3):
            tuner.record_execution(f"h{i}", 0.0, {"t0__k": 5.0}, {"t0__k": 5.0})
        decision = tuner.on_dataflow(flow_using(["t0__k"]), now=60.0)
        assert decision.chosen is not None

    def test_max_candidates_cap(self):
        catalog = make_catalog(num_tables=1, size_mb=2000.0)  # many partitions
        tuner = make_tuner(catalog)
        tuner.max_candidates = 5
        for i in range(3):
            tuner.record_execution(f"h{i}", 0.0, {"t0__k": 50.0}, {"t0__k": 50.0})
        decision = tuner.on_dataflow(flow_using(["t0__k"]), now=60.0)
        gains = decision.gains["t0__k"]
        if gains.beneficial:
            candidates = tuner.build_candidates(decision.ranked)
            assert len(candidates) <= 5


class TestAvailableIndexSpeedup:
    def test_built_index_shrinks_scheduled_runtime(self):
        catalog = make_catalog()
        index = catalog.index("t0__k")
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=0.0)
        tuner = make_tuner(catalog)
        flow = flow_using(["t0__k"], runtime=300.0, speedup=10.0)
        decision = tuner.on_dataflow(flow, now=0.0)
        long_assignment = decision.chosen.schedule.assignment_of("long")
        # 300 s shrunk ~10x plus index read + input slice.
        assert long_assignment.duration < 300.0
