"""Unit tests for the structural artifact diff (``repro.obs.diff``)."""

from __future__ import annotations

import json

from repro.obs import (
    artifact_divergence,
    diff_journals,
    diff_metrics,
    diff_traces,
)


def jl(*records: dict) -> str:
    return "".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n" for r in records
    )


# ----------------------------------------------------------------------
# Journal diffs
# ----------------------------------------------------------------------
def test_identical_journals_have_no_divergence() -> None:
    text = jl({"event": "a", "t": 1.0}, {"event": "b", "t": 2.0})
    assert diff_journals(text, text) is None


def test_journal_event_type_divergence_names_both_events() -> None:
    a = jl({"event": "index_build", "t": 10.0})
    b = jl({"event": "index_delete", "t": 10.0})
    d = diff_journals(a, b)
    assert d is not None
    assert d.location == "event 0"
    assert "index_build@t=10.0" in d.a
    assert "index_delete@t=10.0" in d.b


def test_journal_payload_divergence_names_first_differing_key() -> None:
    a = jl({"event": "x", "t": 1.0, "index": "i1", "size_mb": 10})
    b = jl({"event": "x", "t": 1.0, "index": "i1", "size_mb": 20})
    d = diff_journals(a, b)
    assert d is not None
    assert "key 'size_mb'" in d.location
    assert (d.a, d.b) == ("10", "20")


def test_journal_length_divergence_reports_counts_and_extra_event() -> None:
    a = jl({"event": "x", "t": 1.0}, {"event": "y", "t": 2.0})
    b = jl({"event": "x", "t": 1.0})
    d = diff_journals(a, b)
    assert d is not None
    assert d.location == "event 1"
    assert d.a == "2 events"
    assert "y@t=2.0" in d.b


# ----------------------------------------------------------------------
# Metrics / trace diffs
# ----------------------------------------------------------------------
def test_metrics_divergence_gives_key_path() -> None:
    a = json.dumps({"counters": {"x": 1, "y": 2}, "gauges": {}})
    b = json.dumps({"counters": {"x": 1, "y": 3}, "gauges": {}})
    d = diff_metrics(a, b)
    assert d is not None
    assert d.location == "key counters.y"
    assert (d.a, d.b) == ("2", "3")
    assert diff_metrics(a, a) is None


def test_metrics_missing_key_reported_as_absent() -> None:
    a = json.dumps({"counters": {"x": 1}})
    b = json.dumps({"counters": {}})
    d = diff_metrics(a, b)
    assert d is not None
    assert d.location == "key counters.x"
    assert d.b == "<absent>"


def test_trace_divergence_indexes_into_trace_events() -> None:
    ev = {"ph": "X", "name": "op", "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 1}
    ev2 = dict(ev, dur=3.0)
    a = json.dumps({"traceEvents": [ev]})
    b = json.dumps({"traceEvents": [ev2]})
    d = diff_traces(a, b)
    assert d is not None
    assert d.location == "traceEvents[0]"
    c = json.dumps({"traceEvents": [ev, ev]})
    d2 = diff_traces(a, c)
    assert d2 is not None
    assert d2.location == "traceEvents.length"


# ----------------------------------------------------------------------
# Artifact dispatch
# ----------------------------------------------------------------------
def test_artifact_divergence_dispatches_by_name() -> None:
    a = jl({"event": "x", "t": 1.0, "k": 1}).encode()
    b = jl({"event": "x", "t": 1.0, "k": 2}).encode()
    described = artifact_divergence("events.jsonl", a, b)
    assert described is not None and described.startswith("journal:")
    assert artifact_divergence("events.jsonl", a, a) is None

    ma = json.dumps({"counters": {"c": 1}}).encode()
    mb = json.dumps({"counters": {"c": 2}}).encode()
    described = artifact_divergence("metrics.json", ma, mb)
    assert described is not None and described.startswith("metrics:")

    ta = json.dumps({"traceEvents": []}).encode()
    tb = json.dumps({"traceEvents": [{"ph": "i"}]}).encode()
    described = artifact_divergence("trace.json", ta, tb)
    assert described is not None and described.startswith("trace:")


def test_unknown_artifact_falls_back_to_byte_offset() -> None:
    described = artifact_divergence("blob.bin", b"aaaa", b"aaba")
    assert described is not None
    assert "byte 2" in described
