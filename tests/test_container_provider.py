"""Unit tests for containers, leases and the cloud provider."""

import pytest

from repro.cloud.container import Container, ContainerSpec, PAPER_CONTAINER
from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.provider import CloudProvider


class TestContainerSpec:
    def test_paper_container_values(self):
        assert PAPER_CONTAINER.cpus == 1
        assert PAPER_CONTAINER.disk_mb == pytest.approx(100 * 1024.0)
        assert PAPER_CONTAINER.disk_bw_mb_s == pytest.approx(250.0)
        assert PAPER_CONTAINER.net_bw_mb_s == pytest.approx(125.0)  # 1 Gbps

    def test_transfer_seconds(self):
        assert PAPER_CONTAINER.transfer_seconds(125.0) == pytest.approx(1.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ContainerSpec(cpus=0)
        with pytest.raises(ValueError):
            ContainerSpec(net_bw_mb_s=0)
        with pytest.raises(ValueError):
            PAPER_CONTAINER.transfer_seconds(-1.0)


class TestLease:
    def test_extend_lease(self):
        c = Container(container_id=0, lease_start=0.0)
        added = c.extend_lease_to(61.0, PAPER_PRICING)
        assert added == 2
        assert c.lease_end(PAPER_PRICING) == pytest.approx(120.0)

    def test_extend_is_idempotent_within_quantum(self):
        c = Container(container_id=0, lease_start=0.0)
        c.extend_lease_to(30.0, PAPER_PRICING)
        added = c.extend_lease_to(59.0, PAPER_PRICING)
        assert added == 0
        assert c.leased_quanta == 1

    def test_cannot_lease_into_past(self):
        c = Container(container_id=0, lease_start=100.0)
        with pytest.raises(ValueError):
            c.extend_lease_to(50.0, PAPER_PRICING)

    def test_quantum_boundary(self):
        c = Container(container_id=0, lease_start=0.0)
        assert c.quantum_boundary_after(0.0, PAPER_PRICING) == 0.0
        assert c.quantum_boundary_after(1.0, PAPER_PRICING) == 60.0
        assert c.quantum_boundary_after(60.0, PAPER_PRICING) == 60.0
        assert c.quantum_boundary_after(61.0, PAPER_PRICING) == 120.0

    def test_utilization(self):
        c = Container(container_id=0, lease_start=0.0)
        c.extend_lease_to(60.0, PAPER_PRICING)
        c.busy_seconds = 30.0
        assert c.utilization(PAPER_PRICING) == pytest.approx(0.5)


class TestProvider:
    def test_allocate_release_billing(self):
        provider = CloudProvider(PAPER_PRICING, max_containers=2)
        c = provider.allocate(time=0.0)
        c.extend_lease_to(90.0, PAPER_PRICING)  # 2 quanta
        provider.release(c.container_id)
        assert provider.ledger.compute_quanta == 2
        assert provider.ledger.compute_dollars == pytest.approx(0.2)

    def test_max_containers_enforced(self):
        provider = CloudProvider(PAPER_PRICING, max_containers=1)
        provider.allocate(time=0.0)
        with pytest.raises(RuntimeError):
            provider.allocate(time=0.0)

    def test_total_cost_includes_live_leases_and_storage(self):
        provider = CloudProvider(PAPER_PRICING, max_containers=4)
        c = provider.allocate(time=0.0)
        c.extend_lease_to(60.0, PAPER_PRICING)
        provider.storage.put("x", 100.0, time=0.0)
        total = provider.total_cost(until=600.0)  # 10 quanta of storage
        assert total == pytest.approx(0.1 + 0.1)

    def test_idle_accounting(self):
        provider = CloudProvider(PAPER_PRICING, max_containers=2)
        c = provider.allocate(time=0.0)
        c.extend_lease_to(120.0, PAPER_PRICING)
        c.busy_seconds = 30.0
        provider.release(c.container_id)
        assert provider.ledger.idle_seconds(PAPER_PRICING) == pytest.approx(90.0)
        assert provider.ledger.idle_quanta(PAPER_PRICING) == pytest.approx(1.5)

    def test_release_all(self):
        provider = CloudProvider(PAPER_PRICING, max_containers=3)
        for _ in range(3):
            provider.allocate(time=0.0)
        provider.release_all()
        assert provider.active_containers == []
        assert provider.ledger.containers_released == 3
