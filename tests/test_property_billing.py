"""Property-based tests for billing invariants (pool, storage, schedules)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.storage import CloudStorage
from repro.core.pool import ContainerPool


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=600.0),   # start offset
            st.floats(min_value=1.0, max_value=300.0),   # duration
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_pool_billing_covers_all_work(jobs):
    """Whatever the job sequence, every occupied second is inside a paid
    lease, and the bill never exceeds one quantum per job beyond the
    total work."""
    pool = ContainerPool(PAPER_PRICING, max_containers=64)
    clock = 0.0
    total_work = 0.0
    for offset, duration in sorted(jobs):
        clock = max(clock, offset)
        [container] = pool.acquire(1, time=clock)
        start = max(clock, container.busy_until)
        pool.occupy(container, start=start, until=start + duration)
        total_work += duration
        # The lease covers the occupation.
        assert container.lease_start <= start + 1e-9
        assert container.lease_end >= start + duration - 1e-9
    paid_seconds = pool.stats.quanta_paid * PAPER_PRICING.quantum_seconds
    assert paid_seconds >= total_work - 1e-6
    # At most one extra (partial) quantum per job.
    assert paid_seconds <= total_work + len(jobs) * PAPER_PRICING.quantum_seconds + 1e-6


@given(
    events=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),  # time delta
            st.floats(min_value=0.0, max_value=500.0),   # size MB
            st.booleans(),                               # delete later?
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_storage_bill_matches_manual_integral(events):
    """The storage bill equals a manually computed byte-time integral."""
    storage = CloudStorage(PAPER_PRICING)
    clock = 0.0
    lifetimes = []  # (size, start, end or None)
    for i, (delta, size, will_delete) in enumerate(events):
        clock += delta
        path = f"obj{i}"
        storage.put(path, size, time=clock)
        lifetimes.append([size, clock, None])
        if will_delete:
            clock += 10.0
            storage.delete(path, time=clock)
            lifetimes[-1][2] = clock
    horizon = clock + 100.0
    cost = storage.storage_cost(until=horizon)
    manual = 0.0
    for size, start, end in lifetimes:
        stop = end if end is not None else horizon
        manual += size * (stop - start) / 60.0 * PAPER_PRICING.storage_price_mb_quantum
    assert cost == pytest.approx(manual, rel=1e-6, abs=1e-9)


@given(
    reuse_gap=st.floats(min_value=0.1, max_value=59.0),
    work=st.floats(min_value=1.0, max_value=40.0),
)
@settings(max_examples=40, deadline=None)
def test_property_reuse_within_quantum_is_free(reuse_gap, work):
    """A second job that fits entirely in the first job's final quantum
    adds zero new quanta."""
    pool = ContainerPool(PAPER_PRICING, max_containers=4)
    [c] = pool.acquire(1, time=0.0)
    pool.occupy(c, start=0.0, until=work)
    paid = pool.stats.quanta_paid
    second_start = min(work + reuse_gap, c.lease_end - 1e-6)
    room = c.lease_end - second_start
    if room <= 0.5:
        return  # nothing meaningful fits
    [again] = pool.acquire(1, time=second_start)
    assert again.container_id == c.container_id
    pool.occupy(again, start=second_start, until=second_start + room * 0.5)
    assert pool.stats.quanta_paid == paid
