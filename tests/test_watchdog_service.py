"""Service-level tests for the ROI ledger and regression watchdog.

Covers the three integration contracts:

* ``roi_ledger=True`` is *observe-only*: a ledgered run is
  behaviour-identical (every timestamp, bill and counter) to a
  flags-off run — only the journal/metrics artifacts grow.
* With both flags off no ledger/watchdog event ever appears, so
  default-run artifacts stay byte-identical to pre-ledger builds.
* With ``watchdog_rollback=True`` a workload shift that strands a
  once-useful index gets the index flagged and dropped through the
  ordinary delete path, deterministically.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ExperimentConfig
from repro.core.metrics import ServiceMetrics
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload
from repro.obs import Observation

from tests.test_determinism_repeat import fingerprint


def _config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=5,
    )
    return replace(base, **overrides) if overrides else base


def run_once(
    config: ExperimentConfig, obs: Observation | None = None
) -> tuple[ServiceMetrics, QaaSService]:
    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN, obs=obs)
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(6)]
    return service.run(events), service


def test_roi_ledger_run_is_behaviour_identical_to_disabled() -> None:
    plain, _ = run_once(_config())
    ledgered, _ = run_once(_config(roi_ledger=True), obs=Observation.recording())
    assert fingerprint(plain) == fingerprint(ledgered)


def test_flags_off_run_emits_no_ledger_events() -> None:
    obs = Observation.recording()
    run_once(_config(), obs=obs)
    events = {str(e["event"]) for e in obs.journal.events}
    assert not events & {"index_probe", "index_roi", "index_regression"}
    snapshot = obs.metrics.snapshot()
    ledger_keys = [
        n
        for section in ("counters", "gauges")
        for n in snapshot[section]  # type: ignore[union-attr]
        if n.startswith(("ledger/", "watchdog/"))
    ]
    assert ledger_keys == []


def test_roi_ledger_emits_probe_and_roi_events() -> None:
    obs = Observation.recording()
    metrics, service = run_once(_config(roi_ledger=True), obs=obs)
    probes = [e for e in obs.journal.events if e["event"] == "index_probe"]
    rois = [e for e in obs.journal.events if e["event"] == "index_roi"]
    assert probes, "expected realized-benefit attribution in 30 quanta"
    assert rois, "expected closing ROI statements"
    # The final statements (finish_run) cover every account, sorted.
    final_t = max(float(e["t"]) for e in rois)
    finals = [e for e in rois if e["t"] == final_t]
    names = [str(e["index"]) for e in finals]
    assert names == sorted(names)
    assert service._ledger is not None
    for event in finals:
        name = str(event["index"])
        assert event["net_dollars"] == (
            service._ledger.net_dollars(name, final_t)
        )
    # Probe dollars follow the quantum price: saved_s / 60 * 0.1.
    for event in probes:
        assert abs(
            float(event["saved_dollars"])
            - float(event["saved_seconds"]) / 60.0 * 0.1
        ) < 1e-12
    assert obs.metrics.counter("ledger/probes").value == len(probes)


def test_roi_ledger_is_deterministic_across_runs() -> None:
    obs_a, obs_b = Observation.recording(), Observation.recording()
    run_once(_config(roi_ledger=True), obs=obs_a)
    run_once(_config(roi_ledger=True), obs=obs_b)
    assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()
    assert obs_a.metrics.to_json() == obs_b.metrics.to_json()


# ----------------------------------------------------------------------
# Watchdog rollback under a workload shift
# ----------------------------------------------------------------------
def _shift_events() -> list[ArrivalEvent]:
    """Montage warms indexes up; the tail is ligo-only, so every montage
    index sits on rent with no probes."""
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(4)]
    events += [
        ArrivalEvent(time=1000.0 + i * 300.0, app="ligo") for i in range(12)
    ]
    return events


def _shift_config(**overrides) -> ExperimentConfig:
    return _config(
        total_time_s=90 * 60.0,
        watchdog_window_quanta=5.0,
        watchdog_hysteresis=1,
        **overrides,
    )


def run_shift(config: ExperimentConfig) -> tuple[ServiceMetrics, Observation]:
    obs = Observation.recording()
    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN, obs=obs)
    return service.run(_shift_events()), obs


def test_watchdog_flags_stranded_index_and_rolls_it_back() -> None:
    metrics, obs = run_shift(_shift_config(watchdog_rollback=True))
    regressions = [
        e for e in obs.journal.events if e["event"] == "index_regression"
    ]
    assert regressions, "workload shift should strand at least one index"
    flagged = {str(e["index"]) for e in regressions}
    deletes = [e for e in obs.journal.events if e["event"] == "index_delete"]
    deleted = {str(e["index"]) for e in deletes}
    rolled_back = flagged & deleted
    assert rolled_back, "flagged indexes must be dropped via the delete path"
    # Rollback follows its flag, never precedes it.
    for name in sorted(rolled_back):
        flag_t = min(float(e["t"]) for e in regressions if e["index"] == name)
        del_t = min(float(e["t"]) for e in deletes if e["index"] == name)
        assert del_t >= flag_t
    assert obs.metrics.counter("watchdog/rollbacks").value >= 1


def test_watchdog_observe_only_flags_without_deleting() -> None:
    config = _shift_config(roi_ledger=True)  # watchdog_rollback stays off
    metrics, obs = run_shift(config)
    regressions = [
        e for e in obs.journal.events if e["event"] == "index_regression"
    ]
    assert regressions, "observe-only watchdog still flags"
    assert obs.metrics.counter("watchdog/rollbacks").value == 0
    # And the observe-only run stays behaviour-identical to flags-off.
    plain, _ = run_once_shift_plain()
    assert fingerprint(metrics) == fingerprint(plain)


def run_once_shift_plain() -> tuple[ServiceMetrics, QaaSService]:
    config = _config(total_time_s=90 * 60.0)
    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN)
    return service.run(_shift_events()), service


def test_watchdog_rollback_is_deterministic() -> None:
    _, obs_a = run_shift(_shift_config(watchdog_rollback=True))
    _, obs_b = run_shift(_shift_config(watchdog_rollback=True))
    assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()
    assert obs_a.metrics.to_json() == obs_b.metrics.to_json()
