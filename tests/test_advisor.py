"""Tests for the what-if index advisor."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.data.index_model import IndexKind
from repro.dataflow.client import build_workload
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.tuning.advisor import CATEGORY_SPEEDUPS, IndexAdvisor


@pytest.fixture(scope="module")
def workload():
    return build_workload(PAPER_PRICING, seed=11)


def flow_with_op(table, category, runtime=200.0, size_mb=100.0):
    flow = Dataflow(name="adv")
    flow.add_operator(
        Operator(name="scan", runtime=runtime, category=category,
                 inputs=(DataFile(table, size_mb),))
    )
    return flow


class TestRecommendations:
    def test_recommends_for_scanning_operator(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        recs = advisor.recommend(flow_with_op(table, "range_select"))
        assert recs
        assert all(r.spec.table_name == table for r in recs)
        assert all(r.saved_seconds > 0 for r in recs)

    def test_respects_max_per_table(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        recs = advisor.recommend(flow_with_op(table, "lookup"), max_per_table=1)
        assert len(recs) == 1

    def test_unknown_table_ignored(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        recs = advisor.recommend(flow_with_op("not_in_catalog", "lookup"))
        assert recs == []

    def test_compute_category_gets_nothing(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        recs = advisor.recommend(flow_with_op(table, "compute"))
        assert recs == []

    def test_threshold_filters_tiny_savings(self, workload):
        table = next(iter(workload.catalog.tables))
        flow = flow_with_op(table, "sorting", runtime=0.5)
        strict = IndexAdvisor(workload.catalog, min_saved_seconds=10.0)
        assert strict.recommend(flow) == []

    def test_lookup_can_prefer_hash(self, workload):
        advisor = IndexAdvisor(workload.catalog, prefer_hash_for_lookup=True)
        table = next(iter(workload.catalog.tables))
        recs = advisor.recommend(flow_with_op(table, "lookup"))
        assert all(r.spec.kind is IndexKind.HASH for r in recs)

    def test_range_never_uses_hash(self, workload):
        advisor = IndexAdvisor(workload.catalog, prefer_hash_for_lookup=True)
        table = next(iter(workload.catalog.tables))
        recs = advisor.recommend(flow_with_op(table, "range_select"))
        assert all(r.spec.kind is IndexKind.BTREE for r in recs)

    def test_category_speedups_from_table6(self):
        assert CATEGORY_SPEEDUPS["lookup"] > CATEGORY_SPEEDUPS["range_select"]
        assert CATEGORY_SPEEDUPS["range_select"] > CATEGORY_SPEEDUPS["sorting"]

    def test_ranked_by_saving(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        tables = list(workload.catalog.tables)[:2]
        flow = Dataflow(name="two")
        flow.add_operator(Operator(name="big", runtime=500.0, category="lookup",
                                   inputs=(DataFile(tables[0], 100.0),)))
        flow.add_operator(Operator(name="small", runtime=5.0, category="lookup",
                                   inputs=(DataFile(tables[1], 100.0),)))
        recs = advisor.recommend(flow)
        savings = [r.saved_seconds for r in recs]
        assert savings == sorted(savings, reverse=True)


class TestApply:
    def test_apply_registers_and_wires(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        flow = flow_with_op(table, "range_select")
        recs = advisor.apply(flow)
        assert recs
        for rec in recs:
            assert rec.index_name in flow.candidate_indexes
            assert rec.index_name in workload.catalog.indexes
            op = flow.operators["scan"]
            assert op.index_speedup[rec.index_name] == rec.speedup

    def test_apply_enables_real_speedup(self, workload):
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        flow = flow_with_op(table, "lookup", runtime=300.0)
        recs = advisor.apply(flow)
        op = flow.operators["scan"]
        available = {recs[0].index_name}
        assert op.runtime_with_indexes(available) < op.runtime

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            IndexAdvisor(workload.catalog, min_saved_seconds=-1.0)
        advisor = IndexAdvisor(workload.catalog)
        table = next(iter(workload.catalog.tables))
        with pytest.raises(ValueError):
            advisor.recommend(flow_with_op(table, "lookup"), max_per_table=0)
