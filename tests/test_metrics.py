"""Tests for the service metrics aggregation."""

import pytest

from repro.core.metrics import DataflowOutcome, IndexSnapshot, ServiceMetrics


def outcome(name="d1", finished=100.0, money=5, ops=10, builds=2, killed=1,
            issued=0.0, started=0.0, app="montage"):
    return DataflowOutcome(
        name=name, app=app, issued_at=issued, started_at=started,
        finished_at=finished, money_quanta=money, ops_executed=ops,
        builds_completed=builds, builds_killed=killed,
    )


class TestOutcome:
    def test_makespan_quanta(self):
        o = outcome(started=60.0, finished=180.0)
        assert o.makespan_quanta == pytest.approx(2.0)

    def test_queue_delay(self):
        o = outcome(issued=10.0, started=50.0)
        assert o.queue_delay_s == pytest.approx(40.0)


class TestServiceMetrics:
    def _metrics(self):
        m = ServiceMetrics(strategy="gain", horizon_s=1000.0)
        m.outcomes = [
            outcome("d1", finished=100.0, money=5, ops=10, builds=2, killed=1),
            outcome("d2", finished=900.0, money=3, ops=10, builds=0, killed=0),
            outcome("d3", finished=1500.0, money=7, ops=10, builds=4, killed=2),
        ]
        m.snapshots = [
            IndexSnapshot(time=100.0, indexes_built=1, index_partitions_built=2,
                          storage_mb=10.0, cumulative_storage_dollars=0.5),
            IndexSnapshot(time=1000.0, indexes_built=2, index_partitions_built=5,
                          storage_mb=25.0, cumulative_storage_dollars=2.0),
        ]
        return m

    def test_finished_respects_horizon(self):
        m = self._metrics()
        assert m.num_finished == 2  # d3 finished after the horizon
        assert {o.name for o in m.finished()} == {"d1", "d2"}
        assert len(m.finished(by=150.0)) == 1

    def test_compute_accounting_counts_only_finished(self):
        m = self._metrics()
        assert m.compute_quanta() == 8  # d1 + d2
        assert m.compute_dollars == pytest.approx(0.8)

    def test_storage_from_last_snapshot(self):
        m = self._metrics()
        assert m.storage_dollars() == pytest.approx(2.0)
        assert m.total_dollars() == pytest.approx(2.8)

    def test_cost_per_dataflow_in_quanta(self):
        m = self._metrics()
        assert m.cost_per_dataflow_quanta() == pytest.approx(2.8 / 0.1 / 2)

    def test_table7_counters_cover_all_outcomes(self):
        m = self._metrics()
        # Table 7 counts executed + attempted builds across the whole run.
        assert m.total_ops() == 30 + 6 + 3
        assert m.killed_ops() == 3
        assert m.killed_percentage() == pytest.approx(100 * 3 / 39)

    def test_empty_metrics_safe(self):
        m = ServiceMetrics(strategy="no_index", horizon_s=10.0)
        assert m.num_finished == 0
        assert m.cost_per_dataflow_quanta() == 0.0
        assert m.storage_dollars() == 0.0
        assert m.killed_percentage() == 0.0
        assert m.avg_makespan_quanta() == 0.0

    def test_avg_makespan(self):
        m = ServiceMetrics(strategy="x", horizon_s=1000.0)
        m.outcomes = [
            outcome("a", started=0.0, finished=120.0),
            outcome("b", started=60.0, finished=120.0),
        ]
        assert m.avg_makespan_quanta() == pytest.approx(1.5)
