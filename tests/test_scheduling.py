"""Tests for schedules, the skyline scheduler and the LB baseline."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.scheduling.online_lb import OnlineLoadBalanceScheduler
from repro.scheduling.schedule import (
    Assignment,
    InfeasibleScheduleError,
    Schedule,
)
from repro.scheduling.skyline import SkylineScheduler


def diamond(runtimes=(30.0, 30.0, 30.0, 30.0), data_mb=0.0):
    flow = Dataflow(name="diamond")
    for name, rt in zip("abcd", runtimes):
        flow.add_operator(Operator(name=name, runtime=rt))
    flow.add_edge("a", "b", data_mb=data_mb)
    flow.add_edge("a", "c", data_mb=data_mb)
    flow.add_edge("b", "d", data_mb=data_mb)
    flow.add_edge("c", "d", data_mb=data_mb)
    return flow


class TestScheduleObjectives:
    def _schedule(self, assignments, flow=None):
        return Schedule(
            dataflow=flow or diamond(),
            pricing=PAPER_PRICING,
            assignments=assignments,
        )

    def test_makespan(self):
        s = self._schedule([
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 30.0, 60.0),
            Assignment("c", 1, 30.0, 60.0),
            Assignment("d", 0, 60.0, 90.0),
        ])
        assert s.makespan_seconds() == 90.0
        assert s.makespan_quanta() == pytest.approx(1.5)

    def test_money_counts_leased_quanta_per_container(self):
        s = self._schedule([
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 30.0, 60.0),
            Assignment("c", 1, 30.0, 60.0),
            Assignment("d", 0, 60.0, 90.0),
        ])
        # Container 0: quanta 0,1 -> 2; container 1: quantum 0 -> 1.
        assert s.money_quanta() == 3
        assert s.money_dollars() == pytest.approx(0.3)

    def test_idle_slots_respect_quantum_boundaries(self):
        s = self._schedule([
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 90.0, 120.0),
            Assignment("c", 1, 0.0, 30.0),
            Assignment("d", 0, 120.0, 150.0),
        ])
        slots = s.idle_slots()
        # Container 0 idle 30-90 -> split at 60 into two slots.
        c0 = sorted((x.start, x.end) for x in slots if x.container_id == 0)
        assert (30.0, 60.0) in c0 and (60.0, 90.0) in c0
        merged = s.idle_slots(merge_quanta=True)
        c0m = [(x.start, x.end) for x in merged if x.container_id == 0]
        assert (30.0, 90.0) in c0m

    def test_fragmentation(self):
        s = self._schedule([
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 30.0, 60.0),
            Assignment("c", 1, 0.0, 30.0),
            Assignment("d", 0, 60.0, 90.0),
        ])
        # Container 0: 90s busy of 120s leased -> 30s idle; container 1: 30s idle.
        assert s.fragmentation_quanta() == pytest.approx(1.0)

    def test_build_ops_do_not_extend_lease(self):
        flow = diamond()
        flow.add_operator(Operator(name="bx", runtime=10.0, priority=-1, optional=True))
        s = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 30.0, 60.0),
            Assignment("c", 0, 60.0, 90.0),
            Assignment("d", 0, 90.0, 100.0),
            Assignment("bx", 0, 100.0, 110.0),
        ])
        assert s.makespan_seconds() == 100.0  # build op excluded
        assert s.money_quanta() == 2


class TestValidation:
    def test_detects_overlap(self):
        s = Schedule(dataflow=diamond(), pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 20.0, 50.0),
            Assignment("c", 1, 30.0, 60.0),
            Assignment("d", 1, 60.0, 90.0),
        ])
        with pytest.raises(InfeasibleScheduleError):
            s.validate()

    def test_detects_dependency_violation(self):
        s = Schedule(dataflow=diamond(), pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 1, 10.0, 40.0),  # starts before a ends
            Assignment("c", 2, 30.0, 60.0),
            Assignment("d", 3, 60.0, 90.0),
        ])
        with pytest.raises(InfeasibleScheduleError):
            s.validate()

    def test_detects_missing_operator(self):
        s = Schedule(dataflow=diamond(), pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
        ])
        with pytest.raises(InfeasibleScheduleError):
            s.validate()

    def test_transfer_time_enforced_when_bandwidth_given(self):
        flow = diamond(data_mb=1250.0)  # 10 s transfer at 125 MB/s
        s = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 1, 35.0, 65.0),  # needs >= 40.0 start
            Assignment("c", 0, 30.0, 60.0),
            Assignment("d", 0, 75.0, 105.0),
        ])
        s.validate()  # fine without bandwidth accounting
        with pytest.raises(InfeasibleScheduleError):
            s.validate(net_bw_mb_s=125.0)


class TestSkylineScheduler:
    def test_all_operators_assigned_and_feasible(self):
        flow = diamond()
        for s in SkylineScheduler(PAPER_PRICING).schedule(flow):
            s.validate(net_bw_mb_s=125.0)

    def test_skyline_is_pareto(self):
        flow = diamond(runtimes=(40.0, 80.0, 80.0, 40.0))
        skyline = SkylineScheduler(PAPER_PRICING, max_skyline=8).schedule(flow)
        points = [(s.makespan_seconds(), s.money_quanta()) for s in skyline]
        for i, (t1, m1) in enumerate(points):
            for j, (t2, m2) in enumerate(points):
                if i != j:
                    assert not (t2 <= t1 and m2 < m1) and not (t2 < t1 and m2 <= m1)

    def test_parallel_ops_use_multiple_containers_for_speed(self):
        flow = diamond(runtimes=(10.0, 100.0, 100.0, 10.0))
        skyline = SkylineScheduler(PAPER_PRICING, max_skyline=8).schedule(flow)
        fastest = min(skyline, key=lambda s: s.makespan_seconds())
        assert len(fastest.containers_used()) >= 2
        assert fastest.makespan_seconds() < 220.0

    def test_respects_max_containers(self):
        flow = Dataflow(name="wide")
        for i in range(10):
            flow.add_operator(Operator(name=f"op{i}", runtime=50.0))
        skyline = SkylineScheduler(PAPER_PRICING, max_containers=3).schedule(flow)
        assert all(len(s.containers_used()) <= 3 for s in skyline)

    def test_max_skyline_cap(self):
        flow = diamond()
        skyline = SkylineScheduler(PAPER_PRICING, max_skyline=2).schedule(flow)
        assert 1 <= len(skyline) <= 2

    def test_optional_ops_never_hurt_objectives(self):
        flow = diamond()
        base = SkylineScheduler(PAPER_PRICING).schedule(diamond())
        best_time = min(s.makespan_seconds() for s in base)
        best_money = min(s.money_quanta() for s in base)
        flow.add_operator(Operator(name="bx", runtime=25.0, priority=-1, optional=True))
        withopt = SkylineScheduler(PAPER_PRICING).schedule(flow)
        assert min(s.makespan_seconds() for s in withopt) <= best_time + 1e-6
        assert min(s.money_quanta() for s in withopt) <= best_money

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SkylineScheduler(PAPER_PRICING, max_containers=0)
        with pytest.raises(ValueError):
            SkylineScheduler(PAPER_PRICING, max_skyline=0)


class TestOnlineLoadBalance:
    def test_produces_feasible_schedule(self):
        s = OnlineLoadBalanceScheduler(PAPER_PRICING, num_containers=3).schedule(diamond())
        s.validate(net_bw_mb_s=125.0)

    def test_balances_parallel_work(self):
        flow = Dataflow(name="wide")
        for i in range(6):
            flow.add_operator(Operator(name=f"op{i}", runtime=60.0))
        s = OnlineLoadBalanceScheduler(PAPER_PRICING, num_containers=3).schedule(flow)
        per_container = {}
        for a in s.assignments:
            per_container[a.container_id] = per_container.get(a.container_id, 0) + 1
        assert all(count == 2 for count in per_container.values())

    def test_skips_optional_ops(self):
        flow = diamond()
        flow.add_operator(Operator(name="bx", runtime=5.0, priority=-1, optional=True))
        s = OnlineLoadBalanceScheduler(PAPER_PRICING).schedule(flow)
        assert all(a.op_name != "bx" for a in s.assignments)
