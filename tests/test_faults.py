"""Tests for the fault-injection subsystem: injector, retry, recovery."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.storage import CloudStorage
from repro.core.config import ExperimentConfig
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.faults.injector import (
    FaultInjector,
    FaultKind,
    FaultProfile,
    TransientStorageError,
)
from repro.faults.retry import RetriesExhausted, RetryOverride, RetryPolicy
from repro.interleave.lp import InterleavedSchedule
from repro.interleave.slots import BuildCandidate
from repro.scheduling.schedule import Assignment, Schedule


class TestFaultProfile:
    def test_defaults_inject_nothing(self):
        assert not FaultProfile().any_faults

    def test_any_rate_activates(self):
        assert FaultProfile(operator_failure_rate=0.1).any_faults
        assert FaultProfile(straggler_rate=0.01).any_faults

    @pytest.mark.parametrize("field", [
        "operator_failure_rate",
        "container_crash_rate",
        "storage_put_failure_rate",
        "storage_delete_failure_rate",
        "straggler_rate",
    ])
    def test_rejects_out_of_range_rates(self, field):
        with pytest.raises(ValueError, match=field):
            FaultProfile(**{field: -0.1})
        with pytest.raises(ValueError, match=field):
            FaultProfile(**{field: 1.5})

    def test_rejects_negative_intervals(self):
        with pytest.raises(ValueError):
            FaultProfile(respawn_delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(checkpoint_interval_s=-5.0)
        with pytest.raises(ValueError):
            FaultProfile(straggler_slowdown=0.5)

    def test_one_error_names_every_bad_field(self):
        """Validation aggregates: a profile with five mistakes reports all
        five in a single ValueError, not one per edit-and-retry."""
        with pytest.raises(ValueError) as exc:
            FaultProfile(
                operator_failure_rate=1.5,
                container_crash_rate=-0.1,
                straggler_slowdown=0.5,
                respawn_delay_s=-1.0,
                checkpoint_interval_s=-2.0,
            )
        message = str(exc.value)
        assert message.startswith("invalid FaultProfile: ")
        for name in (
            "operator_failure_rate must be in [0, 1], got 1.5",
            "container_crash_rate must be in [0, 1], got -0.1",
            "straggler_slowdown must be >= 1, got 0.5",
            "respawn_delay_s must be non-negative, got -1.0",
            "checkpoint_interval_s must be non-negative, got -2.0",
        ):
            assert name in message
        assert message.count(";") == 4

    def test_single_bad_field_reported_alone(self):
        with pytest.raises(ValueError) as exc:
            FaultProfile(straggler_rate=2.0)
        assert ";" not in str(exc.value)
        assert "straggler_rate" in str(exc.value)


class TestFaultInjector:
    def test_zero_rates_never_fire_and_never_draw(self):
        rng = np.random.default_rng(1)
        before = rng.bit_generator.state
        injector = FaultInjector(FaultProfile(), rng=rng)
        assert not injector.operator_fails()
        assert not injector.container_crashes()
        assert not injector.storage_put_fails()
        assert not injector.storage_delete_fails()
        assert not injector.straggles()
        assert not injector.build_fails()
        assert rng.bit_generator.state == before
        assert injector.stats.total == 0

    def test_rate_one_always_fires(self):
        injector = FaultInjector(
            FaultProfile(operator_failure_rate=1.0), rng=np.random.default_rng(2)
        )
        assert all(injector.operator_fails() for _ in range(10))
        assert injector.stats.by_kind[FaultKind.OPERATOR_TRANSIENT.value] == 10

    def test_rates_are_approximately_respected(self):
        injector = FaultInjector(
            FaultProfile(operator_failure_rate=0.3), rng=np.random.default_rng(3)
        )
        fired = sum(injector.operator_fails() for _ in range(5000))
        assert 0.25 < fired / 5000 < 0.35

    def test_same_seed_same_draws(self):
        profile = FaultProfile(operator_failure_rate=0.5, container_crash_rate=0.2)
        a = FaultInjector(profile, rng=np.random.default_rng(9))
        b = FaultInjector(profile, rng=np.random.default_rng(9))
        draws_a = [(a.operator_fails(), a.container_crashes()) for _ in range(50)]
        draws_b = [(b.operator_fails(), b.container_crashes()) for _ in range(50)]
        assert draws_a == draws_b

    def test_straggler_factor_within_bounds(self):
        injector = FaultInjector(
            FaultProfile(straggler_rate=1.0, straggler_slowdown=4.0),
            rng=np.random.default_rng(4),
        )
        for _ in range(100):
            assert 1.0 <= injector.straggler_factor() <= 4.0

    def test_checkpointed_floors_to_interval(self):
        injector = FaultInjector(FaultProfile(checkpoint_interval_s=5.0))
        assert injector.checkpointed(13.0) == pytest.approx(10.0)
        assert injector.checkpointed(4.9) == 0.0
        assert injector.checkpointed(5.0) == pytest.approx(5.0)

    def test_checkpointed_disabled_without_interval(self):
        assert FaultInjector(FaultProfile()).checkpointed(100.0) == 0.0


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0,
                             jitter=0.0)
        assert policy.delay_s(0) == pytest.approx(1.0)
        assert policy.delay_s(1) == pytest.approx(2.0)
        assert policy.delay_s(2) == pytest.approx(4.0)
        assert policy.delay_s(3) == pytest.approx(5.0)  # capped
        assert policy.delay_s(10) == pytest.approx(5.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=10.0, multiplier=1.0, jitter=0.2,
                             rng=np.random.default_rng(5))
        for _ in range(100):
            assert 8.0 <= policy.delay_s(0) <= 12.0

    def test_per_kind_overrides(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, jitter=0.0,
            overrides={FaultKind.CONTAINER_CRASH: RetryOverride(
                max_attempts=2, base_delay_s=8.0)},
        )
        assert policy.attempts_for(FaultKind.CONTAINER_CRASH) == 2
        assert policy.attempts_for(FaultKind.OPERATOR_TRANSIENT) == 4
        assert policy.delay_s(0, FaultKind.CONTAINER_CRASH) == pytest.approx(8.0)
        assert policy.delay_s(0, FaultKind.OPERATOR_TRANSIENT) == pytest.approx(1.0)

    def test_worst_case_bounds_actual_backoff(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.1,
                             rng=np.random.default_rng(6))
        total = sum(policy.delay_s(k) for k in range(4))
        assert total <= policy.worst_case_delay_s() + 1e-9

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_one_error_names_every_bad_field(self):
        """All five bad knobs surface in a single aggregated ValueError."""
        with pytest.raises(ValueError) as exc:
            RetryPolicy(max_attempts=0, base_delay_s=-1.0, multiplier=0.5,
                        max_delay_s=-2.0, jitter=1.5)
        message = str(exc.value)
        assert message.startswith("invalid RetryPolicy: ")
        for name in ("max_attempts must be at least 1, got 0",
                     "base_delay_s must be non-negative, got -1.0",
                     "multiplier must be >= 1, got 0.5",
                     "max_delay_s must be non-negative, got -2.0",
                     "jitter must be in [0, 1), got 1.5"):
            assert name in message
        assert message.count(";") == 4


class TestConfigValidation:
    def test_default_config_valid(self):
        ExperimentConfig()  # must not raise

    def test_rejects_runtime_error_above_one(self):
        with pytest.raises(ValueError, match=r"runtime_error must be in \[0, 1\]"):
            ExperimentConfig(runtime_error=1.5)

    def test_rejects_negative_runtime_error(self):
        with pytest.raises(ValueError, match=r"runtime_error must be in \[0, 1\]"):
            ExperimentConfig(runtime_error=-0.1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError, match=r"operator_failure_rate must be in \[0, 1\], got -0.2"):
            ExperimentConfig(operator_failure_rate=-0.2)
        with pytest.raises(ValueError, match=r"container_crash_rate must be in \[0, 1\]"):
            ExperimentConfig(container_crash_rate=2.0)

    def test_rejects_negative_intervals(self):
        with pytest.raises(ValueError, match="update_interval_s must be non-negative, got -60.0"):
            ExperimentConfig(update_interval_s=-60.0)
        with pytest.raises(ValueError, match="checkpoint_interval_s must be non-negative"):
            ExperimentConfig(checkpoint_interval_s=-1.0)
        with pytest.raises(ValueError, match="poisson_mean_s must be non-negative"):
            ExperimentConfig(poisson_mean_s=-5.0)

    def test_rejects_bad_retry_settings(self):
        with pytest.raises(ValueError, match="retry_max_attempts must be at least 1"):
            ExperimentConfig(retry_max_attempts=0)
        with pytest.raises(ValueError, match="retry_multiplier must be >= 1"):
            ExperimentConfig(retry_multiplier=0.9)

    def test_fault_profile_reflects_config(self):
        config = ExperimentConfig(
            operator_failure_rate=0.05, container_crash_rate=0.02,
            checkpoint_interval_s=5.0,
        )
        profile = config.fault_profile()
        assert profile.operator_failure_rate == 0.05
        assert profile.container_crash_rate == 0.02
        assert profile.checkpoint_interval_s == 5.0
        assert profile.any_faults


class TestStorageFaults:
    def test_failed_put_stores_and_bills_nothing(self):
        injector = FaultInjector(
            FaultProfile(storage_put_failure_rate=1.0), rng=np.random.default_rng(0)
        )
        storage = CloudStorage(PAPER_PRICING, injector=injector)
        with pytest.raises(TransientStorageError):
            storage.put("idx/a", 100.0, 60.0)
        assert not storage.exists("idx/a")
        assert storage.live_mb == 0.0
        assert storage.storage_cost(600.0) == 0.0

    def test_failed_delete_keeps_object_billing(self):
        injector = FaultInjector(
            FaultProfile(storage_delete_failure_rate=1.0), rng=np.random.default_rng(0)
        )
        storage = CloudStorage(PAPER_PRICING, injector=injector)
        storage.put("idx/a", 60.0, 0.0)
        with pytest.raises(TransientStorageError):
            storage.delete("idx/a", 60.0)
        assert storage.exists("idx/a")
        cost_60 = storage.storage_cost(60.0)
        assert storage.storage_cost(120.0) > cost_60

    def test_no_injector_is_reliable(self):
        storage = CloudStorage(PAPER_PRICING)
        storage.put("idx/a", 10.0, 0.0)
        storage.delete("idx/a", 60.0)
        assert not storage.exists("idx/a")


def _one_op_flow(runtime=30.0):
    flow = Dataflow(name="d")
    flow.add_operator(Operator(name="a", runtime=runtime))
    return flow


def _schedule(flow, runtime=30.0):
    return Schedule(dataflow=flow, pricing=PAPER_PRICING,
                    assignments=[Assignment("a", 0, 0.0, runtime)])


class TestSimulatorFaults:
    def _sim(self, profile, seed=0, retry=None):
        return ExecutionSimulator(
            PAPER_PRICING,
            rng=np.random.default_rng(seed),
            injector=FaultInjector(profile, rng=np.random.default_rng(seed + 100)),
            retry=retry or RetryPolicy(rng=np.random.default_rng(seed + 200)),
        )

    def test_transient_failures_extend_makespan(self):
        flow = _one_op_flow()
        inter = InterleavedSchedule(schedule=_schedule(flow))
        clean = ExecutionSimulator(PAPER_PRICING).execute(inter, 0.0)
        sim = self._sim(FaultProfile(operator_failure_rate=0.9), seed=3)
        faulty = sim.execute(inter, 0.0)
        assert faulty.operator_retries > 0
        assert faulty.makespan_seconds > clean.makespan_seconds
        assert faulty.finish_time > 0

    def test_all_operators_complete_despite_faults(self):
        flow = Dataflow(name="chain")
        prev = None
        for i in range(20):
            flow.add_operator(Operator(name=f"op{i}", runtime=10.0))
            if prev is not None:
                flow.add_edge(prev, f"op{i}")
            prev = f"op{i}"
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment(f"op{i}", 0, i * 10.0, (i + 1) * 10.0) for i in range(20)
        ])
        sim = self._sim(FaultProfile(operator_failure_rate=0.2), seed=5)
        result = sim.execute(InterleavedSchedule(schedule=sched), 0.0)
        assert result.dataflow_ops == 20
        assert result.makespan_seconds >= 200.0

    def test_retries_bounded_by_policy(self):
        policy = RetryPolicy(max_attempts=3, rng=np.random.default_rng(0))
        sim = self._sim(FaultProfile(operator_failure_rate=1.0), seed=7, retry=policy)
        result = sim.execute(
            InterleavedSchedule(schedule=_schedule(_one_op_flow())), 0.0
        )
        # Rate 1.0 exhausts the budget; the op then completes cleanly on
        # a respawned container.
        assert result.operator_retries == 3
        assert result.retries_exhausted == 1
        assert result.makespan_seconds > 30.0

    def test_crashes_bill_forfeited_quanta(self):
        flow = _one_op_flow()
        inter = InterleavedSchedule(schedule=_schedule(flow))
        clean = ExecutionSimulator(PAPER_PRICING).execute(inter, 0.0)
        sim = self._sim(FaultProfile(container_crash_rate=1.0), seed=11)
        crashed = sim.execute(inter, 0.0)
        assert crashed.containers_crashed > 0
        assert crashed.money_quanta > clean.money_quanta

    def test_stragglers_slow_but_never_fail(self):
        sim = self._sim(FaultProfile(straggler_rate=1.0, straggler_slowdown=2.0), seed=13)
        result = sim.execute(
            InterleavedSchedule(schedule=_schedule(_one_op_flow())), 0.0
        )
        assert result.stragglers == 1
        assert result.operator_retries == 0
        assert 30.0 <= result.makespan_seconds <= 60.0

    def test_failed_build_not_retried_inline(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=30.0))
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING,
                         assignments=[Assignment("a", 0, 0.0, 30.0)])
        cand = BuildCandidate("t__x", 0, 20.0, 1.0)
        inter = InterleavedSchedule(
            schedule=sched,
            build_assignments=[Assignment(cand.op_name, 0, 30.0, 50.0)],
            scheduled_builds=[cand],
        )
        sim = self._sim(FaultProfile(operator_failure_rate=1.0), seed=17)
        result = sim.execute(inter, 0.0)
        assert result.builds_completed == []
        assert result.builds_failed == 1

    def test_preempted_build_records_checkpoint(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=30.0))
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING,
                         assignments=[Assignment("a", 0, 0.0, 30.0)])
        # 45 s of work in a 30 s gap: cut at the quantum boundary after
        # 30 s of progress; with a 10 s interval, 30 s are durable.
        cand = BuildCandidate("t__x", 0, 45.0, 1.0)
        inter = InterleavedSchedule(
            schedule=sched,
            build_assignments=[Assignment(cand.op_name, 0, 30.0, 75.0)],
            scheduled_builds=[cand],
        )
        sim = self._sim(FaultProfile(checkpoint_interval_s=10.0), seed=19)
        result = sim.execute(inter, 0.0)
        assert result.builds_killed == 1
        assert len(result.checkpoints) == 1
        ckpt = result.checkpoints[0]
        assert (ckpt.index_name, ckpt.partition_id) == ("t__x", 0)
        assert ckpt.seconds == pytest.approx(30.0)

    def test_no_checkpoint_without_interval(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=30.0))
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING,
                         assignments=[Assignment("a", 0, 0.0, 30.0)])
        cand = BuildCandidate("t__x", 0, 45.0, 1.0)
        inter = InterleavedSchedule(
            schedule=sched,
            build_assignments=[Assignment(cand.op_name, 0, 30.0, 75.0)],
            scheduled_builds=[cand],
        )
        result = ExecutionSimulator(PAPER_PRICING).execute(inter, 0.0)
        assert result.builds_killed == 1
        assert result.checkpoints == []


class TestZeroRateDeterminism:
    """A zero-rate injector must leave the simulator untouched."""

    def test_execute_identical_with_and_without_injector(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=30.0))
        flow.add_operator(Operator(name="b", runtime=45.0))
        flow.add_edge("a", "b")
        sched = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0), Assignment("b", 0, 30.0, 75.0),
        ])
        cand = BuildCandidate("t__x", 0, 20.0, 1.0)
        inter = InterleavedSchedule(
            schedule=sched,
            build_assignments=[Assignment(cand.op_name, 0, 75.0, 95.0)],
            scheduled_builds=[cand],
        )
        plain = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.2, rng=np.random.default_rng(42)
        ).execute(inter, 0.0)
        with_injector = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.2, rng=np.random.default_rng(42),
            injector=FaultInjector(FaultProfile(), rng=np.random.default_rng(1)),
            retry=RetryPolicy(rng=np.random.default_rng(2)),
        ).execute(inter, 0.0)
        assert plain.finish_time == with_injector.finish_time
        assert plain.money_quanta == with_injector.money_quanta
        assert len(plain.builds_completed) == len(with_injector.builds_completed)
        for a, b in zip(plain.builds_completed, with_injector.builds_completed):
            assert a == b


class TestRetriesExhausted:
    def _policy(self, attempts=3):
        return RetryPolicy(
            max_attempts=attempts, base_delay_s=1.0,
            rng=np.random.default_rng(0),
        )

    def test_execute_returns_on_success(self):
        calls = []
        result = self._policy().execute(lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1

    def test_execute_retries_transient_errors(self):
        attempts = []

        def op():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientStorageError("put", "a/b")
            return 42

        assert self._policy().execute(op) == 42
        assert len(attempts) == 3

    def test_exhaustion_raises_typed_error_with_attribution(self):
        def op():
            raise TransientStorageError("delete", "a/b", owner="t2")

        with pytest.raises(RetriesExhausted) as err:
            self._policy(attempts=2).execute(
                op, operation="storage_delete:a/b",
                tenant="t2", dataflow="montage-17",
            )
        exc = err.value
        assert exc.operation == "storage_delete:a/b"
        assert exc.attempts == 2
        assert exc.tenant == "t2"
        assert exc.dataflow == "montage-17"
        assert isinstance(exc.last_error, TransientStorageError)
        assert exc.last_error.owner == "t2"
        assert "tenant=t2" in str(exc)
        assert "dataflow=montage-17" in str(exc)

    def test_attribution_optional(self):
        def op():
            raise TransientStorageError("put", "x")

        with pytest.raises(RetriesExhausted) as err:
            self._policy(attempts=1).execute(op)
        assert err.value.tenant is None
        assert "tenant=" not in str(err.value)

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = []

        def op():
            calls.append(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            self._policy().execute(op)
        assert len(calls) == 1

    def test_owner_tagged_storage_error_message(self):
        err = TransientStorageError("delete", "a/b", owner="t5")
        assert err.owner == "t5"
        assert "owner=t5" in str(err)
        bare = TransientStorageError("put", "a/b")
        assert bare.owner is None
        assert "owner" not in str(bare)
