"""Deterministic regeneration of the checked-in golden artifacts.

``python -m tests.golden`` (or ``make regen-golden``) rebuilds every
file in this directory from first principles — the same seeded runs CI
replays — so a legitimate behavior change updates the goldens in one
command instead of hand-editing byte blobs. A meta-test asserts the
regeneration is a no-op on a clean tree, which keeps the recipe itself
from drifting away from what the goldens actually contain.
"""

from __future__ import annotations

import contextlib
import io
import tempfile
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

# The seeded CLI run CI's obs-analyze job replays (ci.yml): any change
# here must change .github/workflows/ci.yml in the same commit.
ROI_RUN_ARGS = [
    "run", "--strategy", "gain", "--horizon-quanta", "20", "--seed", "7",
    "--roi-ledger",
]


def _regen_roi_table() -> str:
    from repro.cli import main as cli_main

    with tempfile.TemporaryDirectory() as tmp:
        events = str(Path(tmp) / "events.jsonl")
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            rc = cli_main([*ROI_RUN_ARGS, "--events-out", events])
        assert rc == 0, f"seeded run failed: rc={rc}"
        table = io.StringIO()
        with contextlib.redirect_stdout(table):
            rc = cli_main(["obs", "roi", "--events", events])
        assert rc == 0, f"obs roi failed: rc={rc}"
    return table.getvalue()


def _regen_two_container_trace() -> str:
    from repro.obs import Observation, trace_json
    from tests.test_obs import _two_container_run

    obs = Observation.recording()
    _two_container_run(obs)
    return trace_json(obs.tracer)


def regenerate() -> dict[str, str]:
    """Golden file name -> freshly derived content (nothing written)."""
    return {
        "roi_table.txt": _regen_roi_table(),
        "two_container_trace.json": _regen_two_container_trace(),
    }


def write_goldens(dest: Path | None = None) -> list[Path]:
    dest = dest or GOLDEN_DIR
    written = []
    for name, content in regenerate().items():
        path = dest / name
        path.write_text(content)
        written.append(path)
    return written
