"""``python -m tests.golden``: rewrite the golden artifacts in place."""

from __future__ import annotations

from tests.golden import write_goldens

for path in write_goldens():
    print(f"regenerated {path}")
