"""Crash/resume equivalence tests for the recovery manager.

The contract under test: kill a recovery-enabled run at any named crash
point, resume it, and the final metrics and observability artifacts are
byte-identical to the uninterrupted run of the same seed.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import replace

import pytest

from repro import Strategy, resume_run, run_experiment
from repro.core.config import default_config
from repro.obs import Observation, trace_json
from repro.recovery import (
    CRASH_POINTS,
    CrashPlan,
    RecoveryError,
    RecoveryManager,
    SimulatedCrash,
    install_crash_plan,
    scan_wal,
)
from repro.recovery.chaos import _metrics_fingerprint
from repro.recovery.wal import frame_record

SEED = 7
HORIZON_S = 4 * 60.0


@pytest.fixture(autouse=True)
def _no_crash_plan():
    previous = install_crash_plan(None)
    yield
    install_crash_plan(previous)


def small_config(seed: int = SEED):
    return replace(default_config(), seed=seed, total_time_s=HORIZON_S)


def artifacts_of(obs) -> tuple[str, str, str]:
    return (obs.journal.to_jsonl(), obs.metrics.to_json(), trace_json(obs.tracer))


def run_with_recovery(directory, config, snapshot_every: int = 2):
    manager = RecoveryManager.start(
        directory,
        config,
        strategy="gain",
        generator="phase",
        interleaver="lp",
        obs_enabled=True,
        snapshot_every=snapshot_every,
    )
    obs = Observation.recording()
    metrics = run_experiment(Strategy.GAIN, config=config, obs=obs, recovery=manager)
    return metrics, obs, manager


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted recovery-enabled run: the byte-equality oracle."""
    directory = tmp_path_factory.mktemp("reference")
    metrics, obs, _ = run_with_recovery(directory, small_config())
    return _metrics_fingerprint(metrics), artifacts_of(obs)


def test_recovery_enabled_run_matches_plain_run(tmp_path, reference):
    """Journalling is observation-only: metrics equal the recovery-off run."""
    plain = run_experiment(Strategy.GAIN, config=small_config())
    assert _metrics_fingerprint(plain) == reference[0]


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_at_every_named_point_resumes_identically(tmp_path, reference, point):
    install_crash_plan(CrashPlan(point=point, hit=2, hard=False))
    try:
        metrics, obs, manager = run_with_recovery(tmp_path, small_config())
    except SimulatedCrash:
        install_crash_plan(None)
        resumed_metrics, resumed_service = resume_run(str(tmp_path))
        assert _metrics_fingerprint(resumed_metrics) == reference[0]
        assert artifacts_of(resumed_service.obs) == reference[1]
    else:
        # This barrier never fired twice in this workload; the untouched
        # run must still match the oracle.
        install_crash_plan(None)
        assert _metrics_fingerprint(metrics) == reference[0]
        assert artifacts_of(obs) == reference[1]


def _crash_then(tmp_path, plan: CrashPlan):
    install_crash_plan(plan)
    with pytest.raises(SimulatedCrash):
        run_with_recovery(tmp_path, small_config())
    install_crash_plan(None)


def test_cold_resume_without_snapshots(tmp_path, reference):
    _crash_then(tmp_path, CrashPlan(point="service.step", hit=3, hard=False))
    for snap in tmp_path.glob("snapshot-*.ckpt"):
        snap.unlink()
    metrics, service = resume_run(str(tmp_path))
    assert _metrics_fingerprint(metrics) == reference[0]
    assert artifacts_of(service.obs) == reference[1]
    sidecar = json.loads((tmp_path / "recovery-state.json").read_text())
    assert sidecar["cold_resumes"] == 1
    assert sidecar["finished"] is True


def test_double_crash_double_resume(tmp_path, reference):
    _crash_then(tmp_path, CrashPlan(point="service.step", hit=2, hard=False))
    install_crash_plan(CrashPlan(point="service.step", hit=4, hard=False))
    with pytest.raises(SimulatedCrash):
        resume_run(str(tmp_path))
    install_crash_plan(None)
    metrics, service = resume_run(str(tmp_path))
    assert _metrics_fingerprint(metrics) == reference[0]
    assert artifacts_of(service.obs) == reference[1]
    sidecar = json.loads((tmp_path / "recovery-state.json").read_text())
    assert sidecar["replays"] == 2


def test_sidecar_counts_resume_work(tmp_path):
    # hit 3: one iteration past the snapshot_every=2 boundary, so the
    # restored snapshot has a non-empty record suffix to verify.
    _crash_then(tmp_path, CrashPlan(point="service.post_commit", hit=3, hard=False))
    resume_run(str(tmp_path))
    sidecar = json.loads((tmp_path / "recovery-state.json").read_text())
    assert sidecar["replays"] == 1
    assert sidecar["snapshots_restored"] == 1
    assert sidecar["records_verified"] > 0
    assert sidecar["finished"] is True


def test_obs_artifacts_carry_recovery_metrics(tmp_path):
    _, obs, _ = run_with_recovery(tmp_path, small_config())
    snapshot = json.loads(obs.metrics.to_json())
    flat = json.dumps(snapshot)
    assert "recovery/wal_records" in flat
    assert "recovery/snapshots_written" in flat
    assert any(
        json.loads(line)["event"] == "recovery_snapshot"
        for line in obs.journal.to_jsonl().splitlines()
    )


def test_start_refuses_existing_wal(tmp_path):
    run_with_recovery(tmp_path, small_config())
    with pytest.raises(RecoveryError, match="resume it instead"):
        RecoveryManager.start(
            tmp_path,
            small_config(),
            strategy="gain",
            generator="phase",
            interleaver="lp",
            obs_enabled=False,
        )


def test_resume_refuses_finished_run(tmp_path):
    run_with_recovery(tmp_path, small_config())
    with pytest.raises(RecoveryError, match="already finished"):
        resume_run(str(tmp_path))


def test_replay_divergence_raises_recovery_error(tmp_path):
    # Only the base snapshot exists (huge snapshot_every), so the whole
    # log is replayed — any tampered record must be caught.
    install_crash_plan(CrashPlan(point="service.step", hit=3, hard=False))
    with pytest.raises(SimulatedCrash):
        run_with_recovery(tmp_path, small_config(), snapshot_every=10_000)
    install_crash_plan(None)
    wal_path = tmp_path / "wal.jsonl"
    records = scan_wal(wal_path).records
    assert len(records) > 3
    # Rewrite record 3 with a corrupted-but-validly-framed body: the CRC
    # matches, so only replay verification can notice. Flip one digit.
    body = records[3].body
    tampered = body
    for i, ch in enumerate(body):
        if ch.isdigit():
            tampered = body[:i] + ("1" if ch != "1" else "2") + body[i + 1:]
            break
    assert tampered != body
    frames = [frame_record(r.body) for r in records]
    frames[3] = frame_record(tampered)
    wal_path.write_bytes(b"".join(frames))
    with pytest.raises(RecoveryError, match="diverged"):
        resume_run(str(tmp_path))


def test_snapshot_skipped_when_log_shorter_than_snapshot(tmp_path, reference):
    """A snapshot whose wal_position exceeds the (truncated) log is
    unusable; resume falls back to an older one."""
    _crash_then(tmp_path, CrashPlan(point="service.pre_finish", hard=False))
    # Truncate the log back to just past the base snapshot: every later
    # snapshot claims records the log no longer holds.
    records = scan_wal(tmp_path / "wal.jsonl").records
    keep = records[:3]
    (tmp_path / "wal.jsonl").write_bytes(
        b"".join(frame_record(r.body) for r in keep)
    )
    metrics, service = resume_run(str(tmp_path))
    assert _metrics_fingerprint(metrics) == reference[0]
    assert artifacts_of(service.obs) == reference[1]
