"""Packaging hygiene: public API surface and runnable examples."""

import ast
import importlib
import pathlib

import pytest

PACKAGES = [
    "repro",
    "repro.cloud",
    "repro.data",
    "repro.engine",
    "repro.dataflow",
    "repro.scheduling",
    "repro.interleave",
    "repro.tuning",
    "repro.core",
]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    """Every name in ``__all__`` is actually importable."""
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_every_public_module_has_docstring():
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path} lacks a module docstring"


def test_public_functions_have_docstrings():
    """Public defs/classes in the library carry doc comments."""
    missing = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    missing.append(f"{path.name}:{node.name}")
    assert not missing, f"undocumented public items: {missing}"


@pytest.mark.parametrize(
    "example",
    sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
)
def test_examples_compile(example):
    """Every example parses and compiles (running them is the docs' job)."""
    source = (REPO_ROOT / "examples" / example).read_text()
    compile(source, example, "exec")
    tree = ast.parse(source)
    assert ast.get_docstring(tree), f"{example} lacks a docstring"
    assert '__main__' in source, f"{example} is not runnable as a script"


def test_version_declared():
    import repro

    assert repro.__version__
