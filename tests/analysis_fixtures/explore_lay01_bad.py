# lint-module: repro.explore.hooks.fixture_points
# expect: LAY01,LAY01
"""Known-bad fixture: the explore hooks leaf importing upward.

``repro.explore.hooks`` is on the LAY01 ``ALLOWED_LEAVES`` list
precisely because it imports nothing above it (pure stdlib); an import
of ``core`` or ``tuning`` from inside the leaf would close the cycle
the carve-out promises away.
"""

import repro.core.service
from repro.tuning.gain import IndexGain
