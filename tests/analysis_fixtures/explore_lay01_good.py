# lint-module: repro.explore.fixture_engine
# expect:
"""Known-good fixture: exploration machinery importing downward.

``repro.explore`` (minus its hooks leaf) sits at the top of the DAG
next to ``repro.recovery``: importing the service, the invariant
monitors and its own hooks leaf is exactly its job.
"""

from repro.core.service import QaaSService
from repro.explore.hooks import Action, Epoch
from repro.recovery.invariants import InvariantMonitor
