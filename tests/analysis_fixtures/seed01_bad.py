# expect: DET01,SEED01,SEED01
"""Known-bad fixture: rng/seed parameters ignored in favour of fresh RNGs."""

import numpy as np


def perturb(values, rng):
    fresh = np.random.default_rng()
    return [v + fresh.uniform() for v in values]


def sample_runtimes(n, seed):
    rng = np.random.default_rng(1234)
    return rng.uniform(size=n)
