# expect: SIM01,SIM01,SIM01
"""Known-bad fixture: a non-frozen dataclass in hashed positions."""

from dataclasses import dataclass


@dataclass
class PartitionKey:
    index_name: str
    partition: int


def dedupe(pairs):
    seen: set[PartitionKey] = set()
    seen.add(PartitionKey("idx", 3))
    return {PartitionKey("idx", 1): "first"}
