# expect:
"""Known-good fixture: the same usage with frozen=True is fine."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionKey:
    index_name: str
    partition: int


def dedupe(pairs):
    seen: set[PartitionKey] = set()
    seen.add(PartitionKey("idx", 3))
    return {PartitionKey("idx", 1): "first"}
