# expect: DET01,DET01,DET01,DET01,DET01
"""Known-bad fixture: every flavour of nondeterminism DET01 rejects."""

import random
import time

import numpy as np
from datetime import datetime


def simulate_arrivals(n):
    jitter = [random.random() for _ in range(n)]
    stamp = time.time()
    started = datetime.now()
    rng = np.random.default_rng()
    noise = np.random.normal(0.0, 1.0)
    return jitter, stamp, started, rng, noise
