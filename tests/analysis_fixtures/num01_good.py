# expect:
"""Known-good fixture: billing comparisons via repro.core.numeric."""

from repro.core.numeric import is_zero, le_tol, money_eq


def within_budget(total_cost, budget):
    if money_eq(total_cost, budget):
        return True
    return not is_zero(total_cost) and le_tol(total_cost, budget)
