# lint-module: repro.obs.fixture_ok
# expect:
"""Known-good fixture: obs sticks to the stdlib and its own package."""

import json
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Snapshot:
    payload: str


def render(registry: MetricsRegistry) -> Snapshot:
    return Snapshot(payload=json.dumps(registry.snapshot(), sort_keys=True))
