# lint-module: repro.perf.fixture_kernels_bad
# expect: LAY01,LAY01
"""Known-bad fixture: the perf leaf importing other leaves.

The leaf-ban pass bypasses the ``ALLOWED_LEAVES`` exemption: even
``repro.core.numeric`` and ``repro.obs`` — themselves importable from
everywhere — are banned inside ``repro.perf``, or the carve-out could
smuggle a leaf-to-leaf cycle back in. The practical consequence is the
duplicated ``TIME_EPS`` in ``repro.perf.vectorized``, pinned equal to
the canonical constant by ``tests/differential/test_simulator_oracle.py``.
"""

from repro.core.numeric import TIME_EPS
from repro.obs import NOOP_OBS

__all__ = ["TIME_EPS", "NOOP_OBS"]
