# lint-module: repro.perf.fixture_kernels
# expect:
"""Known-good fixture: a perf leaf holding only numpy/stdlib kernels.

``repro.perf`` is in ``ALLOWED_LEAVES`` so every hot-path layer may
import its kernels; in exchange the leaf itself may depend on nothing
above it — numpy and the stdlib are its whole world. This is why
``repro.perf.vectorized`` carries its own ``TIME_EPS`` copy instead of
importing ``repro.core.numeric`` (a pin test keeps the copies equal).
"""

import math

import numpy as np

TIME_EPS = 1e-9


def floor_quanta(values: np.ndarray, quantum: float) -> np.ndarray:
    return np.floor(values / quantum + TIME_EPS)


def scalar_floor(value: float, quantum: float) -> float:
    return math.floor(value / quantum + TIME_EPS)
