# expect:
"""Known-good fixture: explicit, seeded randomness; no wall clock."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def draw(rng, n):
    return rng.uniform(0.0, 1.0, size=n)
