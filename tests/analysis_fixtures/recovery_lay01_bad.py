# lint-module: repro.recovery.hooks.fixture_barrier
# expect: LAY01
"""Known-bad fixture: the recovery hooks leaf importing the core layer.

``repro.recovery.hooks`` is on the LAY01 ``ALLOWED_LEAVES`` list so that
storage/tuner/simulator may call ``crash_point``; that carve-out is only
sound while hooks itself imports nothing above it.
"""

import repro.core.service
