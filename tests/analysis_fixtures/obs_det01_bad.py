# lint-module: repro.obs.fixture_tracer
# expect: DET01
"""Known-bad fixture: an obs module timestamping with the wall clock.

The tracer must stamp spans with *simulated* seconds passed in by the
instrumented caller — a ``time.time()`` here would make two same-seed
trace files differ byte-for-byte.
"""

import time


def span_stamp() -> float:
    return time.time()
