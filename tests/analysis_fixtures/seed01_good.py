# expect:
"""Known-good fixture: rng threaded, seed actually used, seeded fallback."""

import numpy as np


def perturb(values, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return [v + rng.uniform() for v in values]


def sample_runtimes(n, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=n)
