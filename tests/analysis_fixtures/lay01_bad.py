# lint-module: repro.data.fixture_loader
# expect: LAY01,LAY01
"""Known-bad fixture: a data-layer module importing upward."""

import repro.core.service
from repro.tuning.gain import IndexGain
