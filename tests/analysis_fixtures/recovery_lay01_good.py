# lint-module: repro.recovery.fixture_resume_driver
# expect:
"""Known-good fixture: recovery importing downward (core config + hooks)."""

from repro.core.config import ExperimentConfig
from repro.recovery.hooks import crash_point
