# lint-module: repro.data.fixture_loader_ok
# expect:
"""Known-good fixture: sideways/downward imports plus the numeric leaf."""

import math

from repro.core.numeric import money_eq
from repro.data.tpch import generate_lineitem_rows
