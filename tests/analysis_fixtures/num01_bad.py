# expect: NUM01,NUM01
"""Known-bad fixture: exact float equality on billing quantities."""


def within_budget(total_cost, budget):
    if total_cost == budget:
        return True
    return total_cost != 0.0
