# lint-module: repro.obs.fixture_exporter
# expect: LAY01,LAY01
"""Known-bad fixture: the obs leaf importing instrumented layers.

``repro.obs`` is on the LAY01 ``ALLOWED_LEAVES`` list precisely because
it imports nothing above it; an import of ``tuning`` or ``core`` from
inside obs would close the cycle the carve-out promises away.
"""

import repro.core.service
from repro.tuning.gain import IndexGain
