# expect: DET01,DET01,LINT00,LINT00
"""Known-bad fixture: malformed suppressions do not silence anything.

The first lacks the mandatory justification; the second names a rule
code that does not exist. Both are reported as LINT00 and the DET01
they tried to hide is reported anyway.
"""

import time


def bench(fn):
    start = time.perf_counter()  # repro-lint: disable=DET01
    fn()
    return time.perf_counter() - start  # repro-lint: disable=NOPE99 -- not a real rule code
