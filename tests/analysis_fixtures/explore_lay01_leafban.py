# lint-module: repro.obs.fixture_yieldpoints
# expect: LAY01,LAY01
"""Known-bad fixture: a pure leaf acquiring yield points.

Yield points mark micro-step boundaries inside *instrumented*
upper-layer code; a leaf like ``repro.obs`` that imported them (or any
other leaf) would re-enter the scheduler from below the layers it
synchronises. The leaf-ban pass bypasses the ``ALLOWED_LEAVES``
exemption, so even the hooks leaf — importable from every instrumented
layer — is banned here.
"""

from repro.explore.hooks import note
from repro.recovery.hooks import crash_point
