# expect:
"""Known-good fixture: justified suppressions silence the rule."""

import time


def bench(fn):
    start = time.perf_counter()  # repro-lint: disable=DET01 -- fixture: real wall-clock microbenchmark
    fn()
    return time.perf_counter() - start  # repro-lint: disable=DET01 -- fixture: same microbenchmark clock
