# lint-module: repro.core.fixture_estimates
# expect: TYP01,TYP01
"""Known-bad fixture: incomplete public signatures in a strict package."""


def estimate_cost(rows, selectivity: float):
    return rows * selectivity


class Estimator:
    def update(self, observation):
        return observation
