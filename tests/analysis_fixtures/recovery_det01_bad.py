# lint-module: repro.recovery.fixture_wal_stamper
# expect: DET01,DET01
"""Known-bad fixture: wall-clock timestamps leaking into WAL records.

A WAL record stamped with the host clock can never replay byte-identically,
so DET01 must reject wall-clock reads in the recovery package exactly as it
does in the simulator core.
"""

import time
from datetime import datetime


def frame_record(payload):
    payload["wall_time"] = time.time()
    payload["written_at"] = datetime.now().isoformat()
    return payload
