# lint-module: repro.cloud.fixture_storage_recovery
# expect: LAY01
"""Known-bad fixture: a substrate layer importing the recovery machinery.

The hooks leaf is fine from anywhere (that is how storage gets its crash
points), but the heavyweight WAL/snapshot/resume machinery sits at the
top of the DAG — ``repro.cloud`` importing it is an upward edge.
"""

from repro.recovery.hooks import crash_point
from repro.recovery.manager import RecoveryManager
