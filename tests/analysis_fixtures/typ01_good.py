# lint-module: repro.core.fixture_estimates_ok
# expect:
"""Known-good fixture: public API annotated; private helpers exempt."""


def estimate_cost(rows: int, selectivity: float) -> float:
    return _scale(rows * selectivity)


def _scale(x, factor=2.0):
    return x * factor


class Estimator:
    def update(self, observation: float) -> float:
        return observation
