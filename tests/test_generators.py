"""Tests for the workflow generators and workload clients (Table 4)."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.client import (
    PAPER_PHASES,
    TOTAL_TIME_S,
    build_workload,
    phase_schedule,
    poisson_arrivals,
    random_schedule,
)
from repro.dataflow.generators import cybershake, ligo, montage

#: Table 4 statistics: app -> (min, max, mean) runtime seconds.
TABLE4_RUNTIME = {
    "montage": (3.82, 49.32, 11.32),
    "ligo": (4.03, 689.39, 222.33),
    "cybershake": (0.55, 199.43, 22.97),
}

#: Table 4 statistics: app -> (count, min MB, max MB, mean MB).
TABLE4_INPUTS = {
    "montage": (20, 0.01, 4.02, 3.22),
    "ligo": (53, 0.86, 14.91, 14.24),
    "cybershake": (52, 1.81, 19169.75, 1459.08),
}


@pytest.fixture(scope="module")
def workload():
    return build_workload(PAPER_PRICING, seed=42)


class TestCatalog:
    def test_125_files(self, workload):
        assert len(workload.catalog.tables) == 125

    def test_total_size_near_paper(self, workload):
        assert workload.catalog.total_size_gb() == pytest.approx(76.69, rel=0.10)

    def test_partition_count_near_713(self, workload):
        assert 600 <= workload.catalog.num_partitions <= 800

    def test_four_potential_indexes_per_file(self, workload):
        assert len(workload.catalog.indexes) == 4 * 125

    def test_deterministic(self):
        a = build_workload(PAPER_PRICING, seed=7)
        b = build_workload(PAPER_PRICING, seed=7)
        assert [t.num_records for t in a.catalog.tables.values()] == [
            t.num_records for t in b.catalog.tables.values()
        ]


@pytest.mark.parametrize("app", ["montage", "ligo", "cybershake"])
class TestDataflowShape:
    def test_100_operators(self, workload, app):
        flow = workload.next_dataflow(app, issued_at=0.0)
        assert len(flow) == 100
        flow.validate()

    def test_runtime_stats_match_table4(self, workload, app):
        low, high, mean = TABLE4_RUNTIME[app]
        runtimes = []
        for _ in range(5):
            flow = workload.next_dataflow(app, issued_at=0.0)
            runtimes.extend(op.runtime for op in flow.operators.values())
        assert min(runtimes) >= low * 0.8
        assert max(runtimes) <= high * 1.05
        assert np.mean(runtimes) == pytest.approx(mean, rel=0.25)

    def test_input_file_stats_match_table4(self, workload, app):
        count, low, high, mean = TABLE4_INPUTS[app]
        flow = workload.next_dataflow(app, issued_at=0.0)
        sizes = [f.size_mb for op in flow.operators.values() for f in op.inputs]
        assert len(sizes) == count
        assert min(sizes) >= low * 0.5
        assert max(sizes) <= high * 1.01
        assert np.mean(sizes) == pytest.approx(mean, rel=0.25)

    def test_candidate_indexes_carry_table6_speedups(self, workload, app):
        from repro.data.catalog import TABLE6_SPEEDUPS

        flow = workload.next_dataflow(app, issued_at=0.0)
        assert flow.candidate_indexes
        speedups = {
            s for op in flow.operators.values() for s in op.index_speedup.values()
        }
        assert speedups <= set(TABLE6_SPEEDUPS.values())

    def test_has_entry_and_exit(self, workload, app):
        flow = workload.next_dataflow(app, issued_at=0.0)
        assert flow.entry_operators()
        assert flow.exit_operators()


class TestGeneratorInputModels:
    @pytest.mark.parametrize(
        "module, key",
        [(montage, "montage"), (ligo, "ligo"), (cybershake, "cybershake")],
    )
    def test_input_sizes_within_bounds(self, module, key):
        count, low, high, _ = TABLE4_INPUTS[key]
        rng = np.random.default_rng(3)
        sizes = module.generate_input_sizes(rng)
        assert len(sizes) == count
        assert min(sizes) >= low * 0.5
        assert max(sizes) <= high


class TestArrivals:
    def test_poisson_mean_interarrival(self):
        rng = np.random.default_rng(0)
        times = list(poisson_arrivals(rng, horizon_s=100_000.0, mean_interarrival_s=60.0))
        gaps = np.diff([0.0, *times])
        assert np.mean(gaps) == pytest.approx(60.0, rel=0.1)
        assert all(t < 100_000.0 for t in times)

    def test_phase_schedule_covers_paper_phases(self):
        rng = np.random.default_rng(1)
        events = phase_schedule(rng)
        assert events[-1].time < TOTAL_TIME_S
        # Every phase window contains only its app.
        offset = 0.0
        for app, duration in PAPER_PHASES:
            in_phase = [e for e in events if offset <= e.time < offset + duration]
            assert in_phase, f"no arrivals in phase {app}"
            assert all(e.app == app for e in in_phase)
            offset += duration

    def test_random_schedule_mixes_apps(self):
        rng = np.random.default_rng(2)
        events = random_schedule(rng, horizon_s=43_200.0)
        apps = {e.app for e in events}
        assert apps == {"montage", "ligo", "cybershake"}

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            list(poisson_arrivals(rng, horizon_s=0.0))
        with pytest.raises(ValueError):
            list(poisson_arrivals(rng, horizon_s=10.0, mean_interarrival_s=0.0))

    def test_unknown_app_rejected(self, workload):
        with pytest.raises(KeyError):
            workload.next_dataflow("spark", issued_at=0.0)
