"""Property test: crash at ANY WAL record boundary, resume, byte-identical.

Hypothesis draws the kill ordinal; the property asserts the resumed run
reproduces the uninterrupted run's final report and observability
artifacts byte for byte — for durable-append kills and for torn-record
kills (half a frame on disk, recovery truncates to the last good
record).
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import Strategy, resume_run, run_experiment
from repro.core.config import default_config
from repro.obs import Observation, trace_json
from repro.recovery import (
    CrashPlan,
    RecoveryManager,
    SimulatedCrash,
    install_crash_plan,
    scan_wal,
)
from repro.recovery.chaos import _metrics_fingerprint

SEED = 11
HORIZON_S = 4 * 60.0
SNAPSHOT_EVERY = 2


def _config():
    return replace(default_config(), seed=SEED, total_time_s=HORIZON_S)


def _artifacts(obs) -> tuple[str, str, str]:
    return (obs.journal.to_jsonl(), obs.metrics.to_json(), trace_json(obs.tracer))


def _run(directory):
    manager = RecoveryManager.start(
        directory,
        _config(),
        strategy="gain",
        generator="phase",
        interleaver="lp",
        obs_enabled=True,
        snapshot_every=SNAPSHOT_EVERY,
    )
    obs = Observation.recording()
    metrics = run_experiment(
        Strategy.GAIN, config=_config(), obs=obs, recovery=manager
    )
    return metrics, obs


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """Uninterrupted run: (fingerprint, artifacts, total WAL records)."""
    directory = tmp_path_factory.mktemp("oracle")
    metrics, obs = _run(directory)
    records = len(scan_wal(directory / "wal.jsonl").records)
    assert records > 10
    return _metrics_fingerprint(metrics), _artifacts(obs), records


def _crash_and_resume(oracle, plan: CrashPlan) -> None:
    fingerprint, artifacts, _ = oracle
    with tempfile.TemporaryDirectory() as raw:
        directory = Path(raw)
        install_crash_plan(plan)
        try:
            with pytest.raises(SimulatedCrash):
                _run(directory)
        finally:
            install_crash_plan(None)
        metrics, service = resume_run(str(directory))
        assert _metrics_fingerprint(metrics) == fingerprint
        assert _artifacts(service.obs) == artifacts
        sidecar = json.loads((directory / "recovery-state.json").read_text())
        assert sidecar["finished"] is True


@given(data=st.data())
@settings(max_examples=8, deadline=None, derandomize=True)
def test_property_crash_at_wal_boundary_resumes_identically(oracle, data):
    records = oracle[2]
    ordinal = data.draw(st.integers(min_value=1, max_value=records))
    _crash_and_resume(oracle, CrashPlan(after_wal_record=ordinal, hard=False))


@given(data=st.data())
@settings(max_examples=6, deadline=None, derandomize=True)
def test_property_torn_wal_record_recovers_to_last_good(oracle, data):
    records = oracle[2]
    ordinal = data.draw(st.integers(min_value=1, max_value=records))
    _crash_and_resume(oracle, CrashPlan(torn_wal_record=ordinal, hard=False))


def test_first_and_last_record_boundaries(oracle):
    """The edges the property's draws may miss: ordinal 1 (before any
    snapshot — cold resume) and the final record (crash during the
    run's sealing)."""
    records = oracle[2]
    _crash_and_resume(oracle, CrashPlan(after_wal_record=1, hard=False))
    _crash_and_resume(oracle, CrashPlan(after_wal_record=records, hard=False))
    _crash_and_resume(oracle, CrashPlan(torn_wal_record=records, hard=False))
