"""Tests for the micro-engine query operators (all five paper categories)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import BPlusTree
from repro.engine.executor import (
    group_by_btree,
    group_by_sort,
    hash_join,
    index_nested_loops_join,
    lookup_btree,
    lookup_hash,
    lookup_scan,
    nested_loops_join,
    order_by_btree,
    order_by_external_sort,
    order_by_sort,
    range_select_btree,
    range_select_scan,
    sort_merge_join,
    sort_merge_join_unindexed,
)
from repro.engine.hashindex import HashIndex
from repro.engine.heap import HeapFile


@pytest.fixture
def heap():
    keys = [5, 3, 9, 3, 7, 1, 9, 5, 5, 2]
    return HeapFile({"k": keys, "payload": [f"row{i}" for i in range(len(keys))]})


@pytest.fixture
def btree(heap):
    return BPlusTree.bulk_load(heap.index_pairs("k"), order=4)


@pytest.fixture
def hashidx(heap):
    return HashIndex.build(heap.index_pairs("k"))


class TestLookup:
    def test_scan_vs_btree_vs_hash_agree(self, heap, btree, hashidx):
        for key in (1, 3, 5, 42):
            scan = sorted(lookup_scan(heap, "k", key))
            assert sorted(lookup_btree(btree, key)) == scan
            assert sorted(lookup_hash(hashidx, key)) == scan

    def test_lookup_missing_key(self, heap, btree):
        assert lookup_scan(heap, "k", 999) == []
        assert lookup_btree(btree, 999) == []


class TestRangeSelect:
    def test_scan_vs_btree_agree(self, heap, btree):
        assert sorted(range_select_scan(heap, "k", 2, 7)) == sorted(
            range_select_btree(btree, 2, 7)
        )

    def test_bounds_exclusive(self, heap, btree):
        got_keys = {heap.value("k", r) for r in range_select_btree(btree, 3, 9)}
        assert got_keys == {5, 7}


class TestOrderBy:
    def test_all_three_paths_agree_on_key_order(self, heap, btree):
        keys = heap.column("k")
        by_sort = [keys[i] for i in order_by_sort(heap, "k")]
        by_ext = [keys[i] for i in order_by_external_sort(heap, "k", run_rows=3)]
        by_idx = [keys[i] for i in order_by_btree(btree)]
        assert by_sort == by_ext == by_idx == sorted(keys)

    def test_external_sort_rejects_tiny_runs(self, heap):
        with pytest.raises(ValueError):
            order_by_external_sort(heap, "k", run_rows=1)


class TestGroupBy:
    def test_sort_and_btree_grouping_agree(self, heap, btree):
        a = group_by_sort(heap, "k")
        b = group_by_btree(btree)
        assert set(a) == set(b)
        for key in a:
            assert sorted(a[key]) == sorted(b[key])

    def test_groups_partition_the_rows(self, heap):
        groups = group_by_sort(heap, "k")
        all_rows = sorted(r for rows in groups.values() for r in rows)
        assert all_rows == list(range(len(heap)))


class TestJoins:
    @pytest.fixture
    def left(self):
        return HeapFile({"k": [1, 2, 2, 3, 5]})

    @pytest.fixture
    def right(self):
        return HeapFile({"k": [2, 3, 3, 4]})

    def test_all_join_algorithms_agree(self, left, right):
        expected = sorted(nested_loops_join(left, "k", right, "k"))
        assert sorted(hash_join(left, "k", right, "k")) == expected
        assert sorted(sort_merge_join_unindexed(left, "k", right, "k")) == expected
        right_idx = BPlusTree.bulk_load(right.index_pairs("k"), order=4)
        assert sorted(index_nested_loops_join(left, "k", right_idx)) == expected

    def test_sort_merge_on_indexed_streams(self, left, right):
        li = BPlusTree.bulk_load(left.index_pairs("k"), order=4)
        ri = BPlusTree.bulk_load(right.index_pairs("k"), order=4)
        got = sorted(sort_merge_join(li.items(), ri.items()))
        assert got == sorted(nested_loops_join(left, "k", right, "k"))

    def test_empty_join(self):
        left = HeapFile({"k": [1]})
        right = HeapFile({"k": [2]})
        assert hash_join(left, "k", right, "k") == []


class TestHeapFile:
    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            HeapFile({"a": [1, 2], "b": [1]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HeapFile({})

    def test_unknown_column(self, heap):
        with pytest.raises(KeyError):
            heap.column("nope")


@given(
    left_keys=st.lists(st.integers(min_value=0, max_value=20), max_size=40),
    right_keys=st.lists(st.integers(min_value=0, max_value=20), max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_property_joins_equal_nested_loops(left_keys, right_keys):
    left = HeapFile({"k": left_keys or [0]})
    right = HeapFile({"k": right_keys or [0]})
    expected = sorted(nested_loops_join(left, "k", right, "k"))
    assert sorted(hash_join(left, "k", right, "k")) == expected
    assert sorted(sort_merge_join_unindexed(left, "k", right, "k")) == expected
