"""Tests for the multi-seed campaign runner."""

from dataclasses import replace

import pytest

from repro.core.config import ExperimentConfig
from repro.core.metrics import DataflowOutcome, ServiceMetrics
from repro.core.service import Strategy
from repro.experiments import (
    Aggregate,
    CampaignResult,
    compare_campaigns,
    dominance_holds,
    run_campaign,
)


def tiny_config():
    return ExperimentConfig(
        total_time_s=900.0, max_skyline=2, scheduler_containers=8,
        max_candidates=20, max_queued_gain=5,
    )


def fake_metrics(finished, cost_quanta=10.0):
    m = ServiceMetrics(strategy="x", horizon_s=1e9)
    for i in range(finished):
        m.outcomes.append(
            DataflowOutcome(
                name=f"d{i}", app="montage", issued_at=0.0, started_at=0.0,
                finished_at=60.0, money_quanta=int(cost_quanta),
                ops_executed=10, builds_completed=0, builds_killed=0,
            )
        )
    return m


class TestAggregate:
    def test_of(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.low == 1.0 and agg.high == 3.0
        assert agg.n == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Aggregate.of([])

    def test_str_format(self):
        assert "±" in str(Aggregate.of([1.0, 2.0]))


class TestCampaignResult:
    def _campaign(self):
        c = CampaignResult(Strategy.GAIN, "phase", seeds=[1, 2])
        c.runs = [fake_metrics(10), fake_metrics(20)]
        return c

    def test_aggregate_finished(self):
        agg = self._campaign().aggregate("finished")
        assert agg.mean == pytest.approx(15.0)

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            self._campaign().aggregate("bogus")


class TestDominance:
    def _pair(self, winner_vals, loser_vals):
        w = CampaignResult(Strategy.GAIN, "phase", seeds=[1, 2])
        w.runs = [fake_metrics(v) for v in winner_vals]
        l = CampaignResult(Strategy.NO_INDEX, "phase", seeds=[1, 2])
        l.runs = [fake_metrics(v) for v in loser_vals]
        return w, l

    def test_holds_everywhere(self):
        w, l = self._pair([20, 30], [10, 10])
        assert dominance_holds(w, l, "finished", higher_is_better=True, min_ratio=1.5)

    def test_fails_on_one_seed(self):
        w, l = self._pair([20, 9], [10, 10])
        assert not dominance_holds(w, l, "finished", higher_is_better=True)

    def test_lower_is_better(self):
        w, l = self._pair([5, 5], [10, 10])
        assert dominance_holds(w, l, "finished", higher_is_better=False, min_ratio=2.0)

    def test_mismatched_campaigns(self):
        w, l = self._pair([5], [10, 10])
        with pytest.raises(ValueError):
            dominance_holds(w, l, "finished", higher_is_better=True)

    def test_bad_ratio(self):
        w, l = self._pair([5, 5], [10, 10])
        with pytest.raises(ValueError):
            dominance_holds(w, l, "finished", higher_is_better=True, min_ratio=0.0)


class TestEndToEnd:
    def test_campaign_runs_real_experiments(self):
        result = run_campaign(
            Strategy.NO_INDEX, seeds=[1, 2], config=tiny_config()
        )
        assert len(result.runs) == 2
        assert result.aggregate("finished").n == 2

    def test_compare_campaigns_same_seeds(self):
        out = compare_campaigns(
            [Strategy.NO_INDEX], seeds=[3], config=tiny_config()
        )
        assert Strategy.NO_INDEX in out
        assert out[Strategy.NO_INDEX].seeds == [3]

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            run_campaign(Strategy.NO_INDEX, seeds=[], config=tiny_config())
