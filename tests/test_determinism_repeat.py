"""Acceptance test for the DET01/SEED01 contract: same seed, same bytes.

Runs the full service loop twice with identical configuration and
asserts the complete metrics object — every outcome timestamp, bill and
counter, rendered to its full float repr — is byte-identical. Repeated
for two different seeds, per the PR acceptance criterion.
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.metrics import ServiceMetrics
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload


def run_once(seed: int) -> ServiceMetrics:
    cfg = ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=seed,
    )
    workload = build_workload(cfg.pricing, seed=cfg.seed)
    service = QaaSService(workload, cfg, Strategy.GAIN)
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(6)]
    return service.run(events)


def fingerprint(metrics: ServiceMetrics) -> str:
    # Dataclass repr renders every float at full precision: any drift in
    # any field of any outcome changes the string.
    return repr(metrics) + repr(
        (
            metrics.compute_dollars,
            metrics.storage_dollars(),
            metrics.total_dollars(),
            metrics.avg_makespan_quanta(),
        )
    )


def test_same_seed_runs_are_byte_identical() -> None:
    assert fingerprint(run_once(5)) == fingerprint(run_once(5))


def test_second_seed_is_also_repeatable() -> None:
    a, b = run_once(11), run_once(11)
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_actually_differ() -> None:
    # Guard against a fingerprint that ignores the interesting state.
    assert fingerprint(run_once(5)) != fingerprint(run_once(11))
