"""Acceptance test for the DET01/SEED01 contract: same seed, same bytes.

Runs the full service loop twice with identical configuration and
asserts the complete metrics object — every outcome timestamp, bill and
counter, rendered to its full float repr — is byte-identical. Repeated
for two different seeds, per the PR acceptance criterion.
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.metrics import ServiceMetrics
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload
from repro.obs import Observation, trace_json


def _config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        total_time_s=30 * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=seed,
    )


def run_once(seed: int, obs: Observation | None = None) -> ServiceMetrics:
    cfg = _config(seed)
    workload = build_workload(cfg.pricing, seed=cfg.seed)
    service = QaaSService(workload, cfg, Strategy.GAIN, obs=obs)
    events = [ArrivalEvent(time=(i + 1) * 120.0, app="montage") for i in range(6)]
    return service.run(events)


def fingerprint(metrics: ServiceMetrics) -> str:
    # Dataclass repr renders every float at full precision: any drift in
    # any field of any outcome changes the string. The fault counters are
    # registry-backed properties (outside the dataclass repr), so the
    # fault_summary dict folds them back into the fingerprint.
    return repr(metrics) + repr(
        (
            metrics.compute_dollars,
            metrics.storage_dollars(),
            metrics.total_dollars(),
            metrics.avg_makespan_quanta(),
        )
    ) + repr(sorted(metrics.fault_summary().items()))


def test_same_seed_runs_are_byte_identical() -> None:
    assert fingerprint(run_once(5)) == fingerprint(run_once(5))


def test_second_seed_is_also_repeatable() -> None:
    a, b = run_once(11), run_once(11)
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_actually_differ() -> None:
    # Guard against a fingerprint that ignores the interesting state.
    assert fingerprint(run_once(5)) != fingerprint(run_once(11))


# ----------------------------------------------------------------------
# Observability artifacts share the contract: same seed, same bytes
# ----------------------------------------------------------------------
def test_obs_artifacts_are_byte_identical_across_runs() -> None:
    obs_a, obs_b = Observation.recording(), Observation.recording()
    fp_a = fingerprint(run_once(5, obs=obs_a))
    fp_b = fingerprint(run_once(5, obs=obs_b))
    assert fp_a == fp_b
    assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()
    assert trace_json(obs_a.tracer) == trace_json(obs_b.tracer)
    assert obs_a.metrics.to_json() == obs_b.metrics.to_json()
    # and they are not vacuously empty
    assert len(obs_a.journal) > 0
    assert len(obs_a.tracer) > 0


def test_obs_enabled_run_is_behaviour_identical_to_disabled() -> None:
    # Observability is read-only: recording must not perturb a single
    # timestamp, bill or counter relative to the uninstrumented run.
    assert fingerprint(run_once(5, obs=Observation.recording())) == fingerprint(
        run_once(5)
    )


def test_cli_worker_fanout_artifacts_match_serial(tmp_path) -> None:
    # The parallel runner shares the contract end to end: a fanned-out
    # `repro run --repeats 2 --workers 2` writes, for repetition 0 (which
    # keeps the root seed), the same bytes a plain serial run writes.
    from repro.cli import main

    serial = tmp_path / "serial"
    fanout = tmp_path / "fanout"
    common = ["run", "--strategy", "gain", "--horizon-quanta", "8", "--seed", "5"]

    assert main(common + [
        "--metrics-out", str(serial / "m.json"),
        "--events-out", str(serial / "e.jsonl"),
        "--trace-out", str(serial / "t.json"),
    ]) == 0
    assert main(common + [
        "--repeats", "2", "--workers", "2",
        "--metrics-out", str(fanout / "m.json"),
        "--events-out", str(fanout / "e.jsonl"),
        "--trace-out", str(fanout / "t.json"),
    ]) == 0

    for name in ("m.json", "e.jsonl", "t.json"):
        rep0 = fanout / name.replace(".", "-rep0.", 1)
        assert rep0.read_bytes() == (serial / name).read_bytes()
        # Repetition 1 runs a genuinely different derived seed.
        rep1 = fanout / name.replace(".", "-rep1.", 1)
        assert rep1.exists()
    assert (fanout / "e-rep1.jsonl").read_bytes() != (serial / "e.jsonl").read_bytes()


def test_journal_build_events_carry_gain_breakdown() -> None:
    obs = Observation.recording()
    run_once(5, obs=obs)
    builds = [e for e in obs.journal.events if e["event"] == "index_build"]
    assert builds, "expected at least one index build in 30 quanta"
    required = {
        "time_gain_quanta",
        "money_gain_dollars",
        "combined_dollars",
        "build_time_quanta",
        "build_cost_dollars",
        "storage_cost_dollars",
        "faded_time_quanta",
        "faded_money_dollars",
        "fade_quanta",
    }
    for event in builds:
        breakdown = event["breakdown"]
        assert breakdown is not None
        assert required <= set(breakdown)
