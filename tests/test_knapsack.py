"""Tests for the knapsack solver and the packing heuristics (Alg. 3, Fig. 11)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.interleave.greedy import graham_pack, lp_pack, merged_upper_bound
from repro.interleave.knapsack import (
    KnapsackItem,
    fractional_bound,
    solve_knapsack,
    solve_knapsack_greedy,
)


def brute_force(items, capacity):
    best = 0.0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            size = sum(i.size for i in combo)
            if size <= capacity + 1e-12:
                best = max(best, sum(i.gain for i in combo))
    return best


class TestKnapsack:
    def test_empty(self):
        sol = solve_knapsack([], 10.0)
        assert sol.selected == () and sol.total_gain == 0.0

    def test_single_item_fits(self):
        sol = solve_knapsack([KnapsackItem(0, 5.0, 3.0)], 10.0)
        assert sol.selected == (0,)
        assert sol.total_gain == 3.0

    def test_single_item_too_big(self):
        sol = solve_knapsack([KnapsackItem(0, 15.0, 3.0)], 10.0)
        assert sol.selected == ()

    def test_classic_counterexample_to_greedy(self):
        # Greedy by density takes item 0 (density 3) and misses the pair.
        items = [
            KnapsackItem(0, 1.0, 3.0),
            KnapsackItem(1, 5.0, 7.0),
            KnapsackItem(2, 5.0, 7.0),
        ]
        greedy = solve_knapsack_greedy(items, 10.0)
        exact = solve_knapsack(items, 10.0)
        assert exact.total_gain == 14.0
        assert exact.total_gain >= greedy.total_gain

    def test_capacity_zero(self):
        sol = solve_knapsack([KnapsackItem(0, 1.0, 1.0)], 0.0)
        assert sol.selected == ()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack([], -1.0)

    def test_lp_bound_at_least_integer_optimum(self):
        items = [KnapsackItem(i, s, g) for i, (s, g) in enumerate([(3, 4), (4, 5), (2, 3)])]
        sol = solve_knapsack(items, 6.0)
        assert sol.lp_bound >= sol.total_gain - 1e-9

    def test_fractional_bound_exact_when_all_fit(self):
        items = [KnapsackItem(0, 1.0, 1.0), KnapsackItem(1, 2.0, 2.0)]
        assert fractional_bound(items, 10.0) == pytest.approx(3.0)


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=10.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        max_size=10,
    ),
    capacity=st.floats(min_value=0.0, max_value=30.0),
)
@settings(max_examples=60, deadline=None)
def test_property_branch_and_bound_is_optimal(data, capacity):
    items = [KnapsackItem(i, s, g) for i, (s, g) in enumerate(data)]
    sol = solve_knapsack(items, capacity)
    assert sol.total_gain == pytest.approx(brute_force(items, capacity))
    assert sol.total_size <= capacity + 1e-9
    assert sol.total_gain >= solve_knapsack_greedy(items, capacity).total_gain - 1e-9
    assert sol.lp_bound >= sol.total_gain - 1e-9


class TestPackingHeuristics:
    def _items(self):
        sizes = [0.15, 0.12, 0.1, 0.1, 0.08, 0.08, 0.07, 0.06, 0.05, 0.05]
        return [KnapsackItem(i, s, s) for i, s in enumerate(sizes)]

    def _segments(self):
        return [0.5, 0.35, 0.3, 0.2, 0.15, 0.1, 0.08, 0.05]

    def test_hierarchy_graham_lp_upper_bound(self):
        """Figure 11's ordering: Graham <= LP <= merged upper bound."""
        items, segments = self._items(), self._segments()
        g = graham_pack(items, segments)
        lp = lp_pack(items, segments)
        ub = merged_upper_bound(items, segments)
        assert g.total_gain <= lp.total_gain + 1e-9
        assert lp.total_gain <= ub + 1e-9

    def test_lp_close_to_upper_bound(self):
        """The paper reports LP within ~5% of the theoretical bound."""
        items, segments = self._items(), self._segments()
        lp = lp_pack(items, segments)
        ub = merged_upper_bound(items, segments)
        assert lp.total_gain >= 0.85 * ub

    def test_graham_respects_segment_capacity(self):
        items, segments = self._items(), self._segments()
        result = graham_pack(items, segments)
        by_id = {i.item_id: i for i in items}
        for seg, ids in result.placements.items():
            assert sum(by_id[i].size for i in ids) <= segments[seg] + 1e-9

    def test_lp_respects_segment_capacity(self):
        items, segments = self._items(), self._segments()
        result = lp_pack(items, segments)
        by_id = {i.item_id: i for i in items}
        for seg, ids in result.placements.items():
            assert sum(by_id[i].size for i in ids) <= segments[seg] + 1e-9

    def test_no_item_placed_twice(self):
        items, segments = self._items(), self._segments()
        for result in (graham_pack(items, segments), lp_pack(items, segments)):
            placed = [i for ids in result.placements.values() for i in ids]
            assert len(placed) == len(set(placed))

    def test_oversized_item_dropped(self):
        items = [KnapsackItem(0, 100.0, 100.0)]
        result = graham_pack(items, [1.0])
        assert result.num_scheduled == 0

    def test_negative_segment_rejected(self):
        with pytest.raises(ValueError):
            graham_pack([], [-1.0])


@given(
    sizes=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=12),
    segments=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_property_packing_hierarchy(sizes, segments):
    items = [KnapsackItem(i, s, s) for i, s in enumerate(sizes)]
    g = graham_pack(items, segments)
    lp = lp_pack(items, segments)
    ub = merged_upper_bound(items, segments)
    assert g.total_gain <= ub + 1e-6
    assert lp.total_gain <= ub + 1e-6
