"""Edge-case tests across modules: string keys, empty inputs, determinism."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.engine.btree import BPlusTree
from repro.engine.executor import order_by_external_sort
from repro.engine.heap import HeapFile
from repro.interleave.lp import InterleavedSchedule
from repro.scheduling.schedule import Assignment, Schedule


class TestBTreeEdgeCases:
    def test_string_keys(self):
        tree = BPlusTree(order=4)
        words = ["pear", "apple", "fig", "banana", "apple", "cherry"]
        for i, w in enumerate(words):
            tree.insert(w, i)
        assert list(tree.keys()) == sorted(set(words))
        assert sorted(tree.search("apple")) == [1, 4]
        got = [k for k, _ in tree.range("b", "d")]
        assert got == ["banana", "cherry"]

    def test_deep_tree_with_min_order(self):
        tree = BPlusTree(order=3)
        for i in range(2000):
            tree.insert(i, i)
        tree.check_invariants()
        assert tree.search(1999) == [1999]
        assert tree.height > 5  # genuinely deep

    def test_all_equal_keys(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(7, i)
        assert tree.num_keys == 1
        assert len(tree) == 100
        assert sorted(tree.search(7)) == list(range(100))
        tree.check_invariants()

    def test_bulk_load_single_pair(self):
        tree = BPlusTree.bulk_load([(5, 0)], order=4)
        assert tree.search(5) == [0]
        tree.check_invariants()

    def test_reverse_sorted_inserts(self):
        tree = BPlusTree(order=5)
        for i in reversed(range(500)):
            tree.insert(i, i)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(500))


class TestExternalSortEdgeCases:
    def test_run_size_larger_than_data(self):
        heap = HeapFile({"k": [3, 1, 2]})
        rows = order_by_external_sort(heap, "k", run_rows=100)
        assert [heap.value("k", r) for r in rows] == [1, 2, 3]

    def test_single_row(self):
        heap = HeapFile({"k": [42]})
        assert order_by_external_sort(heap, "k") == [0]


class TestSimulatorDeterminism:
    def _flow(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=30.0))
        flow.add_operator(Operator(name="b", runtime=40.0))
        flow.add_edge("a", "b")
        return flow

    def _interleaved(self):
        flow = self._flow()
        schedule = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 0, 30.0, 70.0),
        ])
        return InterleavedSchedule(schedule=schedule)

    def test_same_seed_same_result(self):
        results = []
        for _ in range(2):
            sim = ExecutionSimulator(
                PAPER_PRICING, runtime_error=0.3, rng=np.random.default_rng(99)
            )
            results.append(sim.execute(self._interleaved(), 0.0).makespan_seconds)
        assert results[0] == results[1]

    def test_different_seed_different_result(self):
        a = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.3, rng=np.random.default_rng(1)
        ).execute(self._interleaved(), 0.0)
        b = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.3, rng=np.random.default_rng(2)
        ).execute(self._interleaved(), 0.0)
        assert a.makespan_seconds != b.makespan_seconds


class TestScheduleEdgeCases:
    def test_empty_schedule(self):
        flow = Dataflow(name="empty")
        schedule = Schedule(dataflow=flow, pricing=PAPER_PRICING)
        assert schedule.makespan_seconds() == 0.0
        assert schedule.money_quanta() == 0
        assert schedule.idle_slots() == []
        assert schedule.fragmentation_quanta() == 0.0

    def test_zero_duration_assignment(self):
        flow = Dataflow(name="z")
        flow.add_operator(Operator(name="a", runtime=0.0))
        schedule = Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
            Assignment("a", 0, 10.0, 10.0),
        ])
        schedule.validate()
        assert schedule.money_quanta() == 1  # still a prepaid quantum

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Assignment("a", 0, 10.0, 5.0)


class TestOperatorEdgeCases:
    def test_operator_without_inputs_index_has_no_effect(self):
        op = Operator(name="x", runtime=10.0, index_speedup={"t__k": 100.0})
        assert op.runtime_with_indexes({"t__k"}) == 10.0  # no inputs: no share

    def test_zero_runtime_operator(self):
        op = Operator(name="x", runtime=0.0)
        assert op.runtime_with_indexes({"anything"}) == 0.0
