"""Property-based tests: scheduler invariants on random DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.lp import lp_interleave
from repro.interleave.slots import BuildCandidate
from repro.scheduling.online_lb import OnlineLoadBalanceScheduler
from repro.scheduling.skyline import SkylineScheduler


@st.composite
def random_dags(draw):
    """Random layered DAGs with 3-18 operators."""
    num_ops = draw(st.integers(min_value=3, max_value=18))
    runtimes = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=300.0),
            min_size=num_ops, max_size=num_ops,
        )
    )
    flow = Dataflow(name="rand")
    for i, runtime in enumerate(runtimes):
        flow.add_operator(Operator(name=f"op{i}", runtime=runtime))
    # Edges only from lower to higher indices: acyclic by construction.
    edge_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(edge_seed)
    for j in range(1, num_ops):
        for i in range(j):
            if rng.random() < 0.25:
                flow.add_edge(f"op{i}", f"op{j}", data_mb=float(rng.uniform(0, 50)))
    return flow


@given(flow=random_dags(), cap=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_property_skyline_schedules_always_feasible(flow, cap):
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=cap, max_containers=8)
    skyline = scheduler.schedule(flow)
    assert skyline, "scheduler must return at least one schedule"
    for schedule in skyline:
        schedule.validate(net_bw_mb_s=125.0)
        # Objectives are sane.
        assert schedule.makespan_seconds() >= max(
            op.runtime for op in flow.operators.values()
        ) - 1e-6
        assert schedule.money_quanta() >= 1
        # Fragmentation is non-negative and bounded by the leased time.
        frag = schedule.fragmentation_quanta()
        assert -1e-9 <= frag <= schedule.money_quanta()


@given(flow=random_dags())
@settings(max_examples=30, deadline=None)
def test_property_makespan_bounds(flow):
    """Any schedule's makespan lies between the critical path and the
    fully serial execution plus all transfer delays."""
    skyline = SkylineScheduler(
        PAPER_PRICING, max_skyline=8, max_containers=4
    ).schedule(flow)
    lb = OnlineLoadBalanceScheduler(PAPER_PRICING, num_containers=4).schedule(flow)
    lower = flow.critical_path()
    transfers = sum(e.data_mb for e in flow.edges) / 125.0
    upper = flow.total_runtime() + transfers
    for schedule in [lb, *skyline]:
        assert lower - 1e-6 <= schedule.makespan_seconds() <= upper + 1e-6


@given(
    flow=random_dags(),
    durations=st.lists(
        st.floats(min_value=1.0, max_value=120.0), min_size=1, max_size=20
    ),
)
@settings(max_examples=30, deadline=None)
def test_property_interleaving_never_hurts(flow, durations):
    """Whatever the build candidates, LP interleaving leaves the
    dataflow's time and money untouched and never double-books."""
    candidates = [
        BuildCandidate(index_name=f"t{i}__c", partition_id=0, duration_s=d, gain=d)
        for i, d in enumerate(durations)
    ]
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=3, max_containers=6)
    for inter in lp_interleave(flow, candidates, scheduler):
        combined = inter.combined()
        combined.validate(require_all_assigned=False)
        assert combined.makespan_seconds() == pytest.approx(
            inter.schedule.makespan_seconds()
        )
        assert combined.money_quanta() == inter.schedule.money_quanta()
        # A build is placed at most once.
        names = [a.op_name for a in inter.build_assignments]
        assert len(names) == len(set(names))
