"""Tests for repro.obs: tracer, metrics registry, journal, Perfetto export.

Covers the unit behaviour of every sink, the allocation-free no-op
contract of the disabled tracer, and a golden-file check of the Chrome
trace produced for a tiny two-container schedule.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.lp import InterleavedSchedule
from repro.interleave.slots import BuildCandidate, slot_fill_payloads
from repro.obs import (
    Counter,
    Instant,
    Journal,
    MetricsRegistry,
    NOOP_OBS,
    NullRegistry,
    Observation,
    RecordingJournal,
    RecordingTracer,
    Span,
    Tracer,
    chrome_trace,
    trace_json,
    write_chrome_trace,
)
from repro.scheduling.schedule import Assignment, Schedule

GOLDEN = Path(__file__).resolve().parent / "golden"


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_recording_tracer_accumulates(self):
        tracer = RecordingTracer()
        tracer.name_process(0, "df")
        tracer.name_thread(0, 1, "container 1")
        tracer.span("op", "operator", 0, 1, 10.0, 20.0, args={"b": 2, "a": 1})
        tracer.instant("idle_slot", "slot", 0, 1, 20.0)
        assert len(tracer) == 2
        assert tracer.spans[0].duration_s == pytest.approx(10.0)
        # args are frozen sorted so equal payloads always compare equal
        assert tracer.spans[0].args == (("a", 1), ("b", 2))

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span("x", "operator", 0, 0, 5.0, 4.0)

    def test_process_and_thread_names_first_write_wins(self):
        tracer = RecordingTracer()
        tracer.name_process(0, "first")
        tracer.name_process(0, "second")
        tracer.name_thread(0, 1, "t-first")
        tracer.name_thread(0, 1, "t-second")
        assert tracer.process_names[0] == "first"
        assert tracer.thread_names[(0, 1)] == "t-first"

    def test_noop_tracer_allocates_no_spans(self):
        """The disabled tracer must create zero Span/Instant objects."""
        tracer = Tracer()
        assert not tracer.enabled
        gc.collect()
        before = sum(
            1 for o in gc.get_objects() if isinstance(o, (Span, Instant))
        )
        for i in range(200):
            tracer.name_process(i, "p")
            tracer.name_thread(i, 0, "t")
            tracer.span("op", "operator", i, 0, 0.0, 1.0)
            tracer.instant("mark", "slot", i, 0, 0.5)
        gc.collect()
        after = sum(
            1 for o in gc.get_objects() if isinstance(o, (Span, Instant))
        )
        assert after == before


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_counter_set_for_views(self):
        c = Counter()
        c.set(7)
        assert c.value == 7

    def test_registry_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 1]  # <=1, <=10, overflow
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(10.0, 1.0))

    def test_snapshot_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert reg.to_json() == reg.to_json()
        assert reg.to_json().endswith("\n")

    def test_counters_with_prefix(self):
        reg = MetricsRegistry()
        reg.counter("faults/injected/crash").inc(3)
        reg.counter("sim/executions").inc()
        hits = reg.counters_with_prefix("faults/injected/")
        assert list(hits) == ["faults/injected/crash"]

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        assert reg.counter("x") is reg.counter("y")  # shared null instrument
        reg.counter("x").inc(100)
        reg.gauge("g").set(5.0)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_noop_journal_records_nothing(self):
        j = Journal()
        assert not j.enabled
        j.emit("decision", t=1.0, extra="x")  # must not raise or store

    def test_recording_journal_order_and_counts(self):
        j = RecordingJournal()
        j.emit("b_event", t=2.0, value=1)
        j.emit("a_event", t=1.0)
        j.emit("b_event", t=3.0)
        assert len(j) == 3
        assert [e["event"] for e in j.events] == ["b_event", "a_event", "b_event"]
        assert j.counts_by_event() == {"a_event": 1, "b_event": 2}

    def test_jsonl_is_sorted_and_deterministic(self):
        j = RecordingJournal()
        j.emit("e", t=1.0, zebra=1, alpha=2)
        line = j.to_jsonl().splitlines()[0]
        assert line == '{"alpha":2,"event":"e","t":1.0,"zebra":1}'

    def test_write_jsonl(self, tmp_path):
        j = RecordingJournal()
        j.emit("e", t=0.0)
        out = tmp_path / "events.jsonl"
        j.write_jsonl(out)
        assert out.read_text() == j.to_jsonl()


# ----------------------------------------------------------------------
# Observation facade
# ----------------------------------------------------------------------
class TestObservation:
    def test_noop_bundle_disabled(self):
        assert not NOOP_OBS.enabled
        assert not NOOP_OBS.tracer.enabled
        assert not NOOP_OBS.metrics.enabled
        assert not NOOP_OBS.journal.enabled

    def test_recording_bundle(self):
        obs = Observation.recording()
        assert obs.enabled
        assert isinstance(obs.tracer, RecordingTracer)
        assert isinstance(obs.journal, RecordingJournal)
        assert obs.metrics.enabled


# ----------------------------------------------------------------------
# Slot-fill payloads
# ----------------------------------------------------------------------
def test_slot_fill_payloads_sorted_and_parsed():
    cand = BuildCandidate("tbl__col", 2, 15.0, 1.0)
    builds = [
        Assignment(cand.op_name, 1, 90.0, 105.0),
        Assignment(BuildCandidate("tbl__col", 0, 10.0, 1.0).op_name, 0, 30.0, 40.0),
    ]
    payloads = slot_fill_payloads(builds)
    assert [p["container"] for p in payloads] == [0, 1]
    assert payloads[0]["index"] == "tbl__col"
    assert payloads[0]["partition"] == 0
    assert payloads[1]["slot_start_s"] == pytest.approx(90.0)


# ----------------------------------------------------------------------
# Perfetto export: golden two-container schedule
# ----------------------------------------------------------------------
def _two_container_run(obs: Observation) -> None:
    """One dataflow on two containers plus one interleaved build."""
    flow = Dataflow(name="golden-df")
    flow.add_operator(Operator(name="a", runtime=30.0))
    flow.add_operator(Operator(name="b", runtime=30.0))
    flow.add_operator(Operator(name="c", runtime=30.0))
    flow.add_edge("a", "c")
    flow.add_edge("b", "c")
    schedule = Schedule(
        dataflow=flow,
        pricing=PAPER_PRICING,
        assignments=[
            Assignment("a", 0, 0.0, 30.0),
            Assignment("b", 1, 0.0, 30.0),
            Assignment("c", 0, 30.0, 60.0),
        ],
    )
    cand = BuildCandidate("tbl__col", 0, 20.0, 1.0)
    inter = InterleavedSchedule(
        schedule=schedule,
        build_assignments=[Assignment(cand.op_name, 1, 30.0, 50.0)],
        scheduled_builds=[cand],
    )
    sim = ExecutionSimulator(
        PAPER_PRICING, runtime_error=0.0, rng=np.random.default_rng(0), obs=obs
    )
    result = sim.execute(inter, start_time=0.0)
    assert [b.index_name for b in result.builds_completed] == ["tbl__col"]


def test_two_container_trace_matches_golden():
    obs = Observation.recording()
    _two_container_run(obs)
    golden = (GOLDEN / "two_container_trace.json").read_text()
    assert trace_json(obs.tracer) == golden


def test_two_container_trace_structure():
    obs = Observation.recording()
    _two_container_run(obs)
    trace = chrome_trace(obs.tracer)
    events = trace["traceEvents"]
    phases = [e["ph"] for e in events]
    # one process_name + two thread_name metadata records
    assert phases.count("M") == 3
    # three operators + one completed build
    slices = [e for e in events if e["ph"] == "X"]
    assert sorted(e["cat"] for e in slices) == ["build", "operator", "operator", "operator"]
    build = next(e for e in slices if e["cat"] == "build")
    assert build["args"]["outcome"] == "completed"
    assert build["dur"] == pytest.approx(20.0 * 1e6)
    # idle slots rendered as thread-scoped instants
    marks = [e for e in events if e["ph"] == "i"]
    assert marks and all(m["s"] == "t" for m in marks)
    # the JSON loads back — what chrome://tracing actually requires
    assert json.loads(trace_json(obs.tracer))["displayTimeUnit"] == "ms"


def test_write_chrome_trace(tmp_path):
    obs = Observation.recording()
    _two_container_run(obs)
    out = tmp_path / "trace.json"
    write_chrome_trace(obs.tracer, out)
    assert out.read_text() == trace_json(obs.tracer)


def test_disabled_obs_emits_nothing_from_simulator():
    obs = NOOP_OBS
    _two_container_run(obs)
    # NOOP sinks are shared no-ops: nothing accumulates anywhere
    assert isinstance(obs.tracer, Tracer) and not isinstance(obs.tracer, RecordingTracer)
    assert obs.metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
