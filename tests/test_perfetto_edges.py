"""Edge-case tests for the Chrome-trace/Perfetto exporter.

The simulator always produces named processes with spans, so these
paths — empty traces, instant-only traces, spans whose pid was never
named — only arise for hand-rolled tracers; the exporter must still
emit a valid, deterministic file for them.
"""

from __future__ import annotations

import json

from repro.obs import RecordingTracer, chrome_trace, trace_json


def test_empty_trace_exports_empty_event_array() -> None:
    trace = chrome_trace(RecordingTracer())
    assert trace["traceEvents"] == []
    assert trace["displayTimeUnit"] == "ms"
    # And serialises deterministically.
    assert trace_json(RecordingTracer()) == trace_json(RecordingTracer())


def test_instants_only_trace_round_trips() -> None:
    tracer = RecordingTracer()
    tracer.name_process(1, "montage-1")
    tracer.instant("idle_slot", "slot", pid=1, tid=3, ts_s=5.0, args={"dur_s": 2.0})
    tracer.instant("idle_slot", "slot", pid=1, tid=2, ts_s=5.0)
    trace = chrome_trace(tracer)
    phases = [e["ph"] for e in trace["traceEvents"]]
    assert phases == ["M", "i", "i"]  # metadata first, then timed events
    # Ties on ts break by (pid, tid): tid 2 sorts before tid 3.
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert [e["tid"] for e in instants] == [2, 3]
    assert all(e["ts"] == 5.0 * 1e6 for e in instants)
    # Valid JSON end to end.
    assert json.loads(trace_json(tracer))["traceEvents"]


def test_unnamed_pid_gets_deterministic_fallback_track_name() -> None:
    tracer = RecordingTracer()
    tracer.name_process(1, "named-flow")
    tracer.span("op", "operator", pid=2, tid=0, start_s=0.0, end_s=1.0)
    tracer.instant("mark", "slot", pid=7, tid=0, ts_s=0.5)
    trace = chrome_trace(tracer)
    names = {
        e["pid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {1: "named-flow", 2: "process 2", 7: "process 7"}
    # Metadata rows come out in pid order, so the bytes are stable.
    meta_pids = [
        e["pid"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    ]
    assert meta_pids == sorted(meta_pids)
    assert trace_json(tracer) == trace_json(tracer)
