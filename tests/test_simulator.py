"""Tests for the execution simulator: noise, preemption, billing."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.simulator import ExecutionSimulator
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.interleave.lp import InterleavedSchedule
from repro.interleave.slots import BuildCandidate
from repro.scheduling.schedule import Assignment, Schedule


def two_container_flow():
    flow = Dataflow(name="d")
    flow.add_operator(Operator(name="a", runtime=30.0))
    flow.add_operator(Operator(name="b", runtime=30.0))
    flow.add_operator(Operator(name="c", runtime=30.0))
    flow.add_edge("a", "c")
    flow.add_edge("b", "c")
    return flow


def schedule_for(flow):
    return Schedule(dataflow=flow, pricing=PAPER_PRICING, assignments=[
        Assignment("a", 0, 0.0, 30.0),
        Assignment("b", 1, 0.0, 30.0),
        Assignment("c", 0, 30.0, 60.0),
    ])


def simulator(error=0.0, seed=0):
    return ExecutionSimulator(
        PAPER_PRICING, runtime_error=error, rng=np.random.default_rng(seed)
    )


class TestExactExecution:
    def test_zero_error_matches_schedule(self):
        flow = two_container_flow()
        inter = InterleavedSchedule(schedule=schedule_for(flow))
        result = simulator().execute(inter, start_time=100.0)
        assert result.start_time == 100.0
        assert result.makespan_seconds == pytest.approx(60.0)
        assert result.money_quanta == 2  # 1 quantum on each container
        assert result.dataflow_ops == 3
        assert result.builds_killed == 0

    def test_start_time_offsets_finish(self):
        flow = two_container_flow()
        inter = InterleavedSchedule(schedule=schedule_for(flow))
        r0 = simulator().execute(inter, start_time=0.0)
        r5 = simulator().execute(inter, start_time=500.0)
        assert r5.finish_time - r0.finish_time == pytest.approx(500.0)

    def test_noise_changes_makespan(self):
        flow = two_container_flow()
        inter = InterleavedSchedule(schedule=schedule_for(flow))
        noisy = simulator(error=0.5, seed=3).execute(inter, start_time=0.0)
        exact = simulator().execute(inter, start_time=0.0)
        assert noisy.makespan_seconds != pytest.approx(exact.makespan_seconds)

    def test_rejects_negative_error(self):
        with pytest.raises(ValueError):
            ExecutionSimulator(PAPER_PRICING, runtime_error=-0.1)


class TestBuildExecution:
    def _interleaved(self, build_duration, slot_container=1):
        """Container 1 idles 30-60s (quantum 0); builds go there."""
        flow = two_container_flow()
        cand = BuildCandidate("t__x", 0, build_duration, 1.0)
        sched = schedule_for(flow)
        build = Assignment(cand.op_name, slot_container, 30.0, 30.0 + build_duration)
        return InterleavedSchedule(
            schedule=sched, build_assignments=[build], scheduled_builds=[cand]
        )

    def test_fitting_build_completes(self):
        result = simulator().execute(self._interleaved(20.0), start_time=0.0)
        assert len(result.builds_completed) == 1
        done = result.builds_completed[0]
        assert done.index_name == "t__x"
        assert done.partition_id == 0
        assert 30.0 < done.finished_at <= 60.0

    def test_overflowing_build_killed_at_quantum_end(self):
        result = simulator().execute(self._interleaved(45.0), start_time=0.0)
        assert result.builds_completed == []
        assert result.builds_killed == 1

    def test_build_on_busy_container_preempted(self):
        """A build scheduled where a dataflow op actually runs is cut."""
        flow = two_container_flow()
        cand = BuildCandidate("t__x", 0, 25.0, 1.0)
        sched = schedule_for(flow)
        # Scheduled in container 0's 'gap' that doesn't exist at runtime:
        # container 0 is busy 0-60s.
        build = Assignment(cand.op_name, 0, 20.0, 45.0)
        inter = InterleavedSchedule(
            schedule=sched, build_assignments=[build], scheduled_builds=[cand]
        )
        result = simulator().execute(inter, start_time=0.0)
        assert result.builds_completed == []
        assert result.builds_killed + result.builds_unstarted == 1

    def test_build_counters_in_attempted(self):
        result = simulator().execute(self._interleaved(20.0), start_time=0.0)
        assert result.builds_attempted == 1

    def test_multiple_builds_fill_gap_in_order(self):
        flow = two_container_flow()
        cands = [BuildCandidate(f"t{i}__x", 0, 10.0, 1.0) for i in range(4)]
        sched = schedule_for(flow)
        builds = []
        t = 30.0
        for c in cands:
            builds.append(Assignment(c.op_name, 1, t, t + 10.0))
            t += 10.0
        inter = InterleavedSchedule(
            schedule=sched, build_assignments=builds, scheduled_builds=cands
        )
        result = simulator().execute(inter, start_time=0.0)
        # Gap is 30 s (30-60): three 10 s builds fit, the fourth starts at
        # the boundary and cannot.
        assert len(result.builds_completed) == 3
        assert result.builds_killed + result.builds_unstarted == 1

    def test_builds_never_change_dataflow_money(self):
        plain = simulator().execute(
            InterleavedSchedule(schedule=schedule_for(two_container_flow())), 0.0
        )
        with_build = simulator().execute(self._interleaved(20.0), 0.0)
        assert plain.money_quanta == with_build.money_quanta
        assert plain.makespan_seconds == pytest.approx(with_build.makespan_seconds)


class TestPreemptionEdgeCases:
    def _interleaved(self, build_duration, slot_container=1, start=30.0):
        flow = two_container_flow()
        cand = BuildCandidate("t__x", 0, build_duration, 1.0)
        sched = schedule_for(flow)
        build = Assignment(cand.op_name, slot_container, start,
                           start + build_duration)
        return InterleavedSchedule(
            schedule=sched, build_assignments=[build], scheduled_builds=[cand]
        )

    def test_build_exactly_filling_quantum_completes(self):
        """A build ending exactly at quantum expiry is not preempted."""
        result = simulator().execute(self._interleaved(30.0), start_time=0.0)
        assert len(result.builds_completed) == 1
        assert result.builds_completed[0].finished_at == pytest.approx(60.0)
        assert result.builds_killed == 0

    def test_build_a_hair_over_quantum_is_killed(self):
        result = simulator().execute(self._interleaved(30.0 + 1e-3), start_time=0.0)
        assert result.builds_completed == []
        assert result.builds_killed == 1

    def test_build_on_unleased_container_is_unstarted(self):
        """A build on a container the dataflow never leases cannot run."""
        flow = two_container_flow()
        cand = BuildCandidate("t__x", 0, 10.0, 1.0)
        inter = InterleavedSchedule(
            schedule=schedule_for(flow),
            build_assignments=[Assignment(cand.op_name, 7, 0.0, 10.0)],
            scheduled_builds=[cand],
        )
        result = simulator().execute(inter, start_time=0.0)
        assert result.builds_completed == []
        assert result.builds_killed == 0
        assert result.builds_unstarted == 1

    def test_unstarted_overflow_accounting(self):
        """Builds past the cut point split into one killed + N unstarted."""
        flow = two_container_flow()
        cands = [BuildCandidate(f"t{i}__x", 0, 20.0, 1.0) for i in range(3)]
        sched = schedule_for(flow)
        builds = [
            Assignment(cands[i].op_name, 1, 30.0 + 20.0 * i, 50.0 + 20.0 * i)
            for i in range(3)
        ]
        inter = InterleavedSchedule(
            schedule=sched, build_assignments=builds, scheduled_builds=cands
        )
        result = simulator().execute(inter, start_time=0.0)
        # Gap is 30 s: the first 20 s build fits, the second is cut at the
        # quantum boundary, the third never starts.
        assert len(result.builds_completed) == 1
        assert result.builds_killed == 1
        assert result.builds_unstarted == 1
        # Attempted counts builds that actually ran; unstarted ones never did.
        assert result.builds_attempted == 2

    def test_attempted_includes_failed_builds(self):
        from repro.faults.injector import FaultInjector, FaultProfile
        from repro.faults.retry import RetryPolicy

        sim = ExecutionSimulator(
            PAPER_PRICING,
            injector=FaultInjector(FaultProfile(operator_failure_rate=1.0),
                                   rng=np.random.default_rng(0)),
            retry=RetryPolicy(rng=np.random.default_rng(1)),
        )
        result = sim.execute(self._interleaved(10.0), start_time=0.0)
        assert result.builds_failed == 1
        assert result.builds_attempted == 1


class TestDependenciesUnderNoise:
    def test_actual_start_respects_dependencies(self):
        """Even if a predecessor runs long, the successor waits."""
        flow = two_container_flow()
        inter = InterleavedSchedule(schedule=schedule_for(flow))
        rng_sim = ExecutionSimulator(
            PAPER_PRICING, runtime_error=0.5, rng=np.random.default_rng(11)
        )
        result = rng_sim.execute(inter, start_time=0.0)
        # c must finish after both a and b finished; with error <= 50%,
        # the makespan is bounded by 1.5x the scheduled chain.
        assert result.makespan_seconds <= 1.5 * 60.0 + 1e-6
        assert result.makespan_seconds >= 0.5 * 60.0 - 1e-6
