"""Tests for batch data updates invalidating indexes in the service."""

from dataclasses import replace

import pytest

from repro.core.config import ExperimentConfig
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload


def _run_with_updates(update_interval_s, horizon_quanta=60, apps=("montage",) * 8):
    cfg = ExperimentConfig(
        total_time_s=horizon_quanta * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        update_interval_s=update_interval_s,
        update_partitions=3,
        seed=9,
    )
    workload = build_workload(cfg.pricing, seed=cfg.seed)
    service = QaaSService(workload, cfg, Strategy.GAIN)
    events = [ArrivalEvent(time=(i + 1) * 120.0, app=app) for i, app in enumerate(apps)]
    metrics = service.run(events)
    return metrics, service


class TestDataUpdates:
    def test_disabled_by_default(self):
        metrics, service = _run_with_updates(update_interval_s=0.0)
        versions = {
            p.version for t in service.catalog.tables.values() for p in t.partitions
        }
        assert versions == {0}

    def test_updates_bump_partition_versions(self):
        _, service = _run_with_updates(update_interval_s=300.0)
        versions = [
            p.version for t in service.catalog.tables.values() for p in t.partitions
        ]
        assert max(versions) >= 1

    def test_updates_invalidate_built_indexes(self):
        # Without updates the catalog retains more built partitions than
        # with aggressive updates (same workload, same seed).
        no_upd, svc_no = _run_with_updates(update_interval_s=0.0)
        upd, svc_yes = _run_with_updates(update_interval_s=120.0)
        built_no = sum(
            len(i.built_partition_ids()) for i in svc_no.catalog.indexes.values()
        )
        built_yes = sum(
            len(i.built_partition_ids()) for i in svc_yes.catalog.indexes.values()
        )
        # Both runs built something; updates can only remove.
        assert built_no > 0
        assert built_yes <= built_no

    def test_invalidated_storage_reclaimed(self):
        _, service = _run_with_updates(update_interval_s=120.0)
        # Every live index-partition object corresponds to a built state.
        for path in service.storage.live_paths():
            assert path.startswith("idx/")
            _, index_name, part = path.split("/")
            pid = int(part.split("-")[1])
            index = service.catalog.indexes[index_name]
            assert index.partitions[pid].built

    def test_service_still_functional_under_updates(self):
        metrics, _ = _run_with_updates(update_interval_s=120.0)
        assert len(metrics.outcomes) == 8
        assert all(o.finished_at > o.started_at for o in metrics.outcomes)
