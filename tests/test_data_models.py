"""Tests for tables, partitioning, index size/time models and TPC-H."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.data.index_model import (
    Index,
    IndexCostModel,
    IndexKind,
    IndexSpec,
    btree_fanout,
    btree_size_bytes,
    hash_size_bytes,
    index_record_bytes,
)
from repro.data.table import (
    Column,
    ColumnType,
    Partition,
    TableSchema,
    TableStatistics,
    partition_table,
)
from repro.data.tpch import (
    LINEITEM_FIELD_BYTES,
    TABLE5_COLUMNS,
    generate_lineitem_rows,
    lineitem_statistics,
    lineitem_table,
)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a", ColumnType.INTEGER), Column("a", ColumnType.TEXT)))

    def test_char_needs_width(self):
        with pytest.raises(ValueError):
            Column("c", ColumnType.CHAR)

    def test_column_lookup(self):
        schema = TableSchema("t", (Column("a", ColumnType.INTEGER),))
        assert schema.column("a").ctype is ColumnType.INTEGER
        with pytest.raises(KeyError):
            schema.column("b")


class TestPartitioning:
    def _stats(self, rec_bytes=100.0):
        return TableStatistics(avg_field_bytes={"a": rec_bytes})

    def _schema(self):
        return TableSchema("t", (Column("a", ColumnType.TEXT),))

    def test_partitions_cap_at_max_mb(self):
        stats = self._stats(100.0)
        table = partition_table("t", self._schema(), stats, total_records=3_000_000,
                                max_partition_mb=128.0)
        max_records = int(128 * 1024 * 1024 / 100)
        assert all(p.num_records <= max_records for p in table.partitions)
        assert table.num_records == 3_000_000

    def test_single_small_partition(self):
        table = partition_table("t", self._schema(), self._stats(), total_records=10)
        assert len(table.partitions) == 1

    def test_zero_records(self):
        table = partition_table("t", self._schema(), self._stats(), total_records=0)
        assert len(table.partitions) == 1
        assert table.num_records == 0

    def test_update_partition_bumps_version(self):
        table = partition_table("t", self._schema(), self._stats(), total_records=100)
        updated = table.update_partition(0)
        assert updated.version == 1
        assert table.partition(0).version == 1

    def test_size_mb_consistent_with_stats(self):
        table = partition_table("t", self._schema(), self._stats(100.0),
                                total_records=1024 * 1024)
        assert table.size_mb() == pytest.approx(100.0, rel=1e-6)


class TestBtreeSizeModel:
    def test_empty_and_singleton(self):
        assert btree_size_bytes(0, 10.0) == 0.0
        assert btree_size_bytes(1, 10.0) == index_record_bytes(10.0)

    def test_size_slightly_above_leaf_level(self):
        n, key = 1_000_000, 8.0
        size = btree_size_bytes(n, key)
        leaf = n * index_record_bytes(key)
        assert leaf < size < leaf * 1.01  # upper levels are a small overhead

    def test_fanout_from_block_size(self):
        assert btree_fanout(8.0) == 1024  # 8192 / 8
        assert btree_fanout(10_000.0) == 2  # floor at 2

    def test_hash_bigger_than_btree_leaf(self):
        assert hash_size_bytes(1000, 8.0) > 1000 * index_record_bytes(8.0)

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            btree_size_bytes(-1, 8.0)


class TestTable5Reproduction:
    """The index sizes of Table 5 from the analytical model."""

    PAPER_SIZES_MB = {
        "comment": 422.30,
        "shipinstruct": 248.95,
        "commitdate": 225.91,
        "orderkey": 146.99,
    }

    @pytest.fixture(scope="class")
    def table(self):
        return lineitem_table(scale=2.0)

    @pytest.fixture(scope="class")
    def cost_model(self):
        return IndexCostModel(PAPER_PRICING)

    @pytest.mark.parametrize("column", TABLE5_COLUMNS)
    def test_index_size_within_2_percent_of_paper(self, table, cost_model, column):
        spec = IndexSpec("lineitem", (column,))
        size = cost_model.index_size_mb(table, spec)
        assert size == pytest.approx(self.PAPER_SIZES_MB[column], rel=0.02)

    def test_table_size_about_1_4_gb(self, table):
        assert table.size_mb() == pytest.approx(1.4 * 1024, rel=0.02)

    def test_size_ordering_matches_paper(self, table, cost_model):
        sizes = [
            cost_model.index_size_mb(table, IndexSpec("lineitem", (c,)))
            for c in TABLE5_COLUMNS
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestIndexCostModel:
    @pytest.fixture
    def table(self):
        return lineitem_table(scale=0.1)

    @pytest.fixture
    def cost_model(self):
        return IndexCostModel(PAPER_PRICING)

    def test_build_time_positive_and_additive(self, table, cost_model):
        spec = IndexSpec("lineitem", ("orderkey",))
        per_partition = [
            cost_model.partition_model(table, spec, p).total_build_seconds
            for p in table.partitions
        ]
        assert all(t > 0 for t in per_partition)
        total = cost_model.build_time_quanta(table, spec)
        assert total == pytest.approx(sum(per_partition) / 60.0)

    def test_io_time_uses_network(self, table, cost_model):
        spec = IndexSpec("lineitem", ("orderkey",))
        p = table.partitions[0]
        io = cost_model.io_seconds(table, spec, p)
        moved_mb = (
            p.num_records * table.statistics.record_bytes() / 2**20
            + cost_model.partition_size_mb(table, spec, p)
        )
        assert io == pytest.approx(moved_mb / 125.0)

    def test_storage_cost_scales_with_window(self, table, cost_model):
        spec = IndexSpec("lineitem", ("orderkey",))
        c1 = cost_model.storage_cost_dollars(table, spec, 1.0)
        c10 = cost_model.storage_cost_dollars(table, spec, 10.0)
        assert c10 == pytest.approx(10 * c1)

    def test_hash_kind_supported(self, table, cost_model):
        spec = IndexSpec("lineitem", ("orderkey",), kind=IndexKind.HASH)
        assert cost_model.index_size_mb(table, spec) > 0


class TestIndexRuntimeState:
    @pytest.fixture
    def index(self):
        table = lineitem_table(scale=0.5)
        return Index(spec=IndexSpec("lineitem", ("orderkey",)), table=table)

    def test_starts_unbuilt(self, index):
        assert not index.any_built
        assert index.built_fraction() == 0.0
        assert index.unbuilt_partition_ids() == [p.partition_id for p in index.table.partitions]

    def test_incremental_build(self, index):
        first = index.table.partitions[0].partition_id
        index.mark_built(first, time=10.0)
        assert index.any_built and not index.fully_built
        assert 0 < index.built_fraction() < 1
        assert index.creation_times() == [10.0]

    def test_fully_built(self, index):
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=1.0)
        assert index.fully_built
        assert index.built_fraction() == pytest.approx(1.0)

    def test_invalidate_partition(self, index):
        index.mark_built(0, time=1.0)
        index.invalidate_partition(0)
        assert not index.any_built

    def test_drop_all(self, index):
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=1.0)
        index.drop_all()
        assert not index.any_built


class TestLineitemRows:
    def test_deterministic(self):
        a = generate_lineitem_rows(500, seed=3)
        b = generate_lineitem_rows(500, seed=3)
        assert (a.orderkey == b.orderkey).all()
        assert a.comment == b.comment

    def test_orderkeys_nondecreasing(self):
        rows = generate_lineitem_rows(2000, seed=1)
        assert (rows.orderkey[1:] >= rows.orderkey[:-1]).all()

    def test_row_count(self):
        assert len(generate_lineitem_rows(123)) == 123

    def test_column_access(self):
        rows = generate_lineitem_rows(10)
        assert len(rows.column("comment")) == 10
        with pytest.raises(KeyError):
            rows.column("nope")

    def test_field_bytes_sum_to_row_size(self):
        total = sum(LINEITEM_FIELD_BYTES.values())
        assert total == pytest.approx(125.0, abs=0.5)
        assert lineitem_statistics().record_bytes() == pytest.approx(total)


@given(
    n=st.integers(min_value=1, max_value=10_000_000),
    key=st.floats(min_value=1.0, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_property_btree_size_monotone_in_records(n, key):
    smaller = btree_size_bytes(n, key)
    bigger = btree_size_bytes(n + 1000, key)
    assert bigger >= smaller
    assert smaller >= n * index_record_bytes(key) * 0.99
