"""Tests for the whole-program flow analysis (``repro-lint --flow``).

Fixture-driven like ``test_analysis.py``, but over *mini projects*:
each directory under ``tests/flow_fixtures/`` is a multi-module tree
(``# lint-module:`` headers give the module names) exercising exactly
one project rule, good and bad. On top of that: the live ``src/repro``
tree must pass the flow gate against the checked-in baseline, the
ratchet semantics must hold, and the JSON report must be byte-identical
across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.flow import FlowFinding, analyze, run_project_rules
from repro.analysis.flow.baseline import (
    UNREVIEWED,
    fingerprint,
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.flow.effects import RESOURCES, parse_effect, validate_effects
from repro.analysis.flow.project import parse_paths
from repro.analysis.registry import SUPPRESSION_CODE, project_codes
from repro.analysis.runner import github_annotation, main, run_gate
from repro.explore import hooks

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "flow-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"

PROJECT_RULE_CODES = ("EFF01", "EFF02", "PUR01")


def run_fixture(name: str, code: str) -> list[FlowFinding]:
    files = sorted((FIXTURES / name).glob("*.py"))
    assert files, f"no fixture files under {FIXTURES / name}"
    contexts, broken = parse_paths(files)
    assert broken == [], broken
    return run_project_rules(analyze(contexts), select=frozenset({code}))


# ----------------------------------------------------------------------
# Fixture-driven project-rule self-tests
# ----------------------------------------------------------------------
def test_registered_project_rules_match_documented_codes() -> None:
    assert tuple(sorted(project_codes())) == PROJECT_RULE_CODES


def test_every_project_rule_has_bad_and_good_fixture_pair() -> None:
    for code in PROJECT_RULE_CODES:
        assert (FIXTURES / f"{code.lower()}_bad").is_dir()
        assert (FIXTURES / f"{code.lower()}_good").is_dir()
    # SUP01 is runner-level, so its pair are single gate-run files.
    assert (FIXTURES / "sup01_bad.py").is_file()
    assert (FIXTURES / "sup01_good.py").is_file()


@pytest.mark.parametrize("code", PROJECT_RULE_CODES)
def test_good_fixture_is_clean(code: str) -> None:
    findings = run_fixture(f"{code.lower()}_good", code)
    detail = "\n".join(f.diagnostic.format() for f in findings)
    assert findings == [], f"findings were:\n{detail}"


def test_eff01_bad_names_the_leaking_call_chain() -> None:
    findings = run_fixture("eff01_bad", "EFF01")
    assert [f.fingerprint for f in findings] == [
        "EFF01|fix.service|build|catalog:w",
        "EFF01|fix.service|delete|undeclared",
    ]
    leak = findings[0].diagnostic.message
    # The under-declared effect leaks through a helper in another
    # module; the diagnostic must spell out the whole chain.
    assert "'catalog:w'" in leak
    assert "fix.service.Service._iter_build" in leak
    assert "fix.helpers.mark_built" in leak
    assert "mark_built" in leak and "catalog" in leak


def test_pur01_bad_catches_rng_two_calls_deep() -> None:
    findings = run_fixture("pur01_bad", "PUR01")
    assert [f.fingerprint for f in findings] == [
        "PUR01|repro.core.simulator|estimate|rng"
    ]
    chain = findings[0].diagnostic.message
    # sink -> helper -> helper -> primitive: every hop must be named.
    assert "repro.core.simulator.estimate" in chain
    assert "repro.core.simutil.sample" in chain
    assert "repro.core.simutil.draw" in chain
    assert "random.random" in chain


def test_eff02_bad_flags_the_multi_resource_write_set() -> None:
    findings = run_fixture("eff02_bad", "EFF02")
    assert [f.fingerprint for f in findings] == [
        "EFF02|fix.badsvc|build|catalog+storage"
    ]
    message = findings[0].diagnostic.message
    assert "catalog" in message and "storage" in message
    assert "independent" in message


# ----------------------------------------------------------------------
# The effect lattice and its runtime mirror
# ----------------------------------------------------------------------
def test_runtime_lattice_mirrors_static_lattice() -> None:
    assert hooks.EFFECT_RESOURCES == RESOURCES


def test_effect_parsing_round_trip() -> None:
    assert parse_effect("storage:w") == ("storage", "w")
    assert validate_effects(["catalog:r", "rng:w"]) == {"catalog:r", "rng:w"}
    with pytest.raises(ValueError, match="invalid effect"):
        parse_effect("storage:x")
    with pytest.raises(ValueError, match="invalid effect"):
        parse_effect("disk:w")


def test_declared_effects_rejects_typos_at_runtime() -> None:
    assert hooks.declared_effects("storage:w") == frozenset({"storage:w"})
    with pytest.raises(ValueError, match="invalid declared effect"):
        hooks.declared_effects("storge:w")


# ----------------------------------------------------------------------
# The live tree passes its own flow gate (with the checked-in baseline)
# ----------------------------------------------------------------------
def test_live_tree_passes_flow_gate_with_baseline() -> None:
    result = run_gate([SRC_TREE], flow=True, baseline_path=BASELINE)
    errors = [d for d in result.diagnostics if d.severity == "error"]
    assert errors == [], "\n".join(d.format() for d in errors)
    assert result.flow is not None
    kinds = sorted(row["kind"] for row in result.flow["actions"])
    assert kinds == [
        "build", "delete", "history", "kill", "slotfill", "watchdog_delete",
    ]
    # Every service action resolved its generator and has a declaration
    # the checker proved sound (inferred subset of declared).
    for row in result.flow["actions"]:
        assert row["generator"] is not None, row
        assert row["declared"] is not None, row
        assert set(row["inferred"]) <= set(row["declared"]), row


def test_live_baseline_entries_are_all_justified() -> None:
    baseline = load_baseline(BASELINE)
    assert baseline, "expected enumerated EFF02 audit entries"
    for fp, justification in baseline.items():
        assert justification and justification != UNREVIEWED, fp


# ----------------------------------------------------------------------
# Ratchet semantics
# ----------------------------------------------------------------------
def _gate_on_eff02_bad(tmp_path: Path, baseline_text: str | None):
    baseline = tmp_path / "baseline.json"
    if baseline_text is not None:
        baseline.write_text(baseline_text)
    return run_gate(
        [FIXTURES / "eff02_bad"],
        select=frozenset({"EFF02"}),
        flow=True,
        baseline_path=baseline,
    )


def test_new_finding_fails_without_baseline(tmp_path: Path) -> None:
    result = _gate_on_eff02_bad(tmp_path, None)
    assert result.failed
    assert [d.code for d in result.diagnostics] == ["EFF02"]


def test_baselined_finding_passes_and_is_enumerated(tmp_path: Path) -> None:
    fp = "EFF02|fix.badsvc|build|catalog+storage"
    result = _gate_on_eff02_bad(tmp_path, render_baseline([fp], {}))
    assert not result.failed
    assert result.flow is not None
    assert result.flow["baselined"] == [fp]
    # Informationally present in the report, marked as baselined.
    assert [f["baselined"] for f in result.flow["findings"]] == [True]


def test_stale_baseline_entry_fails_the_ratchet(tmp_path: Path) -> None:
    fp = "EFF02|fix.badsvc|build|catalog+storage"
    gone = fingerprint("EFF02", "fix.badsvc", "vanished", "catalog+storage")
    result = _gate_on_eff02_bad(tmp_path, render_baseline([fp, gone], {}))
    assert result.failed
    stale = [d for d in result.diagnostics if "stale baseline entry" in d.message]
    assert len(stale) == 1 and gone in stale[0].message


def test_update_baseline_rewrites_and_preserves_justifications(
    tmp_path: Path,
) -> None:
    fp = "EFF02|fix.badsvc|build|catalog+storage"
    gone = fingerprint("EFF02", "fix.badsvc", "vanished", "catalog+storage")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        render_baseline([fp, gone], {fp: "audited: per-index keys"})
    )
    result = run_gate(
        [FIXTURES / "eff02_bad"],
        select=frozenset({"EFF02"}),
        flow=True,
        baseline_path=baseline,
        update_baseline=True,
    )
    assert not result.failed
    assert result.baseline_written == str(baseline)
    rewritten = load_baseline(baseline)
    assert rewritten == {fp: "audited: per-index keys"}  # stale entry dropped


def test_select_scopes_staleness_to_the_rules_that_ran(tmp_path: Path) -> None:
    # Under --select PUR01 the EFF02 rule never runs, so its baseline
    # entries produce no findings — that must not read as stale debt.
    fp = "EFF02|fix.badsvc|build|catalog+storage"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(render_baseline([fp], {fp: "audited"}))
    result = run_gate(
        [FIXTURES / "eff02_bad"],
        select=frozenset({"PUR01"}),
        flow=True,
        baseline_path=baseline,
    )
    assert not result.failed
    assert result.flow is not None
    assert result.flow["stale_baseline"] == []


def test_update_baseline_under_select_keeps_other_rules_entries(
    tmp_path: Path,
) -> None:
    fp = "EFF02|fix.badsvc|build|catalog+storage"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(render_baseline([fp], {fp: "audited"}))
    result = run_gate(
        [FIXTURES / "eff02_bad"],
        select=frozenset({"PUR01"}),
        flow=True,
        baseline_path=baseline,
        update_baseline=True,
    )
    assert not result.failed
    # The EFF02 entry belongs to a rule that did not run; the rewrite
    # must not silently drop it.
    assert load_baseline(baseline) == {fp: "audited"}


def test_malformed_baseline_is_an_error(tmp_path: Path) -> None:
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_baseline(bad)


def test_split_findings_partitions() -> None:
    fps = ["A|m|x|1", "B|m|y|2"]
    new, baselined, stale = split_findings(fps, {"B|m|y|2": "ok", "C|m|z|3": "?"})
    assert new == [0]
    assert baselined == ["B|m|y|2"]
    assert stale == ["C|m|z|3"]


# ----------------------------------------------------------------------
# SUP01: stale suppressions
# ----------------------------------------------------------------------
def test_stale_suppression_warns_by_default() -> None:
    result = run_gate([FIXTURES / "sup01_bad.py"])
    sup = [d for d in result.diagnostics if d.code == SUPPRESSION_CODE]
    assert len(sup) == 1 and sup[0].severity == "warning"
    assert not result.failed  # warnings do not fail the gate


def test_stale_suppression_fails_under_strict() -> None:
    result = run_gate([FIXTURES / "sup01_bad.py"], strict_suppressions=True)
    sup = [d for d in result.diagnostics if d.code == SUPPRESSION_CODE]
    assert len(sup) == 1 and sup[0].severity == "error"
    assert result.failed


def test_live_suppression_is_not_stale() -> None:
    result = run_gate([FIXTURES / "sup01_good.py"], strict_suppressions=True)
    assert result.diagnostics == [], [d.format() for d in result.diagnostics]


def test_docstring_mention_is_not_a_suppression() -> None:
    # The suppression syntax quoted inside a docstring must be treated
    # as documentation: neither honoured nor reported as stale.
    source = (
        '"""Docs quote the syntax:  # repro-lint: disable=DET01 -- why."""\n'
        "X = 1\n"
    )
    from repro.analysis.suppressions import parse_suppressions

    assert parse_suppressions(source) == []


def test_live_tree_has_no_stale_suppressions() -> None:
    result = run_gate([SRC_TREE], strict_suppressions=True)
    sup = [d for d in result.diagnostics if d.code == SUPPRESSION_CODE]
    assert sup == [], "\n".join(d.format() for d in sup)


# ----------------------------------------------------------------------
# Determinism of the report
# ----------------------------------------------------------------------
def _flow_cli_args(report: Path) -> list[str]:
    return [
        str(SRC_TREE),
        "--flow",
        "--no-typecheck",
        "--baseline",
        str(BASELINE),
        "--json",
        str(report),
    ]


def test_flow_report_is_identical_across_runs(tmp_path: Path) -> None:
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert main(_flow_cli_args(first)) == 0
    assert main(_flow_cli_args(second)) == 0
    assert first.read_bytes() == second.read_bytes()
    report = json.loads(first.read_text())
    assert report["flow"] is not None
    assert len(report["flow"]["actions"]) == 6


def _hashseed_run(seed: str, report: Path) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable, "-m", "repro.analysis", *_flow_cli_args(report)],
        cwd=REPO_ROOT,
        env=env,
        check=True,
        capture_output=True,
    )
    return report.read_bytes()


def test_flow_report_is_stable_under_hashseed(tmp_path: Path) -> None:
    a = _hashseed_run("0", tmp_path / "seed0.json")
    b = _hashseed_run("424242", tmp_path / "seed1.json")
    assert a == b


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_github_annotation_format() -> None:
    from repro.analysis.diagnostics import Diagnostic

    diag = Diagnostic(
        path="src/x.py", line=3, col=7, code="EFF01", message="a\nb%c"
    )
    assert github_annotation(diag) == (
        "::error file=src/x.py,line=3,col=7,title=EFF01::a%0Ab%25c"
    )
    warn = Diagnostic(
        path="src/x.py", line=1, col=1, code="SUP01",
        message="stale", severity="warning",
    )
    assert github_annotation(warn).startswith("::warning ")


def test_cli_github_format_emits_annotations(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    baseline = tmp_path / "baseline.json"
    code = main(
        [
            str(FIXTURES / "eff02_bad"),
            "--select",
            "EFF02",
            "--format",
            "github",
            "--baseline",
            str(baseline),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=" in out and "title=EFF02" in out


def test_cli_selecting_flow_rule_implies_flow_leg(
    tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    code = main(
        [
            str(FIXTURES / "pur01_bad"),
            "--select",
            "PUR01",
            "--baseline",
            str(tmp_path / "baseline.json"),
        ]
    )
    assert code == 1
    assert "PUR01" in capsys.readouterr().out
