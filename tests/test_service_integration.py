"""Integration tests: the full QaaS service loop on small workloads."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.core.config import ExperimentConfig
from repro.core.service import QaaSService, Strategy
from repro.dataflow.client import ArrivalEvent, build_workload


def small_config(horizon_quanta=30, **overrides):
    from dataclasses import replace

    cfg = ExperimentConfig(
        total_time_s=horizon_quanta * 60.0,
        max_skyline=2,
        scheduler_containers=10,
        max_candidates=40,
        max_queued_gain=10,
        seed=5,
    )
    return replace(cfg, **overrides) if overrides else cfg


def events_for(apps, gap_s=120.0):
    return [ArrivalEvent(time=(i + 1) * gap_s, app=app) for i, app in enumerate(apps)]


def run(strategy, apps=("montage",) * 6, horizon=30, **cfg_overrides):
    cfg = small_config(horizon, **cfg_overrides)
    workload = build_workload(cfg.pricing, seed=cfg.seed)
    service = QaaSService(workload, cfg, strategy)
    return service.run(events_for(apps)), service


class TestNoIndexBaseline:
    def test_executes_all_dataflows(self):
        metrics, _ = run(Strategy.NO_INDEX)
        assert len(metrics.outcomes) == 6
        assert metrics.indexes_created == 0
        assert metrics.storage_dollars() == 0.0

    def test_outcomes_are_causal(self):
        metrics, _ = run(Strategy.NO_INDEX)
        for o in metrics.outcomes:
            assert o.started_at >= o.issued_at
            assert o.finished_at > o.started_at
            assert o.money_quanta > 0

    def test_horizon_cutoff(self):
        metrics, _ = run(Strategy.NO_INDEX, horizon=3)
        assert metrics.num_finished <= len(metrics.outcomes)


class TestGainStrategy:
    def test_builds_indexes_for_repeated_workload(self):
        metrics, service = run(Strategy.GAIN, apps=("montage",) * 8, horizon=60)
        assert metrics.indexes_created > 0
        assert service.catalog.built_indexes()
        assert metrics.storage_dollars() > 0

    def test_built_indexes_accelerate_later_dataflows(self):
        gain, _ = run(Strategy.GAIN, apps=("montage",) * 8, horizon=60)
        none, _ = run(Strategy.NO_INDEX, apps=("montage",) * 8, horizon=60)
        later_gain = [o.makespan_quanta for o in gain.outcomes[4:]]
        later_none = [o.makespan_quanta for o in none.outcomes[4:]]
        assert np.mean(later_gain) <= np.mean(later_none) + 1e-9

    def test_snapshots_track_index_growth(self):
        metrics, _ = run(Strategy.GAIN, apps=("montage",) * 8, horizon=60)
        built_counts = [s.indexes_built for s in metrics.snapshots]
        assert built_counts[-1] >= built_counts[0]
        assert all(
            a.time <= b.time for a, b in zip(metrics.snapshots, metrics.snapshots[1:])
        )

    def test_deletion_reclaims_storage(self):
        # Montage phase then a long ligo phase: montage indexes fade.
        apps = ("montage",) * 5 + ("ligo",) * 6
        metrics, service = run(
            Strategy.GAIN, apps=apps, horizon=120, fade_quanta=1.0
        )
        if metrics.indexes_deleted:
            live_paths = service.storage.live_paths()
            dropped = [
                n for n, idx in service.catalog.indexes.items()
                if not idx.any_built and n.startswith("montage")
            ]
            for name in dropped:
                assert not any(name in p for p in live_paths)

    def test_history_populated(self):
        _, service = run(Strategy.GAIN, apps=("montage",) * 6)
        assert len(service.tuner.history) > 0


class TestRandomStrategy:
    def test_random_builds_and_kills(self):
        metrics, _ = run(Strategy.RANDOM, apps=("cybershake",) * 6, horizon=80)
        assert metrics.total_ops() >= 600
        # Random packing ignores fit, so some builds are typically cut.
        assert metrics.killed_ops() >= 0

    def test_random_never_deletes(self):
        metrics, _ = run(Strategy.RANDOM, apps=("montage",) * 6)
        assert metrics.indexes_deleted == 0


class TestGainNoDelete:
    def test_never_deletes(self):
        apps = ("montage",) * 5 + ("ligo",) * 5
        metrics, _ = run(Strategy.GAIN_NO_DELETE, apps=apps, horizon=120)
        assert metrics.indexes_deleted == 0


class TestMetricsAccounting:
    def test_total_ops_includes_builds(self):
        metrics, _ = run(Strategy.GAIN, apps=("montage",) * 8, horizon=60)
        df_ops = sum(o.ops_executed for o in metrics.outcomes)
        assert metrics.total_ops() >= df_ops

    def test_killed_percentage_bounds(self):
        metrics, _ = run(Strategy.RANDOM, apps=("cybershake",) * 4, horizon=60)
        assert 0.0 <= metrics.killed_percentage() <= 100.0

    def test_cost_per_dataflow_zero_when_nothing_finished(self):
        cfg = small_config(1)
        workload = build_workload(cfg.pricing, seed=1)
        service = QaaSService(workload, cfg, Strategy.NO_INDEX)
        metrics = service.run([ArrivalEvent(time=1e9, app="montage")])
        assert metrics.num_finished == 0
        assert metrics.cost_per_dataflow_quanta() == 0.0

    def test_concurrent_execution_overlaps(self):
        # Two arrivals near t=0 should overlap, not serialise.
        cfg = small_config(60)
        workload = build_workload(cfg.pricing, seed=2)
        service = QaaSService(workload, cfg, Strategy.NO_INDEX)
        metrics = service.run(
            [ArrivalEvent(time=1.0, app="montage"), ArrivalEvent(time=2.0, app="montage")]
        )
        first, second = metrics.outcomes
        assert second.started_at < first.finished_at
