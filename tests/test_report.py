"""Tests for the text reporting helpers."""

import pytest

from repro.core.metrics import ServiceMetrics
from repro.report import (
    MetricsRow,
    bar_chart,
    comparison_table,
    metrics_row,
    obs_summary,
    timeseries,
)


class TestBarChart:
    def test_renders_rows(self):
        out = bar_chart([("gain", 10.0), ("no index", 5.0)])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_zero_value_gets_no_bar(self):
        out = bar_chart([("a", 0.0), ("b", 1.0)])
        assert "#" not in out.splitlines()[0]

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_small_positive_value_gets_at_least_one_tick(self):
        # A bar that would round to zero width must still be visible so a
        # tiny-but-real measurement is distinguishable from exactly zero.
        out = bar_chart([("tiny", 0.001), ("big", 1000.0)])
        tiny_line, big_line = out.splitlines()
        assert tiny_line.count("#") == 1
        assert big_line.count("#") == 40

    def test_zero_and_small_positive_render_differently(self):
        out = bar_chart([("zero", 0.0), ("tiny", 1e-9), ("big", 100.0)])
        zero_line, tiny_line, _ = out.splitlines()
        assert "#" not in zero_line
        assert "#" in tiny_line

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_unit_suffix(self):
        out = bar_chart([("a", 1.0)], unit="q")
        assert "q" in out


class TestTimeseries:
    def test_renders_grid(self):
        points = [(float(x), float(x % 5)) for x in range(50)]
        out = timeseries(points, width=40, height=6)
        assert "*" in out
        assert out.count("\n") >= 6

    def test_single_point(self):
        out = timeseries([(1.0, 2.0)])
        assert "*" in out

    def test_empty(self):
        assert timeseries([]) == "(no data)"

    def test_axis_labels_present(self):
        out = timeseries([(0.0, 0.0), (100.0, 10.0)])
        assert "10.0" in out and "0.0" in out


class TestComparisonTable:
    def test_alignment_and_content(self):
        rows = [
            MetricsRow("no index", 42, 162.55, 13.15, 0.0, 0.0),
            MetricsRow("gain", 121, 66.51, 4.69, 2.4, 95.37),
        ]
        out = comparison_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4
        assert "162.55" in out and "121" in out

    def test_empty(self):
        assert comparison_table([]) == "(no data)"

    def test_metrics_row_from_service_metrics(self):
        metrics = ServiceMetrics(strategy="gain", horizon_s=100.0)
        row = metrics_row("gain", metrics)
        assert row.label == "gain"
        assert row.finished == 0
        assert row.cost_per_dataflow_quanta == 0.0


class TestObsSummary:
    def test_counters_histograms_and_events(self):
        snapshot = {
            "counters": {"sim/executions": 8.0, "pool/quanta_paid": 120.0},
            "gauges": {},
            "histograms": {"sim/makespan_s": {"count": 8, "sum": 4302.5, "bounds": [], "counts": []}},
        }
        out = obs_summary(snapshot, {"tuner_decision": 13, "index_build": 307})
        lines = out.splitlines()
        assert lines[0] == "observability summary:"
        # counters are sorted by name
        assert lines[1].split()[0] == "pool/quanta_paid"
        assert lines[2].split()[0] == "sim/executions"
        assert "sim/makespan_s: n=8 sum=4302.5s" in out
        assert "journal events:" in out
        assert "index_build" in out and "307" in out

    def test_empty_snapshot(self):
        out = obs_summary({"counters": {}, "gauges": {}, "histograms": {}})
        assert "(no instruments recorded)" in out
