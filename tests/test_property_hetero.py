"""Property-based tests for the heterogeneous scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.container import ContainerSpec
from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.vmtypes import VMType, default_vm_catalog
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator
from repro.scheduling.hetero import HeterogeneousSkylineScheduler


@st.composite
def layered_dags(draw):
    num_ops = draw(st.integers(min_value=2, max_value=12))
    runtimes = draw(
        st.lists(st.floats(min_value=1.0, max_value=200.0),
                 min_size=num_ops, max_size=num_ops)
    )
    flow = Dataflow(name="h")
    for i, rt in enumerate(runtimes):
        flow.add_operator(Operator(name=f"op{i}", runtime=rt))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    for j in range(1, num_ops):
        for i in range(j):
            if rng.random() < 0.3:
                flow.add_edge(f"op{i}", f"op{j}", data_mb=float(rng.uniform(0, 20)))
    return flow


@given(flow=layered_dags())
@settings(max_examples=30, deadline=None)
def test_property_hetero_skyline_feasible_and_pareto(flow):
    scheduler = HeterogeneousSkylineScheduler(
        PAPER_PRICING, max_skyline=5, max_containers=6
    )
    skyline = scheduler.schedule(flow)
    assert skyline
    points = []
    for schedule in skyline:
        # Every non-optional operator is assigned exactly once.
        names = [a.op_name for a in schedule.assignments]
        assert sorted(names) == sorted(flow.operators)
        # Per-container assignments never overlap.
        per = {}
        for a in schedule.assignments:
            per.setdefault(a.container_id, []).append(a)
        for items in per.values():
            items.sort(key=lambda a: a.start)
            for prev, nxt in zip(items, items[1:]):
                assert nxt.start >= prev.end - 1e-9
        # Every used container has a type; money is positive.
        assert set(per) == set(schedule.container_types)
        points.append((schedule.makespan_seconds(), schedule.money_dollars()))
        assert points[-1][1] > 0
    # Pareto: no point dominates another.
    for i, (t1, m1) in enumerate(points):
        for j, (t2, m2) in enumerate(points):
            if i != j:
                assert not (t2 <= t1 + 1e-9 and m2 < m1 - 1e-9)


@given(flow=layered_dags(), speed=st.floats(min_value=1.5, max_value=4.0))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_property_faster_flavour_never_hurts_fastest_point(flow, speed):
    """Adding a faster flavour to the menu cannot make the fastest
    skyline point slower."""
    base = [VMType("standard", ContainerSpec(), 1.0, 0.1)]
    fast = base + [VMType("big", ContainerSpec(), speed, 0.1 * speed)]
    import copy

    flow2 = copy.deepcopy(flow)
    sky_base = HeterogeneousSkylineScheduler(
        PAPER_PRICING, vm_types=base, max_skyline=5, max_containers=4
    ).schedule(flow)
    sky_fast = HeterogeneousSkylineScheduler(
        PAPER_PRICING, vm_types=fast, max_skyline=5, max_containers=4
    ).schedule(flow2)
    fastest_base = min(s.makespan_seconds() for s in sky_base)
    fastest_fast = min(s.makespan_seconds() for s in sky_fast)
    assert fastest_fast <= fastest_base + 1e-6
