"""Unit tests for the cloud storage service and its billing integral."""

import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.storage import CloudStorage


@pytest.fixture
def storage():
    return CloudStorage(PAPER_PRICING)


class TestLifecycle:
    def test_put_get(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        obj = storage.get("t/a", time=10.0)
        assert obj.size_mb == 100.0
        assert storage.exists("t/a")

    def test_get_missing_raises(self, storage):
        with pytest.raises(KeyError):
            storage.get("nope", time=0.0)

    def test_delete_stops_existence(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.delete("t/a", time=60.0)
        assert not storage.exists("t/a")
        with pytest.raises(KeyError):
            storage.delete("t/a", time=61.0)

    def test_overwrite_bumps_version(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.put("t/a", 50.0, time=60.0)
        assert storage.version_of("t/a") == 1
        assert storage.size_of("t/a") == 50.0

    def test_negative_size_rejected(self, storage):
        with pytest.raises(ValueError):
            storage.put("t/a", -1.0, time=0.0)

    def test_clock_cannot_go_backwards(self, storage):
        storage.put("t/a", 100.0, time=100.0)
        with pytest.raises(ValueError):
            storage.put("t/b", 1.0, time=50.0)


class TestBilling:
    def test_paper_rate_integral(self, storage):
        # 100 MB stored for 10 quanta at $1e-4/MB/quantum = $0.1.
        storage.put("t/a", 100.0, time=0.0)
        cost = storage.storage_cost(until=10 * 60.0)
        assert cost == pytest.approx(0.1)

    def test_deletion_stops_accrual(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.delete("t/a", time=5 * 60.0)
        cost = storage.storage_cost(until=100 * 60.0)
        assert cost == pytest.approx(0.05)

    def test_two_objects_accrue_independently(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.put("t/b", 100.0, time=5 * 60.0)
        cost = storage.storage_cost(until=10 * 60.0)
        assert cost == pytest.approx(0.1 + 0.05)

    def test_cost_is_monotone_in_time(self, storage):
        storage.put("t/a", 10.0, time=0.0)
        c1 = storage.storage_cost(until=60.0)
        c2 = storage.storage_cost(until=120.0)
        assert c2 >= c1

    def test_traffic_counters(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.get("t/a", time=1.0)
        storage.get("t/a", time=2.0)
        assert storage.bytes_uploaded_mb == pytest.approx(100.0)
        assert storage.bytes_downloaded_mb == pytest.approx(200.0)


class TestSnapshot:
    def test_snapshot_reflects_history(self, storage):
        storage.put("t/a", 100.0, time=0.0)
        storage.put("t/b", 50.0, time=100.0)
        storage.delete("t/a", time=200.0)
        assert storage.snapshot(50.0) == {"t/a": 100.0}
        assert storage.snapshot(150.0) == {"t/a": 100.0, "t/b": 50.0}
        assert storage.snapshot(250.0) == {"t/b": 50.0}

    def test_live_paths(self, storage):
        storage.put("t/a", 1.0, time=0.0)
        storage.put("t/b", 1.0, time=0.0)
        storage.delete("t/a", time=1.0)
        assert storage.live_paths() == ["t/b"]
