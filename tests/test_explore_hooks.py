"""Unit tests for the explore hooks leaf: registries, Action, Epoch."""

from __future__ import annotations

import pytest

from repro.explore.hooks import (
    ALL_RESOURCES,
    EFFECT_RESOURCES,
    NOTE_POINTS,
    SYNC_POINTS,
    YIELD_POINTS,
    Action,
    Epoch,
    InterleaveController,
    active_controller,
    all_point_names,
    declared_effects,
    drive,
    install_controller,
    note,
)


def _action(key="build:a:0", kind="build", points=("build.catalog_mark",),
            resources=frozenset({"idx:a"}), entry="build.storage_put",
            stamp=None, log=None):
    def gen():
        for point in points:
            if log is not None:
                log.append(point)
            yield point
        if log is not None:
            log.append("done")

    return Action(key, kind, gen(), resources, entry, stamp=stamp)


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
def test_registries_are_disjoint_and_complete():
    assert len(all_point_names()) == (
        len(YIELD_POINTS) + len(SYNC_POINTS) + len(NOTE_POINTS)
    )
    assert len(set(all_point_names())) == len(all_point_names())


def test_unknown_entry_point_lists_valid_names():
    with pytest.raises(ValueError) as err:
        _action(entry="not.a.point")
    assert "not.a.point" in str(err.value)
    for name in YIELD_POINTS:
        assert name in str(err.value)


def test_unknown_yielded_point_lists_valid_names():
    action = _action(points=("bogus.point",))
    with pytest.raises(ValueError) as err:
        action.advance()
    assert "bogus.point" in str(err.value)
    assert YIELD_POINTS[0] in str(err.value)


def test_unknown_yielded_point_names_the_action_and_its_generator():
    # The error must identify *which* action misbehaved and the origin
    # function of its generator — key alone is useless in a trace with
    # dozens of interleaved actions.
    action = _action(points=("bogus.point",))
    with pytest.raises(ValueError) as err:
        action.advance()
    message = str(err.value)
    assert "action 'build:a:0'" in message
    assert "kind 'build'" in message
    assert "_action.<locals>.gen" in message


def test_action_origin_and_label():
    action = _action()
    assert action.origin.endswith("gen")
    assert action.label.startswith("action 'build:a:0' (kind 'build', gen ")


def test_completed_action_error_names_the_action():
    action = _action(points=())
    assert action.advance() is None
    with pytest.raises(RuntimeError) as err:
        action.advance()
    assert "action 'build:a:0'" in str(err.value)
    assert "already completed" in str(err.value)


def test_declared_effects_attach_to_actions():
    footprint = declared_effects("catalog:w", "storage:w", "billing:w")
    action = Action(
        "build:a:0", "build", iter(()), frozenset({"idx:a"}),
        "build.storage_put", effects=footprint,
    )
    assert action.effects == footprint
    assert _action().effects is None  # declaration is optional
    with pytest.raises(ValueError) as err:
        Action(
            "build:a:0", "build", iter(()), frozenset({"idx:a"}),
            "build.storage_put", effects=frozenset({"catalog:sideways"}),
        )
    assert "catalog:sideways" in str(err.value)
    for resource in EFFECT_RESOURCES:
        assert resource in str(err.value)


def test_service_action_effects_are_wired_through():
    # The service's declared footprints (which EFF01 proves sound
    # statically) must reach the runtime Action objects.
    from repro.core.service import ACTION_EFFECTS

    assert set(ACTION_EFFECTS) == {
        "build", "kill", "history", "delete", "slotfill", "watchdog_delete",
    }
    for kind, effects in ACTION_EFFECTS.items():
        assert effects == declared_effects(*effects), kind


# ----------------------------------------------------------------------
# Action lifecycle
# ----------------------------------------------------------------------
def test_action_advance_walks_the_yield_points():
    log = []
    action = _action(points=("build.catalog_mark",), log=log)
    assert not action.started and not action.done
    assert action.last_point == "build.storage_put"
    assert action.advance() == "build.catalog_mark"
    assert action.started and not action.done
    assert action.advance() is None
    assert action.done and action.last_point is None
    assert log == ["build.catalog_mark", "done"]
    with pytest.raises(RuntimeError):
        action.advance()


def test_drive_runs_to_completion():
    log = []
    action = _action(points=("build.catalog_mark",), log=log)
    drive(action)
    assert action.done
    assert action.steps_run == 2


def test_independence_requires_disjoint_footprints():
    a = _action(key="build:a:0", resources=frozenset({"idx:a"}))
    b = _action(key="build:b:0", resources=frozenset({"idx:b"}))
    conflicting = _action(key="delete:a", resources=frozenset({"idx:a"}))
    assert a.independent(b) and b.independent(a)
    assert not a.independent(conflicting)


def test_all_resources_conflicts_with_everything():
    a = _action(key="slotfill:x", resources=frozenset({ALL_RESOURCES}))
    b = _action(key="build:b:0", resources=frozenset({"idx:b"}))
    assert not a.independent(b)
    assert not b.independent(a)


def test_billing_stamps_make_storage_ops_dependent():
    # Disjoint indexes, but puts at different instants do not commute in
    # the MB*s integral.
    a = _action(key="build:a:0", resources=frozenset({"idx:a"}), stamp=60.0)
    b = _action(key="build:b:0", resources=frozenset({"idx:b"}), stamp=120.0)
    same = _action(key="build:c:0", resources=frozenset({"idx:c"}), stamp=60.0)
    assert not a.independent(b)
    assert a.independent(same)


# ----------------------------------------------------------------------
# Epoch protocol
# ----------------------------------------------------------------------
def test_epoch_without_controller_runs_offers_immediately():
    log = []
    epoch = Epoch("test")
    epoch.offer(_action(log=log))
    assert log == ["build.catalog_mark", "done"]
    # pause/drain/require are no-ops on the canonical path.
    epoch.pause("service.pre_decide")
    epoch.drain("service.step_end")


def test_epoch_validates_sync_sites_under_controller():
    class Recorder(InterleaveController):
        def __init__(self):
            self.calls = []

        def on_offer(self, action):
            self.calls.append(("offer", action.key))

        def on_pause(self, site):
            self.calls.append(("pause", site))

        def on_drain(self, site):
            self.calls.append(("drain", site))

        def on_note(self, point):
            self.calls.append(("note", point))

    recorder = Recorder()
    previous = install_controller(recorder)
    try:
        assert active_controller() is recorder
        epoch = Epoch("test")
        epoch.offer(_action())
        epoch.pause("service.pre_decide")
        epoch.drain("scenario.epoch_end")
        note("tuner.decide")
        with pytest.raises(ValueError) as err:
            epoch.pause("not.a.site")
        assert "not.a.site" in str(err.value)
        assert SYNC_POINTS[0] in str(err.value)
        with pytest.raises(ValueError):
            epoch.drain("also.not.a.site")
        with pytest.raises(ValueError) as err:
            note("not.a.note")
        assert NOTE_POINTS[0] in str(err.value)
    finally:
        install_controller(previous)
    assert recorder.calls == [
        ("offer", "build:a:0"),
        ("pause", "service.pre_decide"),
        ("drain", "scenario.epoch_end"),
        ("note", "tuner.decide"),
    ]


def test_note_is_free_without_controller():
    # No validation on the hot path: unknown names only fail when a
    # controller is installed (mirrors crash_point).
    note("definitely.not.registered")
