"""The identity-schedule anchor: exploration must not perturb defaults.

Two byte-identity properties pin the refactor of the service loop into
interleavable actions:

* a run with **no controller installed** (the production default) and a
  run under a :class:`ScheduleController` with the
  :class:`IdentityStrategy` (option 0 at every choice site) produce
  byte-identical observability artifacts — the identity schedule *is*
  the canonical schedule;
* repeated identity runs are byte-identical to each other (the
  controller holds no hidden state that leaks across runs).
"""

from __future__ import annotations

from dataclasses import replace

from repro import Strategy, prepare_run
from repro.core.config import default_config
from repro.explore.controller import ScheduleController
from repro.explore.hooks import install_controller
from repro.explore.strategies import IdentityStrategy
from repro.obs import Observation, trace_json


def _run_artifacts(controller: ScheduleController | None) -> tuple[str, str, str]:
    """One full (small) service run; returns the three artifact strings."""
    config = replace(default_config(), seed=7, total_time_s=6 * 60.0)
    obs = Observation.recording()
    service, events = prepare_run(
        Strategy.GAIN, "phase", config=config, obs=obs
    )
    previous = install_controller(controller)
    try:
        state = service.begin_run(events)
        while service.step(state):
            pass
        service.finish_run(state)
    finally:
        install_controller(previous)
    return (
        trace_json(obs.tracer),
        obs.journal.to_jsonl(),
        obs.metrics.to_json(),
    )


def test_identity_schedule_matches_controller_free_run():
    plain = _run_artifacts(None)
    identity = _run_artifacts(ScheduleController(IdentityStrategy()))
    assert identity[0] == plain[0], "trace diverged"
    assert identity[1] == plain[1], "journal diverged"
    assert identity[2] == plain[2], "metrics diverged"


def test_identity_schedule_matches_under_por():
    # POR only prunes *non-canonical* options; option 0 must survive at
    # every site, so the identity schedule is unchanged.
    plain = _run_artifacts(None)
    por = _run_artifacts(ScheduleController(IdentityStrategy(), por=True))
    assert por == plain


def test_controller_free_runs_are_reproducible():
    assert _run_artifacts(None) == _run_artifacts(None)
