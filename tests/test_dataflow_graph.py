"""Tests for the dataflow DAG model and operators."""

import pytest

from repro.dataflow.graph import CycleError, Dataflow
from repro.dataflow.operator import DataFile, Operator


def chain(names, runtimes=None):
    flow = Dataflow(name="chain")
    for i, name in enumerate(names):
        rt = runtimes[i] if runtimes else 1.0
        flow.add_operator(Operator(name=name, runtime=rt))
    for a, b in zip(names, names[1:]):
        flow.add_edge(a, b)
    return flow


class TestConstruction:
    def test_duplicate_operator_rejected(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=1.0))
        with pytest.raises(ValueError):
            flow.add_operator(Operator(name="a", runtime=2.0))

    def test_edge_to_unknown_operator(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=1.0))
        with pytest.raises(KeyError):
            flow.add_edge("a", "b")

    def test_self_loop_rejected(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=1.0))
        with pytest.raises(ValueError):
            flow.add_edge("a", "a")

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            Operator(name="a", runtime=-1.0)

    def test_cpu_bounds(self):
        with pytest.raises(ValueError):
            Operator(name="a", runtime=1.0, cpu=0.0)
        with pytest.raises(ValueError):
            Operator(name="a", runtime=1.0, cpu=1.5)

    def test_reads_table_registers_inputs(self):
        flow = Dataflow(name="d")
        op = Operator(name="a", runtime=1.0, reads_table="t",
                      index_speedup={"t__x": 5.0})
        flow.add_operator(op)
        assert flow.input_tables == {"t"}
        assert flow.candidate_indexes == {"t__x"}


class TestStructure:
    def test_topological_order_of_chain(self):
        flow = chain(["a", "b", "c"])
        assert flow.topological_order() == ["a", "b", "c"]

    def test_cycle_detected(self):
        flow = chain(["a", "b"])
        flow.add_edge("b", "a")
        with pytest.raises(CycleError):
            flow.topological_order()

    def test_entry_and_exit(self):
        flow = chain(["a", "b", "c"])
        assert flow.entry_operators() == ["a"]
        assert flow.exit_operators() == ["c"]

    def test_diamond_levels(self):
        flow = Dataflow(name="d")
        for name in "abcd":
            flow.add_operator(Operator(name=name, runtime=1.0))
        flow.add_edge("a", "b")
        flow.add_edge("a", "c")
        flow.add_edge("b", "d")
        flow.add_edge("c", "d")
        assert flow.levels() == [["a"], ["b", "c"], ["d"]]

    def test_predecessors_successors(self):
        flow = chain(["a", "b", "c"])
        assert flow.predecessors("b") == ["a"]
        assert flow.successors("b") == ["c"]


class TestAggregates:
    def test_total_runtime(self):
        flow = chain(["a", "b"], runtimes=[2.0, 3.0])
        assert flow.total_runtime() == 5.0

    def test_critical_path_of_chain_is_total(self):
        flow = chain(["a", "b", "c"], runtimes=[1.0, 2.0, 3.0])
        assert flow.critical_path() == 6.0

    def test_critical_path_of_parallel_ops_is_max(self):
        flow = Dataflow(name="d")
        flow.add_operator(Operator(name="a", runtime=5.0))
        flow.add_operator(Operator(name="b", runtime=3.0))
        assert flow.critical_path() == 5.0

    def test_critical_path_bounded_by_total(self):
        flow = Dataflow(name="d")
        for name in "abcde":
            flow.add_operator(Operator(name=name, runtime=2.0))
        flow.add_edge("a", "b")
        flow.add_edge("a", "c")
        flow.add_edge("b", "d")
        assert flow.critical_path() <= flow.total_runtime()


class TestIndexSpeedups:
    def _op(self):
        return Operator(
            name="scan",
            runtime=100.0,
            inputs=(DataFile("t1", 80.0), DataFile("t2", 20.0)),
            index_speedup={"t1__x": 10.0, "t2__y": 4.0},
        )

    def test_no_indexes_available(self):
        op = self._op()
        assert op.runtime_with_indexes(set()) == 100.0
        assert op.runtime_with_indexes(None) == 100.0

    def test_one_index_accelerates_its_share(self):
        op = self._op()
        # t1 share is 80% of the runtime, sped up 10x; t2 share untouched.
        expected = 100.0 * (0.8 / 10.0 + 0.2)
        assert op.runtime_with_indexes({"t1__x"}) == pytest.approx(expected)

    def test_both_indexes(self):
        op = self._op()
        expected = 100.0 * (0.8 / 10.0 + 0.2 / 4.0)
        assert op.runtime_with_indexes({"t1__x", "t2__y"}) == pytest.approx(expected)

    def test_partial_fraction_interpolates(self):
        op = self._op()
        full = op.runtime_with_indexes({"t1__x"})
        half = op.runtime_with_indexes({"t1__x"}, fractions={"t1__x": 0.5})
        none = op.runtime
        assert full < half < none

    def test_speedup_below_one_ignored(self):
        op = Operator(
            name="scan", runtime=10.0,
            inputs=(DataFile("t", 1.0),),
            index_speedup={"t__x": 0.5},
        )
        assert op.runtime_with_indexes({"t__x"}) == 10.0

    def test_best_index_for(self):
        op = Operator(
            name="scan", runtime=10.0,
            inputs=(DataFile("t", 1.0),),
            index_speedup={"t__x": 5.0, "t__y": 50.0},
        )
        name, factor = op.best_index_for("t", {"t__x", "t__y"}, None)
        assert name == "t__y"
        assert factor == pytest.approx(50.0)

    def test_input_weights_sum_to_one(self):
        op = self._op()
        assert sum(op.input_weights().values()) == pytest.approx(1.0)

    def test_input_weights_equal_when_sizes_zero(self):
        op = Operator(name="a", runtime=1.0,
                      inputs=(DataFile("x", 0.0), DataFile("y", 0.0)))
        assert op.input_weights() == {"x": 0.5, "y": 0.5}
