"""Tests for estimation-error perturbation and dataflow scaling."""

import numpy as np
import pytest

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.dataflow.transform import scale_dataflow
from repro.scheduling.estimation import perturb_dataflow, recost_schedule_on_actuals
from repro.scheduling.skyline import SkylineScheduler


@pytest.fixture
def flow():
    f = Dataflow(name="d")
    f.add_operator(Operator(name="a", runtime=100.0,
                            inputs=(DataFile("t", 10.0),),
                            index_speedup={"t__x": 5.0}))
    f.add_operator(Operator(name="b", runtime=50.0))
    f.add_edge("a", "b", data_mb=20.0)
    return f


class TestPerturbation:
    def test_zero_error_is_identity(self, flow):
        rng = np.random.default_rng(0)
        out = perturb_dataflow(flow, cpu_error=0.0, data_error=0.0, rng=rng)
        assert out.operators["a"].runtime == 100.0
        assert out.operators["a"].inputs[0].size_mb == 10.0
        assert out.edges[0].data_mb == 20.0

    def test_error_bounds_respected(self, flow):
        rng = np.random.default_rng(1)
        for _ in range(20):
            out = perturb_dataflow(flow, cpu_error=0.1, data_error=0.2, rng=rng)
            assert 90.0 <= out.operators["a"].runtime <= 110.0
            assert 8.0 <= out.operators["a"].inputs[0].size_mb <= 12.0
            assert 16.0 <= out.edges[0].data_mb <= 24.0

    def test_structure_preserved(self, flow):
        rng = np.random.default_rng(2)
        out = perturb_dataflow(flow, cpu_error=0.5, data_error=0.5, rng=rng)
        assert set(out.operators) == set(flow.operators)
        assert len(out.edges) == len(flow.edges)
        out.validate()
        assert out.operators["a"].index_speedup == {"t__x": 5.0}

    def test_negative_error_rejected(self, flow):
        with pytest.raises(ValueError):
            perturb_dataflow(flow, cpu_error=-0.1, data_error=0.0,
                             rng=np.random.default_rng(0))

    def test_original_untouched(self, flow):
        rng = np.random.default_rng(3)
        perturb_dataflow(flow, cpu_error=0.9, data_error=0.9, rng=rng)
        assert flow.operators["a"].runtime == 100.0


class TestRecost:
    def test_recost_zero_error_reproduces_objectives(self, flow):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2)
        schedule = min(scheduler.schedule(flow), key=lambda s: s.makespan_seconds())
        actual = recost_schedule_on_actuals(schedule, flow, net_bw_mb_s=125.0)
        assert actual.makespan_seconds() == pytest.approx(schedule.makespan_seconds())
        assert actual.money_quanta() == schedule.money_quanta()

    def test_recost_respects_dependencies(self, flow):
        scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=2)
        schedule = min(scheduler.schedule(flow), key=lambda s: s.makespan_seconds())
        rng = np.random.default_rng(4)
        perturbed = perturb_dataflow(flow, cpu_error=0.5, data_error=0.5, rng=rng)
        actual = recost_schedule_on_actuals(schedule, perturbed, net_bw_mb_s=125.0)
        actual.validate(net_bw_mb_s=125.0)


class TestScaling:
    def test_cpu_scaling(self, flow):
        out = scale_dataflow(flow, cpu_factor=2.0)
        assert out.operators["a"].runtime == 200.0
        assert out.operators["a"].inputs[0].size_mb == 10.0

    def test_data_scaling_covers_edges_and_inputs(self, flow):
        out = scale_dataflow(flow, data_factor=10.0)
        assert out.edges[0].data_mb == 200.0
        assert out.operators["a"].inputs[0].size_mb == 100.0

    def test_input_factor_decoupled(self, flow):
        out = scale_dataflow(flow, data_factor=10.0, input_factor=0.5)
        assert out.edges[0].data_mb == 200.0
        assert out.operators["a"].inputs[0].size_mb == 5.0

    def test_candidate_indexes_preserved(self, flow):
        flow.candidate_indexes.add("t__x")
        out = scale_dataflow(flow, cpu_factor=3.0)
        assert out.candidate_indexes == {"t__x"}

    def test_rejects_nonpositive_factors(self, flow):
        with pytest.raises(ValueError):
            scale_dataflow(flow, cpu_factor=0.0)
        with pytest.raises(ValueError):
            scale_dataflow(flow, data_factor=-1.0)

    def test_scaled_name(self, flow):
        out = scale_dataflow(flow, cpu_factor=2.0, name="custom")
        assert out.name == "custom"
