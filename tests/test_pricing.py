"""Unit tests for the cloud pricing model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cloud.pricing import PAPER_PRICING, PricingModel


class TestUnitConversions:
    def test_quanta_round_trip(self):
        p = PricingModel(quantum_seconds=60.0)
        assert p.quanta(120.0) == pytest.approx(2.0)
        assert p.seconds(p.quanta(73.0)) == pytest.approx(73.0)

    def test_money_quanta_round_trip(self):
        p = PAPER_PRICING
        assert p.money_to_quanta(p.quanta_to_money(5.0)) == pytest.approx(5.0)
        assert p.quanta_to_money(1) == pytest.approx(0.1)

    def test_quanta_ceil_rounds_up(self):
        p = PricingModel(quantum_seconds=60.0)
        assert p.quanta_ceil(1.0) == 1
        assert p.quanta_ceil(60.0) == 1
        assert p.quanta_ceil(60.1) == 2
        assert p.quanta_ceil(119.9) == 2

    def test_quanta_ceil_zero_still_charges_one_quantum(self):
        assert PAPER_PRICING.quanta_ceil(0.0) == 1

    def test_quanta_ceil_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_PRICING.quanta_ceil(-1.0)


class TestCharges:
    def test_compute_cost(self):
        assert PAPER_PRICING.compute_cost(10) == pytest.approx(1.0)

    def test_compute_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_PRICING.compute_cost(-1)

    def test_storage_cost_paper_rate(self):
        # $1e-4 per MB per quantum (Table 3).
        assert PAPER_PRICING.storage_cost(100.0, 10.0) == pytest.approx(0.1)

    def test_storage_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_PRICING.storage_cost(-1.0, 1.0)
        with pytest.raises(ValueError):
            PAPER_PRICING.storage_cost(1.0, -1.0)


class TestValidation:
    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError):
            PricingModel(quantum_seconds=0.0)

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            PricingModel(quantum_price=-0.1)
        with pytest.raises(ValueError):
            PricingModel(storage_price_mb_quantum=-1e-4)


class TestMonthlyConversion:
    def test_paper_formula(self):
        # Mst = (MC * 12 * Q) / (365.25 * 24 * 60), Q in minutes.
        model = PricingModel.from_monthly_storage_price(10.0, quantum_seconds=60.0)
        expected_gb = 10.0 * 12 * 1 / (365.25 * 24 * 60)
        assert model.storage_price_mb_quantum == pytest.approx(expected_gb / 1024.0)

    def test_longer_quantum_costs_proportionally_more(self):
        m1 = PricingModel.from_monthly_storage_price(10.0, quantum_seconds=60.0)
        m5 = PricingModel.from_monthly_storage_price(10.0, quantum_seconds=300.0)
        ratio = m5.storage_price_mb_quantum / m1.storage_price_mb_quantum
        assert ratio == pytest.approx(5.0)


@given(seconds=st.floats(min_value=0.001, max_value=1e6))
def test_quanta_ceil_covers_duration(seconds):
    p = PAPER_PRICING
    q = p.quanta_ceil(seconds)
    assert q * p.quantum_seconds >= seconds - 1e-6
    assert (q - 1) * p.quantum_seconds < seconds or q == 1


@given(
    mb=st.floats(min_value=0, max_value=1e6),
    quanta=st.floats(min_value=0, max_value=1e5),
)
def test_storage_cost_is_bilinear(mb, quanta):
    p = PAPER_PRICING
    assert p.storage_cost(mb, quanta) == pytest.approx(
        mb * quanta * p.storage_price_mb_quantum
    )
    assert p.storage_cost(2 * mb, quanta) == pytest.approx(2 * p.storage_cost(mb, quanta))
