"""Exploration tests for the multi-tenant bulkhead scenario.

The ``tenants`` scenario interleaves two tenant services' action
streams through shared epochs; the cross-tenant oracle must stay silent
for every schedule (bulkheads share nothing), and must fire when two
tenants' state digests move in one micro-step.
"""

from __future__ import annotations

from repro.explore import Scenario, explore, run_schedule
from repro.explore.hooks import Action
from repro.explore.oracle import CrossTenantOracle
from repro.explore.strategies import DfsStrategy, DfsTree


class _FakeIndex:
    def __init__(self, built: int) -> None:
        self._built = built

    def built_partition_ids(self):
        return list(range(self._built))


class _FakeService:
    """Just enough surface for the oracle's integer digests."""

    def __init__(self) -> None:
        self.catalog = type(
            "Catalog", (), {"indexes": {"ix": _FakeIndex(0)}}
        )()
        self._live = 0

    def build(self) -> None:
        self.catalog.indexes["ix"]._built += 1
        self._live += 1

    @property
    def storage(self):
        outer = self

        class _Storage:
            @property
            def live_count(self) -> int:
                return outer._live

        return _Storage()


def _action() -> Action:
    return Action(
        key="build:ix:0",
        kind="build",
        gen=iter(()),
        resources=frozenset(),
        entry="build.storage_put",
    )


class TestCrossTenantOracle:
    def test_silent_when_one_tenant_moves(self):
        a, b = _FakeService(), _FakeService()
        oracle = CrossTenantOracle([a, b])
        a.build()
        assert oracle.on_step(_action()) == []
        b.build()
        assert oracle.on_step(_action()) == []

    def test_fires_when_two_tenants_move_in_one_step(self):
        a, b = _FakeService(), _FakeService()
        oracle = CrossTenantOracle([a, b])
        a.build()
        b.build()
        violations = oracle.on_step(_action())
        assert [v.name for v in violations] == ["cross-tenant-leak"]
        assert "mutated tenants [0, 1]" in violations[0].detail

    def test_resets_baseline_after_each_step(self):
        a, b = _FakeService(), _FakeService()
        oracle = CrossTenantOracle([a, b])
        a.build()
        b.build()
        assert oracle.on_step(_action())  # the leak step
        assert oracle.on_step(_action()) == []  # steady state again


class TestTenantsScenario:
    def test_exhaustive_exploration_is_clean(self):
        report = explore(Scenario("tenants", seed=3), mode="exhaustive", depth=8)
        assert report.ok
        assert report.schedules > 10
        assert report.distinct_orderings > 10
        assert report.checks > 0

    def test_random_walks_are_clean_and_reproducible(self):
        r1 = explore(Scenario("tenants", seed=5), mode="random", budget=6)
        r2 = explore(Scenario("tenants", seed=5), mode="random", budget=6)
        assert r1.ok and r2.ok
        assert r1.schedules == r2.schedules == 6

    def test_scenario_builds_two_bulkheads(self):
        run = Scenario("tenants", seed=1).build()
        assert len(run.extras) == 1
        extra_service, _extra_state = run.extras[0]
        assert run.service is not extra_service
        assert run.service.storage is not extra_service.storage
        assert run.service.storage.owner == "t0"
        assert extra_service.storage.owner == "t1"
        assert run.service.config.seed != extra_service.config.seed

    def test_single_schedule_checks_every_bulkhead(self):
        scenario = Scenario("tenants", seed=2)
        _controller, violations, checks = run_schedule(
            scenario, DfsStrategy(DfsTree(None))
        )
        assert violations == ()
        assert checks > 0
