"""Unit tests for the recovery substrate: WAL framing, torn-tail and
corrupted-checksum handling, snapshot atomicity/pruning, crash plans."""

from __future__ import annotations

import os
import zlib

import pytest

from repro.recovery.hooks import (
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    active_crash_plan,
    crash_point,
    install_crash_plan,
)
from repro.recovery.snapshot import (
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.recovery.wal import WriteAheadLog, encode_body, frame_record, scan_wal


@pytest.fixture(autouse=True)
def _no_crash_plan():
    previous = install_crash_plan(None)
    yield
    install_crash_plan(previous)


class TestWalFraming:
    def test_record_bytes_are_pure_function_of_payload(self):
        body = encode_body({"kind": "commit", "t": 1.5, "z": 1, "a": 2})
        assert body == '{"a":2,"kind":"commit","t":1.5,"z":1}'
        frame = frame_record(body)
        data = body.encode("utf-8")
        assert frame == (
            f"{len(data):08x} {zlib.crc32(data):08x} ".encode("ascii")
            + data + b"\n"
        )

    def test_append_then_scan_roundtrips(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        payloads = [{"kind": "commit", "t": float(i), "i": i} for i in range(5)]
        with WriteAheadLog(path) as wal:
            for p in payloads:
                wal.append(p)
            assert wal.count == 5
        scan = scan_wal(path)
        assert not scan.truncated
        assert [r.payload for r in scan.records] == payloads
        assert [r.position for r in scan.records] == list(range(5))

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append({"kind": "a", "t": 0.0})
            wal.append({"kind": "b", "t": 1.0})
        frame = frame_record(encode_body({"kind": "torn", "t": 2.0}))
        with open(path, "ab") as f:
            f.write(frame[: len(frame) // 2])
        assert scan_wal(path).truncated
        with WriteAheadLog(path) as wal:
            assert wal.truncated_tail
            assert [r.payload["kind"] for r in wal.existing] == ["a", "b"]
            wal.append({"kind": "c", "t": 3.0})
        scan = scan_wal(path)
        assert not scan.truncated
        assert [r.payload["kind"] for r in scan.records] == ["a", "b", "c"]

    def test_corrupted_checksum_drops_to_last_good_record(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            for i in range(4):
                wal.append({"kind": "commit", "t": float(i), "i": i})
        # Flip one byte inside record 2's JSON body: its CRC no longer
        # matches, so the valid prefix ends at record 1.
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"i":2', b'"i":9')
        path.write_bytes(b"".join(lines))
        scan = scan_wal(path)
        assert scan.truncated
        assert [r.payload["i"] for r in scan.records] == [0, 1]
        with WriteAheadLog(path) as wal:
            assert wal.truncated_tail
            assert wal.count == 2

    def test_garbage_file_yields_empty_log(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"not a wal at all\n")
        with WriteAheadLog(path) as wal:
            assert wal.existing == []
            assert wal.truncated_tail


class TestSnapshots:
    def test_write_read_roundtrip(self, tmp_path):
        payload = b"state-bytes" * 100
        path = write_snapshot(tmp_path, 7, payload)
        assert path == snapshot_path(tmp_path, 7)
        assert read_snapshot(path) == payload

    def test_corrupt_snapshot_reads_as_none(self, tmp_path):
        path = write_snapshot(tmp_path, 3, b"payload")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert read_snapshot(path) is None

    def test_truncated_snapshot_reads_as_none(self, tmp_path):
        path = write_snapshot(tmp_path, 3, b"payload")
        path.write_bytes(path.read_bytes()[:4])
        assert read_snapshot(path) is None

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_snapshot(tmp_path, 1, b"x")
        leftovers = [p for p in os.listdir(tmp_path) if not p.endswith(".ckpt")]
        assert leftovers == []

    def test_list_and_prune_keep_newest(self, tmp_path):
        for i in (1, 5, 3, 9):
            write_snapshot(tmp_path, i, f"snap-{i}".encode())
        assert [i for i, _ in list_snapshots(tmp_path)] == [9, 5, 3, 1]
        prune_snapshots(tmp_path, keep=2)
        assert [i for i, _ in list_snapshots(tmp_path)] == [9, 5]
        with pytest.raises(ValueError):
            prune_snapshots(tmp_path, keep=0)


class TestCrashPlans:
    def test_from_env_parses_the_contract(self):
        assert CrashPlan.from_env({}) is None
        plan = CrashPlan.from_env(
            {"REPRO_CRASH_POINT": "service.step", "REPRO_CRASH_HIT": "3"}
        )
        assert plan.point == "service.step" and plan.hit == 3
        plan = CrashPlan.from_env({"REPRO_CRASH_WAL_RECORD": "17"})
        assert plan.after_wal_record == 17
        plan = CrashPlan.from_env({"REPRO_CRASH_WAL_TORN": "9"})
        assert plan.torn_wal_record == 9

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            CrashPlan(point="service.nope")

    def test_soft_plan_fires_at_nth_hit(self):
        install_crash_plan(CrashPlan(point="service.step", hit=3, hard=False))
        crash_point("service.step")
        crash_point("service.step")
        with pytest.raises(SimulatedCrash) as exc:
            crash_point("service.step")
        assert exc.value.barrier == "service.step#3"

    def test_barrier_names_validated_only_when_planned(self):
        crash_point("totally.bogus")  # free path: no plan, no validation
        install_crash_plan(CrashPlan(point="service.step", hard=False))
        with pytest.raises(ValueError, match="not in CRASH_POINTS"):
            crash_point("totally.bogus")

    def test_install_returns_previous_plan(self):
        first = CrashPlan(point="service.step", hard=False)
        assert install_crash_plan(first) is None
        second = CrashPlan(point="tuner.pre_rank", hard=False)
        assert install_crash_plan(second) is first
        assert active_crash_plan() is second

    def test_wal_boundary_kill_fires_on_append(self, tmp_path):
        install_crash_plan(CrashPlan(after_wal_record=2, hard=False))
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"kind": "a", "t": 0.0})
        with pytest.raises(SimulatedCrash):
            wal.append({"kind": "b", "t": 1.0})
        wal.close()
        # The record itself was durably appended before the kill.
        assert [r.payload["kind"] for r in scan_wal(tmp_path / "wal.jsonl").records] \
            == ["a", "b"]

    def test_torn_kill_leaves_half_a_frame(self, tmp_path):
        install_crash_plan(CrashPlan(torn_wal_record=2, hard=False))
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"kind": "a", "t": 0.0})
        with pytest.raises(SimulatedCrash):
            wal.append({"kind": "b", "t": 1.0})
        wal.close()
        scan = scan_wal(tmp_path / "wal.jsonl")
        assert scan.truncated
        assert [r.payload["kind"] for r in scan.records] == ["a"]

    def test_registry_is_exhaustive(self):
        assert len(CRASH_POINTS) == len(set(CRASH_POINTS))
        for name in CRASH_POINTS:
            assert name.count(".") >= 1
