"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.strategy == "gain"
        assert args.generator == "phase"
        assert args.interleaver == "lp"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bogus"])

    def test_schedule_app_choices(self):
        args = build_parser().parse_args(["schedule", "--app", "ligo"])
        assert args.app == "ligo"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--app", "spark"])


class TestCommands:
    def test_table5(self, capsys):
        assert main(["table5", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "comment" in out and "orderkey" in out

    def test_table6_small(self, capsys):
        assert main(["table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Lookup" in out and "Order by" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--app", "montage", "--skyline", "2",
                     "--containers", "8"]) == 0
        out = capsys.readouterr().out
        assert "quanta" in out

    def test_run_tiny_horizon(self, capsys):
        assert main(["run", "--strategy", "no_index", "--generator", "phase",
                     "--horizon-quanta", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "finished=" in out


class TestChaosExplore:
    def test_expect_violation_succeeds_on_planted_bug(self, capsys, tmp_path):
        replay = tmp_path / "replay.json"
        assert main([
            "chaos", "explore", "--scenario", "planted",
            "--explore-strategy", "exhaustive", "--depth", "8",
            "--expect-violation", "delete-racing-build",
            "--save-replay", str(replay),
        ]) == 0
        out = capsys.readouterr().out
        assert "minimized trace (1 choices)" in out
        assert "found expected violation" in out
        assert replay.exists()

    def test_replay_reproduces_byte_identically(self, capsys, tmp_path):
        replay = tmp_path / "replay.json"
        assert main([
            "chaos", "explore", "--scenario", "planted",
            "--explore-strategy", "exhaustive", "--depth", "8",
            "--expect-violation", "delete-racing-build",
            "--save-replay", str(replay),
        ]) == 0
        capsys.readouterr()
        assert main(["chaos", "explore", "--replay", str(replay)]) == 0
        out = capsys.readouterr().out
        assert "byte-identically" in out

    def test_violations_fail_with_context_report(self, capsys):
        assert main([
            "chaos", "explore", "--scenario", "planted",
            "--explore-strategy", "random", "--budget", "16",
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out
        assert "context:" in out
        assert '"scenario": "planted"' in out

    def test_expect_violation_fails_when_absent(self, capsys):
        # The identity-only budget of 0 walks finds nothing.
        assert main([
            "chaos", "explore", "--scenario", "toy",
            "--explore-strategy", "random", "--budget", "0",
            "--expect-violation", "delete-racing-build",
        ]) == 1
        assert "not found" in capsys.readouterr().out

    def test_workdir_still_required_for_sweep_and_soak(self, capsys):
        assert main(["chaos", "sweep"]) == 2
        assert "--workdir is required" in capsys.readouterr().err

    def test_bad_crash_point_env_lists_valid_names(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_POINT", "bogus.point")
        assert main([
            "chaos", "explore", "--scenario", "toy", "--budget", "0",
            "--explore-strategy", "random",
        ]) == 2
        err = capsys.readouterr().err
        assert "bogus.point" in err
        assert "service.pre_decide" in err
