"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.strategy == "gain"
        assert args.generator == "phase"
        assert args.interleaver == "lp"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bogus"])

    def test_schedule_app_choices(self):
        args = build_parser().parse_args(["schedule", "--app", "ligo"])
        assert args.app == "ligo"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--app", "spark"])


class TestCommands:
    def test_table5(self, capsys):
        assert main(["table5", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "comment" in out and "orderkey" in out

    def test_table6_small(self, capsys):
        assert main(["table6", "--rows", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Lookup" in out and "Order by" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--app", "montage", "--skyline", "2",
                     "--containers", "8"]) == 0
        out = capsys.readouterr().out
        assert "quanta" in out

    def test_run_tiny_horizon(self, capsys):
        assert main(["run", "--strategy", "no_index", "--generator", "phase",
                     "--horizon-quanta", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "finished=" in out
