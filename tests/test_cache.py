"""Unit tests for the LRU disk cache."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud.cache import LRUCache


class TestBasicOperations:
    def test_put_and_hit(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 10.0)
        assert cache.access("a")
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = LRUCache(capacity_mb=100.0)
        assert not cache.access("nope")
        assert cache.stats.misses == 1

    def test_used_and_free(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 30.0)
        cache.put("b", 20.0)
        assert cache.used_mb == pytest.approx(50.0)
        assert cache.free_mb == pytest.approx(50.0)

    def test_reput_replaces_size(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 30.0)
        cache.put("a", 10.0)
        assert cache.used_mb == pytest.approx(10.0)
        assert len(cache) == 1

    def test_invalidate(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 30.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.used_mb == 0.0

    def test_clear(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 30.0)
        cache.put("b", 30.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_mb == 0.0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 40.0)
        cache.put("b", 40.0)
        cache.access("a")  # b is now LRU
        evicted = cache.put("c", 40.0)
        assert evicted == ["b"]
        assert "a" in cache and "c" in cache

    def test_eviction_counts(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 60.0)
        cache.put("b", 60.0)
        assert cache.stats.evictions == 1

    def test_object_larger_than_cache_not_stored(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 10.0)
        evicted = cache.put("huge", 200.0)
        assert evicted == []
        assert "huge" not in cache
        assert "a" in cache  # nothing evicted for an uncacheable object

    def test_keys_in_lru_order(self):
        cache = LRUCache(capacity_mb=100.0)
        cache.put("a", 10.0)
        cache.put("b", 10.0)
        cache.access("a")
        assert cache.keys() == ["b", "a"]


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity_mb=0.0)

    def test_rejects_negative_size(self):
        cache = LRUCache(capacity_mb=10.0)
        with pytest.raises(ValueError):
            cache.put("a", -1.0)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.floats(min_value=0.1, max_value=50.0)),
        max_size=60,
    )
)
def test_capacity_invariant_holds(ops):
    """The cache never exceeds its capacity, whatever the sequence."""
    cache = LRUCache(capacity_mb=100.0)
    for key, size in ops:
        cache.put(key, size)
        assert cache.used_mb <= cache.capacity_mb + 1e-9
        total = sum(
            size for size in (cache._entries.get(k) for k in cache.keys()) if size
        )
        assert cache.used_mb == pytest.approx(total)
