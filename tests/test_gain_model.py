"""Tests for the gain model (Equations 3-5) and the Figure 3 example."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.pricing import PAPER_PRICING
from repro.data.index_model import Index, IndexCostModel, IndexSpec
from repro.data.table import (
    Column,
    ColumnType,
    TableStatistics,
    partition_table,
)
from repro.tuning.gain import (
    DataflowGainSample,
    GainModel,
    GainParameters,
    dataflow_index_gains,
)


def small_table(size_mb=100.0, name="t"):
    schema_cols = (Column("k", ColumnType.INTEGER), Column("pay", ColumnType.TEXT))
    stats = TableStatistics(avg_field_bytes={"k": 8.0, "pay": 92.0})
    records = int(size_mb * 2**20 / 100.0)
    from repro.data.table import TableSchema

    return partition_table(name, TableSchema(name, schema_cols), stats, records)


@pytest.fixture
def model():
    return GainModel(
        PAPER_PRICING,
        IndexCostModel(PAPER_PRICING),
        GainParameters(alpha=0.5, fade_quanta=2.0, storage_window_quanta=2.0),
    )


@pytest.fixture
def index():
    table = small_table()
    return Index(spec=IndexSpec("t", ("k",)), table=table)


class TestParameters:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            GainParameters(alpha=1.5)
        with pytest.raises(ValueError):
            GainParameters(alpha=-0.1)

    def test_fade_positive(self):
        with pytest.raises(ValueError):
            GainParameters(fade_quanta=0.0)


class TestFading:
    def test_fading_at_zero_is_one(self, model):
        assert model.fading(0.0) == 1.0

    def test_fading_decreases(self, model):
        assert model.fading(1.0) > model.fading(2.0) > model.fading(10.0)

    def test_fading_formula(self, model):
        assert model.fading(2.0) == pytest.approx(math.exp(-1.0))  # D=2

    def test_negative_age_rejected(self, model):
        with pytest.raises(ValueError):
            model.fading(-1.0)


class TestGainEquations:
    def test_no_samples_means_negative_gain(self, model, index):
        gain = model.evaluate(index, [])
        assert gain.time_gain_quanta < 0  # -ti(idx)
        assert gain.money_gain_dollars < 0  # -(mi + storage)
        assert gain.deletable and not gain.beneficial

    def test_large_sample_makes_beneficial(self, model, index):
        samples = [DataflowGainSample(0.0, 50.0, 50.0)]
        gain = model.evaluate(index, samples)
        assert gain.beneficial
        assert gain.combined_dollars > 0

    def test_old_samples_fade(self, model, index):
        fresh = model.evaluate(index, [DataflowGainSample(0.0, 50.0, 50.0)])
        stale = model.evaluate(index, [DataflowGainSample(20.0, 50.0, 50.0)])
        assert stale.time_gain_quanta < fresh.time_gain_quanta
        assert stale.money_gain_dollars < fresh.money_gain_dollars

    def test_window_cutoff(self, index):
        params = GainParameters(window_quanta=5.0, fade_quanta=100.0)
        model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
        inside = model.evaluate(index, [DataflowGainSample(4.0, 50.0, 50.0)])
        outside = model.evaluate(index, [DataflowGainSample(6.0, 50.0, 50.0)])
        assert inside.time_gain_quanta > outside.time_gain_quanta

    def test_built_index_has_no_build_hurdle(self, model, index):
        for p in index.table.partitions:
            index.mark_built(p.partition_id, time=0.0)
        assert model.build_time_quanta(index) == 0.0
        gain = model.evaluate(index, [DataflowGainSample(0.0, 0.5, 0.5)])
        assert gain.time_gain_quanta > 0  # only storage now weighs on gm

    def test_combined_is_weighted_sum(self, model, index):
        samples = [DataflowGainSample(0.0, 10.0, 10.0)]
        gain = model.evaluate(index, samples)
        expected = (
            0.5 * PAPER_PRICING.quantum_price * gain.time_gain_quanta
            + 0.5 * gain.money_gain_dollars
        )
        assert gain.combined_dollars == pytest.approx(expected)

    def test_alpha_one_ignores_money(self, index):
        params = GainParameters(alpha=1.0)
        model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
        gain = model.evaluate(index, [DataflowGainSample(0.0, 10.0, -100.0)])
        assert gain.combined_dollars == pytest.approx(
            PAPER_PRICING.quantum_price * gain.time_gain_quanta
        )


class TestFigure3Shape:
    """The Figure 3 example: indexes become beneficial, then fade out."""

    def _gain_curve(self, arrivals, gains_t, gains_m, index, alpha=0.5, fade=60.0):
        params = GainParameters(alpha=alpha, fade_quanta=fade, storage_window_quanta=2.0)
        model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), params)
        curve = []
        for t in range(0, 200):
            samples = [
                DataflowGainSample(max(0.0, t - at), gt, gm)
                for at, gt, gm in zip(arrivals, gains_t, gains_m)
                if at <= t
            ]
            curve.append(model.evaluate(index, samples).combined_dollars)
        return curve

    def test_gain_rises_then_decays(self):
        table = small_table(size_mb=500.0, name="b")
        index = Index(spec=IndexSpec("b", ("k",)), table=table)
        # Index B of Table 2: used by dataflows at t=10, 30, 50.
        curve = self._gain_curve([10, 30, 50], [1.0, 2.0, 3.0], [3.0, 5.0, 8.0], index)
        assert curve[0] < 0  # storage + build cost only
        peak = max(curve)
        assert peak > curve[0]
        assert curve[-1] < peak  # fades after the last use
        # It decays monotonically after the last dataflow.
        tail = curve[60:]
        assert all(a >= b - 1e-12 for a, b in zip(tail, tail[1:]))


class TestDataflowIndexGains:
    def test_gains_proportional_to_speedup(self):
        from repro.dataflow.graph import Dataflow
        from repro.dataflow.operator import DataFile, Operator

        flow = Dataflow(name="d")
        flow.add_operator(
            Operator(
                name="scan", runtime=120.0,
                inputs=(DataFile("t", 100.0),),
                index_speedup={"t__fast": 100.0, "t__slow": 2.0},
            )
        )
        tg, mg = dataflow_index_gains(flow, PAPER_PRICING)
        assert tg["t__fast"] > tg["t__slow"] > 0
        # 120 s at speedup 2 saves 60 s = 1 quantum.
        assert tg["t__slow"] == pytest.approx(1.0)

    def test_transfer_savings_counted_when_bandwidth_given(self):
        from repro.dataflow.graph import Dataflow
        from repro.dataflow.operator import DataFile, Operator

        flow = Dataflow(name="d")
        flow.add_operator(
            Operator(
                name="scan", runtime=60.0,
                inputs=(DataFile("t", 1250.0),),  # 10 s transfer at 125 MB/s
                index_speedup={"t__x": 10.0},
            )
        )
        without, _ = dataflow_index_gains(flow, PAPER_PRICING)
        with_bw, _ = dataflow_index_gains(
            flow, PAPER_PRICING, net_bw_mb_s=125.0, index_sizes_mb={"t__x": 0.0}
        )
        assert with_bw["t__x"] > without["t__x"]

    def test_read_cost_reduces_money_gain(self):
        from repro.dataflow.graph import Dataflow
        from repro.dataflow.operator import DataFile, Operator

        flow = Dataflow(name="d")
        flow.add_operator(
            Operator(
                name="scan", runtime=120.0,
                inputs=(DataFile("t", 1.0),),
                index_speedup={"t__x": 2.0},
            )
        )
        tg, mg = dataflow_index_gains(flow, PAPER_PRICING, index_read_quanta={"t__x": 0.3})
        assert mg["t__x"] == pytest.approx(tg["t__x"] - 0.3)


@given(
    age=st.floats(min_value=0.0, max_value=100.0),
    gain=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_property_gain_monotone_in_sample_strength(age, gain, ):
    model = GainModel(PAPER_PRICING, IndexCostModel(PAPER_PRICING), GainParameters())
    table = small_table()
    index = Index(spec=IndexSpec("t", ("k",)), table=table)
    weak = model.evaluate(index, [DataflowGainSample(age, gain, gain)])
    strong = model.evaluate(index, [DataflowGainSample(age, gain + 1.0, gain + 1.0)])
    assert strong.time_gain_quanta >= weak.time_gain_quanta
    assert strong.money_gain_dollars >= weak.money_gain_dollars
