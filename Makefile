# Developer entry points. Everything runs with the src/ layout on
# PYTHONPATH so no editable install is required.
PY ?= python
export PYTHONPATH := src

.PHONY: test test-differential bench bench-scale regen-golden lint typecheck

test:
	$(PY) -m pytest -x -q

test-differential:
	$(PY) -m pytest tests/differential -q

bench:
	$(PY) -m pytest benchmarks -q

# Scale benchmark (reduced size); set REPRO_SCALE_FULL=1 for the full
# 10k-container / 100k-dataflow leg from docs/PERFORMANCE.md.
bench-scale:
	$(PY) -m pytest benchmarks/test_perf_scale.py -q

# Rebuild tests/golden/ from the seeded recipes. A clean tree must be a
# no-op (tests/test_golden_regen.py enforces it).
regen-golden:
	$(PY) -m tests.golden

lint:
	$(PY) -m repro.analysis src/repro --flow --no-typecheck \
		--baseline flow-baseline.json

typecheck:
	$(PY) -m mypy --strict src/repro
