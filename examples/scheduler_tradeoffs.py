#!/usr/bin/env python3
"""Scenario: choosing a scheduler and a (time, money) operating point.

A platform engineer wants to know (a) how much the skyline scheduler's
offline data-placement reasoning buys over a classic online load
balancer, and (b) what the time-money trade-off curve looks like for the
three scientific applications, so users can pick "fast" or "cheap".

Run:  python examples/scheduler_tradeoffs.py
"""

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.client import build_workload
from repro.dataflow.transform import scale_dataflow
from repro.scheduling.online_lb import OnlineLoadBalanceScheduler
from repro.scheduling.skyline import SkylineScheduler


def main() -> None:
    workload = build_workload(PAPER_PRICING, seed=7)
    skyline_scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=6, max_containers=20)
    lb_scheduler = OnlineLoadBalanceScheduler(PAPER_PRICING, num_containers=10)

    print("Time-money skylines per application (each line one schedule):")
    for app in ("montage", "ligo", "cybershake"):
        flow = workload.next_dataflow(app, issued_at=0.0)
        print(f"\n{app} ({len(flow)} ops, serial runtime "
              f"{flow.total_runtime() / 60:.1f} quanta):")
        for schedule in skyline_scheduler.schedule(flow):
            marker = "#" * max(1, int(schedule.money_quanta() / 4))
            print(f"  time={schedule.makespan_quanta():6.2f}q "
                  f"money={schedule.money_quanta():4d}q "
                  f"containers={len(schedule.containers_used()):3d}  {marker}")

    print("\n\nOffline skyline vs online load balancing, as dataflows get")
    print("more data-intensive (inter-operator flows scaled up):")
    base = workload.next_dataflow("cybershake", issued_at=0.0)
    print(f"{'data scale':>11} {'offline time':>13} {'online time':>12} "
          f"{'offline $':>10} {'online $':>9}")
    for scale in (1, 10, 50, 100):
        flow = scale_dataflow(base, data_factor=scale, input_factor=0.01)
        fastest = min(
            skyline_scheduler.schedule(flow), key=lambda s: s.makespan_seconds()
        )
        balanced = lb_scheduler.schedule(flow)
        print(f"{scale:>10}x {fastest.makespan_quanta():>12.2f}q "
              f"{balanced.makespan_quanta():>11.2f}q "
              f"{fastest.money_dollars():>9.2f} {balanced.money_dollars():>8.2f}")
    print("\nThe balancer ignores where data lives; as flows grow, its")
    print("cross-container transfers idle more prepaid quanta (Figure 7).")


if __name__ == "__main__":
    main()
