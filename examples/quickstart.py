#!/usr/bin/env python3
"""Quickstart: schedule one dataflow and interleave index builds for free.

This walks the core pipeline on a single Montage dataflow:

1. build the workload catalog (125 files, 4 potential indexes each),
2. generate a dataflow and schedule it with the skyline scheduler,
3. inspect the idle slots the quantum pricing leaves behind,
4. interleave index build operators into those slots (Algorithm 2),
5. execute the interleaved schedule and see which partitions got built —
   at zero extra time and zero extra money.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.client import build_workload
from repro.interleave.lp import lp_interleave, select_fastest
from repro.interleave.slots import BuildCandidate
from repro.scheduling.skyline import SkylineScheduler
from repro.core.simulator import ExecutionSimulator


def main() -> None:
    # 1. The workload: catalog of files + per-app workflow generators.
    workload = build_workload(PAPER_PRICING, seed=42)
    catalog = workload.catalog
    print(f"catalog: {len(catalog.tables)} files, {catalog.total_size_gb():.1f} GB, "
          f"{len(catalog.indexes)} potential indexes")

    # 2. One Montage dataflow, scheduled offline on the (time, money) skyline.
    flow = workload.next_dataflow("montage", issued_at=0.0)
    print(f"\ndataflow {flow.name}: {len(flow)} operators, "
          f"critical path {flow.critical_path():.0f} s")
    scheduler = SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=15)
    skyline = scheduler.schedule(flow)
    print("\nschedule skyline (time vs money):")
    for s in skyline:
        print(f"  time={s.makespan_quanta():5.2f} quanta  money={s.money_quanta():3d} quanta"
              f"  containers={len(s.containers_used()):2d}"
              f"  idle={s.fragmentation_quanta():5.2f} quanta")

    # 3. The fastest schedule leaves prepaid-but-idle compute around.
    fastest = min(skyline, key=lambda s: s.makespan_seconds())
    slots = fastest.idle_slots()
    print(f"\nfastest schedule has {len(slots)} idle slots "
          f"({fastest.fragmentation_quanta():.2f} quanta of prepaid idle time)")

    # 4. Offer per-partition index builds for the dataflow's candidates.
    cost_model = catalog.cost_model
    candidates = []
    for name in sorted(flow.candidate_indexes)[:40]:
        index = catalog.index(name)
        for pid in index.unbuilt_partition_ids():
            model = cost_model.partition_model(
                index.table, index.spec, index.table.partition(pid)
            )
            candidates.append(BuildCandidate(
                index_name=name, partition_id=pid,
                duration_s=model.total_build_seconds, gain=1.0,
            ))
    interleaved = select_fastest(lp_interleave(flow, candidates, scheduler))
    print(f"\ninterleaved {interleaved.num_builds} build operators into the idle slots")
    combined = interleaved.combined()
    print(f"time unchanged:  {combined.makespan_quanta():.2f} quanta")
    print(f"money unchanged: {combined.money_quanta()} quanta")
    print(f"idle time drops: {interleaved.schedule.fragmentation_quanta():.2f} "
          f"-> {combined.fragmentation_quanta():.2f} quanta")

    # 5. Execute with 10% runtime noise: builds that spill are preempted.
    simulator = ExecutionSimulator(
        PAPER_PRICING, runtime_error=0.10, rng=np.random.default_rng(1)
    )
    result = simulator.execute(interleaved, start_time=0.0)
    print(f"\nexecution: makespan={result.makespan_seconds:.0f} s, "
          f"money={result.money_quanta} quanta, "
          f"builds completed={len(result.builds_completed)}, "
          f"preempted={result.builds_killed}")
    for done in result.builds_completed[:5]:
        print(f"  built {done.index_name} partition {done.partition_id} "
              f"at t={done.finished_at:.0f} s")
    if len(result.builds_completed) > 5:
        print(f"  ... and {len(result.builds_completed) - 5} more")


if __name__ == "__main__":
    main()
