#!/usr/bin/env python3
"""Scenario: shopping a VM menu — fast larges, cheap smalls, or a mix?

The paper's future work asks about heterogeneous cloud resources. The
extended skyline scheduler branches every operator over a menu of VM
flavours, so the (time, money) curve exposes mixed fleets the
homogeneous scheduler cannot express: a couple of large VMs carry the
critical path while small ones mop up stragglers.

Run:  python examples/heterogeneous_cloud.py
"""

from repro.cloud.container import ContainerSpec
from repro.cloud.pricing import PAPER_PRICING
from repro.cloud.vmtypes import VMType, default_vm_catalog
from repro.dataflow.client import build_workload
from repro.report import bar_chart
from repro.scheduling.hetero import HeterogeneousSkylineScheduler
from repro.scheduling.skyline import SkylineScheduler


def main() -> None:
    workload = build_workload(PAPER_PRICING, seed=17)
    catalog = default_vm_catalog()
    print("VM menu:")
    for vmtype in catalog:
        print(f"  {vmtype.name:<9} speed={vmtype.cpu_speed:>4.1f}x  "
              f"net={vmtype.spec.net_bw_mb_s:>6.1f} MB/s  "
              f"${vmtype.price_per_quantum:.2f}/quantum")

    for app in ("montage", "cybershake"):
        hetero_flow = workload.next_dataflow(app, issued_at=0.0)
        homo_flow = workload.next_dataflow(app, issued_at=0.0)

        hetero = HeterogeneousSkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=15
        ).schedule(hetero_flow)
        homo = SkylineScheduler(
            PAPER_PRICING, max_skyline=8, max_containers=15
        ).schedule(homo_flow)

        print(f"\n=== {app} ===")
        print("homogeneous skyline (standard VMs only):")
        for s in homo:
            print(f"  time={s.makespan_quanta():6.2f}q  ${s.money_dollars():6.2f}")
        print("heterogeneous skyline:")
        for s in hetero:
            mix = ", ".join(f"{v} {k}" for k, v in sorted(s.types_used().items()))
            print(f"  time={s.makespan_quanta():6.2f}q  ${s.money_dollars():6.2f}   [{mix}]")

        fastest_homo = min(s.makespan_quanta() for s in homo)
        fastest_hetero = min(s.makespan_quanta() for s in hetero)
        print("\nfastest point (quanta):")
        print(bar_chart([
            ("standard only", fastest_homo),
            ("with VM menu", fastest_hetero),
        ], width=30, unit="q"))

    # A custom menu is just a list of VMType values.
    print("\nBring your own menu: a burstable flavour at a deep discount:")
    burstable = VMType(
        name="burstable",
        spec=ContainerSpec(net_bw_mb_s=31.25),
        cpu_speed=0.25,
        price_per_quantum=0.02,
    )
    scheduler = HeterogeneousSkylineScheduler(
        PAPER_PRICING, vm_types=[*default_vm_catalog(), burstable],
        max_skyline=6, max_containers=15,
    )
    flow = workload.next_dataflow("montage", issued_at=0.0)
    cheapest = min(scheduler.schedule(flow), key=lambda s: s.money_dollars())
    mix = ", ".join(f"{v} {k}" for k, v in sorted(cheapest.types_used().items()))
    print(f"cheapest montage schedule: ${cheapest.money_dollars():.2f} at "
          f"{cheapest.makespan_quanta():.1f} quanta  [{mix}]")


if __name__ == "__main__":
    main()
