#!/usr/bin/env python3
"""Scenario: a data-science team whose workload shifts between projects.

A QaaS service receives exploratory dataflows in phases — seismic-hazard
analysis (CyberShake), then gravitational-wave searches (LIGO), then sky
mosaics (Montage), then back to CyberShake. The online auto-tuner
(Algorithm 1) builds the indexes each phase needs inside the idle slots
of the running dataflows, and deletes them when the phase moves on.

This is the Section 6.5.1 experiment at a reduced horizon, reported as a
timeline of the index working set.

Run:  python examples/phase_adaptation.py          (about 1-2 minutes)
"""

from dataclasses import replace

import numpy as np

from repro import Strategy, default_config
from repro.core.service import QaaSService
from repro.dataflow.client import PAPER_PHASES, TOTAL_TIME_S, build_workload, phase_schedule


def main() -> None:
    config = replace(default_config(), total_time_s=7200.0)  # 120 quanta
    fraction = config.total_time_s / TOTAL_TIME_S
    phases = tuple((app, duration * fraction) for app, duration in PAPER_PHASES)

    rng = np.random.default_rng(config.seed + 10)
    events = phase_schedule(rng, phases=phases)
    print(f"workload: {len(events)} dataflows over {config.total_time_s / 60:.0f} quanta")
    offset = 0.0
    for app, duration in phases:
        print(f"  phase: {app:<11s} for {duration / 60:6.1f} quanta")
        offset += duration

    workload = build_workload(config.pricing, seed=config.seed)
    service = QaaSService(workload, config, Strategy.GAIN)
    metrics = service.run(events)

    print(f"\nfinished {metrics.num_finished} dataflows, "
          f"avg cost {metrics.cost_per_dataflow_quanta():.1f} quanta/dataflow, "
          f"avg makespan {metrics.avg_makespan_quanta():.2f} quanta")
    print(f"indexes created: {metrics.indexes_created}, "
          f"deleted: {metrics.indexes_deleted}")

    print("\nindex working set over time (one row per ~6 quanta):")
    print(f"{'t (quanta)':>12}  {'#indexes':>9}  {'storage MB':>11}  bar")
    step = max(1, len(metrics.snapshots) // 20)
    peak = max(s.indexes_built for s in metrics.snapshots) or 1
    for snap in metrics.snapshots[::step]:
        bar = "#" * int(40 * snap.indexes_built / peak)
        print(f"{snap.time / 60:12.1f}  {snap.indexes_built:9d}  "
              f"{snap.storage_mb:11.1f}  {bar}")

    # Which application's indexes are live at the end?
    live_by_app: dict[str, int] = {}
    for index in service.catalog.built_indexes():
        app = index.spec.table_name.split("_")[0]
        live_by_app[app] = live_by_app.get(app, 0) + 1
    print("\nlive indexes by application at the end of the run "
          "(the final phase is CyberShake):")
    for app, count in sorted(live_by_app.items(), key=lambda kv: -kv[1]):
        print(f"  {app:<11s} {count}")


if __name__ == "__main__":
    main()
