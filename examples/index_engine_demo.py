#!/usr/bin/env python3
"""Scenario: why indexes pay — the five operator categories, measured.

The paper motivates index management with five operator categories where
indexes help (Section 1): lookup, range select, sorting, grouping and
join. This demo runs each category against the micro execution engine on
synthetic TPC-H lineitem rows, with and without a B+tree index, and
prints the measured speedups (the Table 6 experiment, plus the
categories Table 6 does not time).

Run:  python examples/index_engine_demo.py
"""

import time

from repro.data.tpch import generate_lineitem_rows
from repro.engine.btree import BPlusTree
from repro.engine.executor import (
    group_by_btree,
    group_by_sort,
    lookup_btree,
    lookup_scan,
    order_by_btree,
    order_by_sort,
    range_select_btree,
    range_select_scan,
    sort_merge_join,
    sort_merge_join_unindexed,
)
from repro.engine.heap import HeapFile

NUM_ROWS = 120_000


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def main() -> None:
    rows = generate_lineitem_rows(NUM_ROWS, seed=7)
    heap = HeapFile({
        "orderkey": rows.orderkey.tolist(),
        "suppkey": rows.suppkey.tolist(),
        "shipmode": rows.shipmode,
    })
    t_build, index = timed(lambda: BPlusTree.bulk_load(heap.index_pairs("orderkey"), order=128))
    print(f"lineitem: {NUM_ROWS:,} rows; B+tree on orderkey bulk-loaded in "
          f"{t_build * 1e3:.0f} ms (height {index.height}, {index.num_keys:,} keys)")
    print(f"\n{'category':<12} {'no index':>12} {'with index':>12} {'speedup':>9}   note")

    key = heap.column("orderkey")[NUM_ROWS // 2]
    t0, r0 = timed(lambda: lookup_scan(heap, "orderkey", key))
    t1, r1 = timed(lambda: lookup_btree(index, key))
    assert sorted(r0) == sorted(r1)
    print(f"{'lookup':<12} {t0 * 1e3:>10.2f}ms {t1 * 1e3:>10.3f}ms {t0 / t1:>8.0f}x   "
          f"O(n) -> O(log n)")

    lo, hi = key, key + 2000
    t0, r0 = timed(lambda: range_select_scan(heap, "orderkey", lo, hi))
    t1, r1 = timed(lambda: range_select_btree(index, lo, hi))
    assert sorted(r0) == sorted(r1)
    print(f"{'range':<12} {t0 * 1e3:>10.2f}ms {t1 * 1e3:>10.3f}ms {t0 / t1:>8.0f}x   "
          f"O(n) -> O(log n + k), k={len(r1)}")

    t0, r0 = timed(lambda: order_by_sort(heap, "orderkey"))
    t1, r1 = timed(lambda: order_by_btree(index))
    print(f"{'sorting':<12} {t0 * 1e3:>10.2f}ms {t1 * 1e3:>10.3f}ms {t0 / t1:>8.1f}x   "
          f"O(n log n) -> O(n) leaf scan")

    t0, r0 = timed(lambda: group_by_sort(heap, "orderkey"))
    t1, r1 = timed(lambda: group_by_btree(index))
    assert len(r0) == len(r1)
    print(f"{'grouping':<12} {t0 * 1e3:>10.2f}ms {t1 * 1e3:>10.3f}ms {t0 / t1:>8.1f}x   "
          f"grouping via the sorted leaves")

    # Sort-merge join: O(n log n + m log m) unindexed, O(n + m) when the
    # inputs come pre-sorted from B+tree leaf chains (the paper's join
    # category example).
    supp_index = BPlusTree.bulk_load(heap.index_pairs("suppkey"), order=128)
    small = HeapFile({"suppkey": heap.column("suppkey")[:300]})
    small_index = BPlusTree.bulk_load(small.index_pairs("suppkey"), order=128)
    t0, r0 = timed(lambda: sort_merge_join_unindexed(small, "suppkey", heap, "suppkey"))
    t1, r1 = timed(lambda: sort_merge_join(small_index.items(), supp_index.items()))
    assert len(r0) == len(r1)
    print(f"{'join':<12} {t0 * 1e3:>10.2f}ms {t1 * 1e3:>10.3f}ms {t0 / t1:>8.1f}x   "
          f"sort-merge, sorting vs pre-sorted indexes, |out|={len(r1):,}")

    print("\nThese measured gaps are what the tuner's per-dataflow speedups")
    print("stand for when it decides which indexes earn their storage cost.")


if __name__ == "__main__":
    main()
