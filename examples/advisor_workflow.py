#!/usr/bin/env python3
"""Scenario: plugging a what-if index advisor into the auto-tuner.

The paper treats index recommendation as orthogonal: "most index
advisors can output a set of indexes that might be useful (e.g., by
doing a what-if analysis). This would be the input to our system." Here
a hand-written analytics dataflow (no generator involvement) goes
through that exact hand-off:

1. the advisor inspects the operators' categories and input tables and
   recommends indexes with what-if savings estimates,
2. the recommendations are wired into the dataflow and the catalog,
3. the online tuner evaluates them with the gain model and interleaves
   the beneficial ones into the schedule's idle slots.

Run:  python examples/advisor_workflow.py
"""

from repro.cloud.pricing import PAPER_PRICING
from repro.dataflow.client import build_workload
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import DataFile, Operator
from repro.scheduling.skyline import SkylineScheduler
from repro.tuning.advisor import IndexAdvisor
from repro.tuning.gain import GainModel, GainParameters
from repro.tuning.history import DataflowHistory
from repro.tuning.tuner import OnlineIndexTuner


def build_analytics_flow(catalog) -> Dataflow:
    """A hand-rolled ETL-ish dataflow over two catalog files."""
    tables = sorted(
        catalog.tables, key=lambda n: catalog.tables[n].size_mb(), reverse=True
    )[10:12]
    sizes = {n: catalog.tables[n].size_mb() for n in tables}
    flow = Dataflow(name="etl-report")
    flow.add_operator(Operator(
        name="filter_orders", runtime=180.0, category="range_select",
        inputs=(DataFile(tables[0], sizes[tables[0]]),),
    ))
    flow.add_operator(Operator(
        name="lookup_customers", runtime=90.0, category="lookup",
        inputs=(DataFile(tables[1], sizes[tables[1]]),),
    ))
    flow.add_operator(Operator(name="join", runtime=120.0, category="join"))
    flow.add_operator(Operator(name="aggregate", runtime=60.0, category="grouping"))
    flow.add_operator(Operator(name="report", runtime=15.0))
    flow.add_edge("filter_orders", "join", data_mb=200.0)
    flow.add_edge("lookup_customers", "join", data_mb=50.0)
    flow.add_edge("join", "aggregate", data_mb=80.0)
    flow.add_edge("aggregate", "report", data_mb=1.0)
    return flow


def main() -> None:
    workload = build_workload(PAPER_PRICING, seed=21)
    catalog = workload.catalog
    flow = build_analytics_flow(catalog)
    print(f"dataflow {flow.name}: {len(flow)} operators over "
          f"{sorted(flow_input_tables(flow))}")

    # 1+2. What-if advice, wired into the dataflow.
    advisor = IndexAdvisor(catalog, min_saved_seconds=2.0)
    recommendations = advisor.apply(flow, max_per_table=2)
    print("\nadvisor recommendations (what-if):")
    for rec in recommendations:
        print(f"  {rec.index_name:<32} speedup={rec.speedup:7.1f}x  "
              f"saves~{rec.saved_seconds:6.1f} s  via {', '.join(rec.operators)}")

    # 3. The tuner judges them with the gain model and schedules builds.
    tuner = OnlineIndexTuner(
        catalog=catalog,
        gain_model=GainModel(PAPER_PRICING, catalog.cost_model, GainParameters()),
        history=DataflowHistory(PAPER_PRICING),
        scheduler=SkylineScheduler(PAPER_PRICING, max_skyline=4, max_containers=10),
    )
    # The report runs hourly: simulate a few past occurrences so the
    # gain model has history to trust.
    for i in range(4):
        tg, mg = tuner.dataflow_gains(flow)
        tuner.record_execution(f"etl-report-{i}", i * 300.0, tg, mg)
    decision = tuner.on_dataflow(flow, now=1500.0)

    print("\ntuner verdicts (gain model, Equations 3-5):")
    for name, gain in sorted(decision.gains.items()):
        verdict = "BUILD" if gain.beneficial else "skip"
        print(f"  {name:<32} gt={gain.time_gain_quanta:8.3f}q "
              f"gm=${gain.money_gain_dollars:8.4f}  -> {verdict}")
    print(f"\ninterleaved {decision.chosen.num_builds} build operators into "
          f"{decision.chosen.schedule.fragmentation_quanta():.2f} quanta of idle time")
    print(f"dataflow time/money unchanged: "
          f"{decision.chosen.combined().makespan_quanta():.2f} quanta / "
          f"{decision.chosen.combined().money_quanta()} quanta")


def flow_input_tables(flow) -> set[str]:
    return {f.name for op in flow.operators.values() for f in op.inputs}


if __name__ == "__main__":
    main()
