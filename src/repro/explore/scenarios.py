"""Deterministic exploration scenarios.

A scenario is a pure function of ``(name, seed, params)`` that builds a
*fresh* service run per schedule — every schedule the engine tries must
start from an identical initial state, so :meth:`Scenario.build`
reconstructs the whole world each time.

Three scenarios ship:

* ``toy`` — two epochs of two actions each on a real (tiny) service:
  epoch 1 applies two *independent* builds (distinct indexes, equal
  billing stamps — the partial-order mode collapses their orderings),
  epoch 2 races a build apply of index A against a delete of A (a
  *dependent* pair whose racy orders resurrect a deleted partition).
  Small enough for exhaustive enumeration in tests and CI.
* ``planted`` — the regression fixture: one epoch racing a build apply
  against a delete of the same index, after a canonical setup build.
  The canonical order is clean; any schedule completing the delete
  before the build apply trips the ``delete-racing-build`` oracle —
  including the classic torn interleaving where the delete lands
  between the build's storage-charge and its catalog-insert.
* ``service`` — drive the full service loop (admission, tuner decision,
  slot-fill, settle) for a few steps under the controller: the real
  pipeline's action stream, suited to seeded random walks and bounded
  DFS rather than full enumeration.
* ``tenants`` — two tenant bulkheads (independent services with derived
  seeds, as the multi-tenant front end builds them) whose build/delete
  actions interleave in shared epochs. Every schedule must keep each
  mutation inside its own bulkhead — checked per micro-step by the
  :class:`~repro.explore.oracle.CrossTenantOracle` over integer state
  digests — so the scenario is violation-free by construction and
  guards the tenancy layer's isolation claim against regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.config import ExperimentConfig, default_config
from repro.core.service import QaaSService, RunState, Strategy
from repro.core.simulator import CompletedBuild
from repro.explore.hooks import Epoch, drive

#: Scenario name -> one-line description (CLI help + replay validation).
SCENARIOS: dict[str, str] = {
    "toy": "2 epochs x 2 actions on a tiny service (exhaustive-friendly)",
    "planted": "build apply racing a delete of the same index (known bug)",
    "service": "the real service loop for a few steps (walk/DFS budget)",
    "tenants": "two tenant bulkheads interleaved (cross-tenant leak oracle)",
}


class ScenarioRun:
    """One fresh, fully constructed run: a service plus an epoch driver.

    ``extras`` carries additional (service, state) pairs for
    multi-tenant scenarios: the engine checks their invariants too and
    arms the cross-tenant oracle over all services.
    """

    def __init__(
        self,
        service: QaaSService,
        state: RunState,
        driver: Callable[[], None],
        extras: tuple[tuple[QaaSService, RunState], ...] = (),
    ) -> None:
        self.service = service
        self.state = state
        self.extras = extras
        self._driver = driver

    def drive(self) -> None:
        """Execute the scenario's epochs (under whatever controller is
        installed)."""
        self._driver()


@dataclass(frozen=True)
class Scenario:
    """A named, seeded scenario; :meth:`build` is pure."""

    name: str
    seed: int = 0
    horizon_quanta: int = 3

    def __post_init__(self) -> None:
        if self.name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.name!r}; valid names: "
                f"{', '.join(sorted(SCENARIOS))}"
            )

    def params(self) -> dict[str, Any]:
        """The replay-file parameter dict that reconstructs this scenario."""
        return {"horizon_quanta": self.horizon_quanta}

    def build(self) -> ScenarioRun:
        if self.name == "toy":
            return _build_toy(self.seed)
        if self.name == "planted":
            return _build_planted(self.seed)
        if self.name == "tenants":
            return _build_tenants(self.seed)
        return _build_service(self.seed, self.horizon_quanta)


def build_scenario(name: str, seed: int = 0, **params: Any) -> Scenario:
    """Scenario factory used by the CLI and the replay loader."""
    return Scenario(name=name, seed=seed, **params)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _tiny_config(seed: int, horizon_quanta: int) -> ExperimentConfig:
    """A small, fault-free config: storage ops draw no randomness, so
    reordered actions consume identical RNG streams (the independence
    oracle's commutativity argument relies on it)."""
    return replace(
        default_config(),
        seed=seed,
        total_time_s=horizon_quanta * 60.0,
        runtime_error=0.0,
        update_interval_s=0.0,
        operator_failure_rate=0.0,
        container_crash_rate=0.0,
        storage_put_failure_rate=0.0,
        storage_delete_failure_rate=0.0,
        straggler_rate=0.0,
    )


def _fresh_service(seed: int, horizon_quanta: int) -> tuple[QaaSService, list]:
    from repro import prepare_run

    service, events = prepare_run(
        Strategy.GAIN, "phase", config=_tiny_config(seed, horizon_quanta)
    )
    return service, events


def _pick_indexes(service: QaaSService, want: int) -> list[str]:
    """The first ``want`` potential indexes with >= 2 partitions."""
    names = [
        name
        for name in sorted(service.catalog.indexes)
        if len(service.catalog.indexes[name].partitions) >= 2
    ]
    if len(names) < want:  # pragma: no cover - catalog invariant
        raise RuntimeError("catalog too small for the exploration scenario")
    return names[:want]


def _completed(name: str, pid: int, at: float) -> CompletedBuild:
    return CompletedBuild(index_name=name, partition_id=pid, finished_at=at)


def _build_toy(seed: int) -> ScenarioRun:
    service, _events = _fresh_service(seed, horizon_quanta=3)
    state = service.begin_run([])
    a, b = _pick_indexes(service, want=2)
    metrics = state.metrics

    def driver() -> None:
        # Epoch 1: two independent build applies (disjoint indexes,
        # equal billing stamps).
        epoch = Epoch("toy:1")
        epoch.offer(service._build_action(_completed(a, 0, 60.0), metrics, None))
        epoch.offer(service._build_action(_completed(b, 0, 60.0), metrics, None))
        epoch.drain("scenario.epoch_end")
        # Epoch 2: a dependent pair — another build of A racing a
        # delete of A (decided, say, by a tuner flip-flop).
        epoch = Epoch("toy:2")
        epoch.offer(service._build_action(_completed(a, 1, 120.0), metrics, None))
        epoch.offer(service._delete_action(a, 120.0, metrics, None))
        epoch.drain("scenario.epoch_end")

    return ScenarioRun(service, state, driver)


def _build_planted(seed: int) -> ScenarioRun:
    service, _events = _fresh_service(seed, horizon_quanta=3)
    state = service.begin_run([])
    (a,) = _pick_indexes(service, want=1)
    metrics = state.metrics

    def driver() -> None:
        # Setup (canonical, outside the explored epoch): partition 0 of
        # A exists, so the delete below has something to drop.
        drive(service._build_action(_completed(a, 0, 30.0), metrics, None))
        # The explored epoch: a late build apply of A[1] racing the
        # tuner's decision to delete A.
        epoch = Epoch("planted:1")
        epoch.offer(service._build_action(_completed(a, 1, 60.0), metrics, None))
        epoch.offer(service._delete_action(a, 60.0, metrics, None))
        epoch.drain("scenario.epoch_end")

    return ScenarioRun(service, state, driver)


def _build_tenants(seed: int) -> ScenarioRun:
    """Two tenant bulkheads whose actions share the explored epochs.

    The services are built exactly as the front end builds them
    (derived seeds, owner-tagged storage); their action streams are
    intra-tenant independent, so any cross-tenant violation the oracle
    reports is a real bulkhead leak, not a planted race.
    """
    from repro.experiments import derive_seed

    runs: list[tuple[QaaSService, RunState]] = []
    for tenant in range(2):
        service, _events = _fresh_service(
            derive_seed(seed, tenant), horizon_quanta=3
        )
        service.storage.owner = f"t{tenant}"
        runs.append((service, service.begin_run([])))
    (s0, st0), (s1, st1) = runs
    a0, b0 = _pick_indexes(s0, want=2)
    a1 = next(n for n in _pick_indexes(s1, want=2) if n != a0)
    m0, m1 = st0.metrics, st1.metrics

    def driver() -> None:
        # Epoch 1: both tenants apply one build; any interleaving must
        # keep each catalog/storage mutation within its own bulkhead.
        epoch = Epoch("tenants:1")
        epoch.offer(s0._build_action(_completed(a0, 0, 60.0), m0, None))
        epoch.offer(s1._build_action(_completed(a1, 0, 60.0), m1, None))
        epoch.drain("scenario.epoch_end")
        # Epoch 2: tenant 0 builds B and drops A (independent indexes)
        # while tenant 1 keeps building — the delete may only ever
        # touch tenant 0's digest.
        epoch = Epoch("tenants:2")
        epoch.offer(s0._build_action(_completed(b0, 0, 120.0), m0, None))
        epoch.offer(s0._delete_action(a0, 120.0, m0, None))
        epoch.offer(s1._build_action(_completed(a1, 1, 120.0), m1, None))
        epoch.drain("scenario.epoch_end")

    return ScenarioRun(s0, st0, driver, extras=((s1, st1),))


def _build_service(seed: int, horizon_quanta: int) -> ScenarioRun:
    service, events = _fresh_service(seed, horizon_quanta)
    state = service.begin_run(events)

    def driver() -> None:
        while service.step(state):
            pass
        service.finish_run(state)

    return ScenarioRun(service, state, driver)
