"""Replay files: byte-deterministic reproduction of a found violation.

When exploration finds (and minimizes) a failing schedule, the engine
can save it as a small JSON file; ``repro chaos explore --replay
<file>`` later re-executes exactly that schedule — same scenario, same
seed, same branch choices — and checks that the *same* violations (name,
timestamp, detail, byte for byte) fire again. Replay is a pure function
of the file's contents, so a saved trace keeps reproducing across
machines and sessions.

Format (version 1)::

    {
      "version": 1,
      "kind": "repro-explore-replay",
      "scenario": {"name": "planted", "seed": 0,
                   "params": {"horizon_quanta": 3}},
      "schedule": [["offer:build:idx:1", "defer"], ...],
      "expected": [["delete-racing-build", 60.0, "index ..."], ...]
    }

``schedule`` entries are ``(choice site, picked option)`` pairs as
recorded by the controller; ``expected`` holds the violations the trace
must reproduce (empty = just re-run the schedule).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.explore.scenarios import SCENARIOS, Scenario, build_scenario
from repro.recovery.invariants import InvariantViolation

REPLAY_KIND = "repro-explore-replay"
REPLAY_VERSION = 1

#: Choice-site prefixes a stored schedule entry may carry.
_SITE_PREFIXES = ("offer:", "pause:", "require:", "drain:")


@dataclass(frozen=True)
class ReplayFile:
    """A parsed, validated replay file."""

    scenario: Scenario
    schedule: tuple[tuple[str, str], ...]
    expected: tuple[InvariantViolation, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "version": REPLAY_VERSION,
            "kind": REPLAY_KIND,
            "scenario": {
                "name": self.scenario.name,
                "seed": self.scenario.seed,
                "params": self.scenario.params(),
            },
            "schedule": [list(entry) for entry in self.schedule],
            "expected": [
                [v.name, v.t, v.detail] for v in self.expected
            ],
        }


@dataclass(frozen=True)
class ReplayResult:
    """The outcome of re-executing a replay file."""

    violations: tuple[InvariantViolation, ...]
    expected: tuple[InvariantViolation, ...]
    steps: tuple[str, ...]

    @property
    def reproduced(self) -> bool:
        """True when the replay fired byte-identical violations."""
        return self.violations == self.expected


def save_replay(
    path: str | Path,
    scenario: Scenario,
    schedule: list[tuple[str, str]] | tuple[tuple[str, str], ...],
    expected: list[InvariantViolation] | tuple[InvariantViolation, ...],
) -> ReplayFile:
    """Write a replay file; returns the parsed form."""
    replay = ReplayFile(
        scenario=scenario,
        schedule=tuple(tuple(e) for e in schedule),
        expected=tuple(expected),
    )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(replay.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return replay


def load_replay(path: str | Path) -> ReplayFile:
    """Parse and validate a replay file (names checked against the
    registries so typos fail fast with the valid options listed)."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable replay file {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("kind") != REPLAY_KIND:
        raise ValueError(
            f"{path} is not a replay file (kind must be {REPLAY_KIND!r})"
        )
    if raw.get("version") != REPLAY_VERSION:
        raise ValueError(
            f"unsupported replay version {raw.get('version')!r}; "
            f"this build reads version {REPLAY_VERSION}"
        )
    info = raw.get("scenario")
    if not isinstance(info, dict) or "name" not in info:
        raise ValueError(f"{path}: missing scenario block")
    name = info["name"]
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; valid names: "
            f"{', '.join(sorted(SCENARIOS))}"
        )
    scenario = build_scenario(
        name, seed=int(info.get("seed", 0)), **dict(info.get("params", {}))
    )
    schedule: list[tuple[str, str]] = []
    for entry in raw.get("schedule", []):
        if not (isinstance(entry, list) and len(entry) == 2):
            raise ValueError(f"{path}: malformed schedule entry {entry!r}")
        site, picked = str(entry[0]), str(entry[1])
        if not site.startswith(_SITE_PREFIXES):
            raise ValueError(
                f"{path}: unknown choice site {site!r}; sites must start "
                f"with one of: {', '.join(_SITE_PREFIXES)}"
            )
        schedule.append((site, picked))
    expected = tuple(
        InvariantViolation(name=str(e[0]), t=float(e[1]), detail=str(e[2]))
        for e in raw.get("expected", [])
    )
    return ReplayFile(
        scenario=scenario, schedule=tuple(schedule), expected=expected
    )


def run_replay(replay: ReplayFile) -> ReplayResult:
    """Re-execute a replay file's schedule and compare its violations."""
    from repro.explore.minimize import replay_trace

    controller, violations, _checks = replay_trace(
        replay.scenario, list(replay.schedule)
    )
    return ReplayResult(
        violations=violations,
        expected=replay.expected,
        steps=tuple(controller.steps),
    )
