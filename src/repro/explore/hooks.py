"""Interleaving hooks: the pure-stdlib leaf of :mod:`repro.explore`.

Exactly like :mod:`repro.recovery.hooks` (crash points) and
:mod:`repro.obs` (observability sinks), this module is an LAY01
``ALLOWED_LEAVES`` carve-out: the service loop imports it to mark its
atomic actions, and it imports nothing from the rest of ``repro`` so it
can never close a package cycle. The exploration machinery that *uses*
these hooks (controller, strategies, minimizer, replay) lives in the
sibling modules above ``repro.core`` and is never imported from below —
LAY01 additionally bans every other leaf from importing this one, so a
yield point can never leak into the substrate layers.

Three facilities:

* **Named yield points** — the registry of micro-step boundaries inside
  interleavable actions (:data:`YIELD_POINTS`), the synchronisation
  sites of the service loop (:data:`SYNC_POINTS`) and the passive
  annotation points (:data:`NOTE_POINTS`). Unknown names fail fast with
  an error that lists every valid name, mirroring the crash-point
  registry contract.
* :class:`Action` — one interleavable atomic action (a build apply, a
  delete, a kill-checkpoint apply, a slot-fill) wrapped around a
  generator whose ``yield`` statements are the named micro-step
  boundaries.
* :class:`Epoch` — the service-side protocol (``offer`` / ``pause`` /
  ``require`` / ``drain``). With no :class:`InterleaveController`
  installed every offered action runs to completion *immediately at the
  offer site*, which executes exactly the canonical statement order: a
  default run is byte-identical to a build without exploration wired in
  at all. The explore engine installs a controller that owns the
  interleaving order instead.
"""

from __future__ import annotations

from typing import Iterator

#: Micro-step boundary names inside interleavable actions, in rough
#: execution order. A generator-backed :class:`Action` yields these
#: between its micro-steps; :meth:`Action.advance` rejects unknown
#: names so the registry can never rot.
YIELD_POINTS: tuple[str, ...] = (
    "build.storage_put",      # a completed build charges storage (put)
    "build.catalog_mark",     # ... then inserts the partition into the catalog
    "kill.checkpoint",        # a preemption kill persists partial progress
    "history.append",         # the executed dataflow enters the gain window
    "delete.storage_object",  # a flagged index drops one partition object
    "delete.catalog_drop",    # ... then removes its partitions from the catalog
    "slotfill.execute",       # the decision's builds are slot-filled + executed
)

#: Synchronisation sites of the service loop / scenario drivers where a
#: controller may advance pending actions (``pause`` and ``drain``).
SYNC_POINTS: tuple[str, ...] = (
    "service.pre_decide",
    "service.step_end",
    "service.finish",
    "scenario.epoch_end",
)

#: Passive annotation points (:func:`note`): one-way notifications from
#: the tuner / pool / simulator that land in exploration traces for
#: context but are never scheduling choices.
NOTE_POINTS: tuple[str, ...] = (
    "tuner.decide",
    "pool.acquire",
    "sim.slot_fill",
    "sim.preempt_kill",
)

_YIELD_POINT_SET = frozenset(YIELD_POINTS)
_SYNC_POINT_SET = frozenset(SYNC_POINTS)
_NOTE_POINT_SET = frozenset(NOTE_POINTS)


def all_point_names() -> tuple[str, ...]:
    """Every registered point name (yield + sync + note), in order."""
    return YIELD_POINTS + SYNC_POINTS + NOTE_POINTS


def unknown_point_error(
    kind: str, name: str, valid: tuple[str, ...], context: str | None = None
) -> ValueError:
    """A fail-fast error listing every valid name (registry contract).

    ``context`` names the offending site (e.g. which action's generator
    yielded the bad point) so the error is actionable without a
    debugger.
    """
    where = f" (in {context})" if context else ""
    return ValueError(
        f"unknown {kind} {name!r}{where}; valid names: {', '.join(valid)}"
    )


#: The universal resource: an action holding it commutes with nothing.
ALL_RESOURCES = "*"

#: The closed effect-lattice vocabulary, mirrored from the static flow
#: analysis (``repro.analysis.flow.effects.RESOURCES``). Kept literal
#: here because this module is an LAY01 leaf and must not import the
#: analysis package; a test asserts the two stay identical.
EFFECT_RESOURCES: tuple[str, ...] = (
    "billing",
    "catalog",
    "clock",
    "fs",
    "history",
    "metrics",
    "pool",
    "rng",
    "storage",
)

_EFFECT_RESOURCE_SET = frozenset(EFFECT_RESOURCES)


def declared_effects(*items: str) -> frozenset[str]:
    """Validate and freeze a declared effect footprint.

    Each item is ``"<resource>:<r|w>"`` over :data:`EFFECT_RESOURCES`.
    The EFF01 static checker reads these declarations (module-level
    ``ACTION_EFFECTS`` dicts built from constant strings) and proves
    them to be sound supersets of the generator's inferred effects;
    this runtime validation keeps typos from silently widening or
    narrowing a declaration.
    """
    for item in items:
        resource, sep, polarity = item.partition(":")
        if not sep or resource not in _EFFECT_RESOURCE_SET or polarity not in ("r", "w"):
            raise ValueError(
                f"invalid declared effect {item!r}; expected <resource>:<r|w> "
                f"with resource in {{{', '.join(EFFECT_RESOURCES)}}}"
            )
    return frozenset(items)


class Action:
    """One interleavable atomic action, decomposed into micro-steps.

    Wraps a generator: every ``yield "<point>"`` inside it is a named
    boundary where an installed controller may interleave other
    actions' micro-steps. With no controller the generator is driven to
    exhaustion at the offer site (canonical order).

    Attributes:
        key: Stable identity within its epoch (``build:ix_a:0``).
        kind: Action family (``build`` / ``delete`` / ``kill`` /
            ``history`` / ``slotfill``), used by oracles.
        entry: Name of the first micro-step (the boundary the action
            is parked at before its first :meth:`advance`).
        resources: Footprint used by the partial-order independence
            oracle: two actions commute iff their footprints are
            disjoint and neither holds :data:`ALL_RESOURCES`.
        stamp: Simulated time of the action's storage mutations, if
            any. The cloud billing clock is a shared monotone resource:
            two storage ops commute in the MB·s integral only when they
            charge at the same instant, so differing stamps make two
            actions dependent even with disjoint footprints.
        effects: The declared effect-lattice footprint of the wrapped
            generator (see :func:`declared_effects`), or ``None`` when
            the registering module carries no declaration. The EFF01
            static checker proves declarations sound; this attribute
            exposes them to runtime introspection (oracles, traces).
        seq: Offer order within the run, stamped by the controller.
    """

    __slots__ = (
        "key", "kind", "entry", "resources", "stamp", "effects", "seq",
        "_gen", "started", "done", "steps_run", "last_point",
    )

    def __init__(
        self,
        key: str,
        kind: str,
        gen: Iterator[str],
        resources: frozenset[str],
        entry: str,
        stamp: float | None = None,
        effects: frozenset[str] | None = None,
    ) -> None:
        self.key = key
        self.kind = kind
        self.entry = entry
        self.resources = resources
        self.stamp = stamp
        self.effects = None if effects is None else declared_effects(*effects)
        self.seq = -1
        self._gen = gen
        self.started = False
        self.done = False
        self.steps_run = 0
        self.last_point: str | None = entry
        if entry not in _YIELD_POINT_SET:
            raise unknown_point_error(
                "yield point", entry, YIELD_POINTS, context=self.label
            )

    @property
    def origin(self) -> str:
        """The qualified name of the generator function backing this action."""
        code = getattr(self._gen, "gi_code", None)
        if code is None:
            return "<unknown generator>"
        return getattr(code, "co_qualname", code.co_name)

    @property
    def label(self) -> str:
        """``action 'build:ix_a:0' (kind 'build', gen QaaSService._iter_apply_build)``."""
        return f"action {self.key!r} (kind {self.kind!r}, gen {self.origin})"

    def advance(self) -> str | None:
        """Run one micro-step; returns the next boundary (None = done)."""
        if self.done:
            raise RuntimeError(f"{self.label} already completed")
        self.started = True
        self.steps_run += 1
        try:
            point = next(self._gen)
        except StopIteration:
            self.done = True
            self.last_point = None
            return None
        if point not in _YIELD_POINT_SET:
            raise unknown_point_error(
                "yield point", point, YIELD_POINTS, context=self.label
            )
        self.last_point = point
        return point

    def independent(self, other: "Action") -> bool:
        """Whether the two actions commute (disjoint footprints, and no
        billing-clock conflict: see :attr:`stamp`)."""
        if ALL_RESOURCES in self.resources or ALL_RESOURCES in other.resources:
            return False
        if not self.resources.isdisjoint(other.resources):
            return False
        if (
            self.stamp is not None
            and other.stamp is not None
            and self.stamp != other.stamp
        ):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("running" if self.started else "pending")
        return f"Action({self.key!r}, {state}, steps={self.steps_run})"


def drive(action: Action) -> None:
    """Run an action to completion (the canonical, controller-free path)."""
    while action.advance() is not None:
        pass


class InterleaveController:
    """The interface a schedule controller implements.

    The concrete implementation lives in :mod:`repro.explore.controller`
    (above ``repro.core``); only the call surface is defined here so the
    service can invoke it without an upward import.
    """

    def on_offer(self, action: Action) -> None:
        raise NotImplementedError

    def on_pause(self, site: str) -> None:
        raise NotImplementedError

    def on_require(self, action: Action) -> None:
        raise NotImplementedError

    def on_drain(self, site: str) -> None:
        raise NotImplementedError

    def on_note(self, point: str) -> None:
        raise NotImplementedError


_ACTIVE_CONTROLLER: InterleaveController | None = None


def install_controller(
    controller: InterleaveController | None,
) -> InterleaveController | None:
    """Install (or clear, with ``None``) the process schedule controller.

    Returns the previously installed controller so tests can restore it.
    """
    global _ACTIVE_CONTROLLER
    previous = _ACTIVE_CONTROLLER
    _ACTIVE_CONTROLLER = controller
    return previous


def active_controller() -> InterleaveController | None:
    """The currently installed schedule controller, or ``None``."""
    return _ACTIVE_CONTROLLER


def note(point: str) -> None:
    """A passive annotation point: free when no controller is installed.

    Like :func:`repro.recovery.hooks.crash_point`, the name check runs
    only on the (cold) controlled path, so the hot path costs one global
    load and one ``is None`` test.
    """
    controller = _ACTIVE_CONTROLLER
    if controller is None:
        return
    if point not in _NOTE_POINT_SET:
        raise unknown_point_error("note point", point, NOTE_POINTS)
    controller.on_note(point)


class Epoch:
    """One interleaving window of offered actions (one service step).

    The service offers every atomic action of the step through an epoch;
    ``pause``/``drain`` mark the synchronisation sites where a controller
    may run pending micro-steps. The controller-free path is the
    canonical order: every offered action completes at the offer site.
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def offer(self, action: Action) -> None:
        """Hand one action to the scheduler (canonical: run it now)."""
        controller = _ACTIVE_CONTROLLER
        if controller is None:
            drive(action)
            return
        controller.on_offer(action)

    def pause(self, site: str) -> None:
        """A named site where pending actions may (or may not) advance."""
        controller = _ACTIVE_CONTROLLER
        if controller is None:
            return
        if site not in _SYNC_POINT_SET:
            raise unknown_point_error("sync point", site, SYNC_POINTS)
        controller.on_pause(site)

    def require(self, action: Action) -> None:
        """Block until ``action`` has completed (canonical: it has)."""
        controller = _ACTIVE_CONTROLLER
        if controller is None:
            return
        controller.on_require(action)

    def drain(self, site: str) -> None:
        """End of the epoch: every offered action must complete here."""
        controller = _ACTIVE_CONTROLLER
        if controller is None:
            return
        if site not in _SYNC_POINT_SET:
            raise unknown_point_error("sync point", site, SYNC_POINTS)
        controller.on_drain(site)
