"""The exploration engine: run a scenario under many schedules.

Every schedule runs on a *fresh* scenario instance (the scenario
builder is a pure function of its seed) under a
:class:`~repro.explore.controller.ScheduleController`; after every
micro-step that leaves no action mid-flight the run is checked by
PR 5's :class:`~repro.recovery.invariants.InvariantMonitor`, and at
every epoch end additionally by the order-sensitive
:class:`~repro.explore.oracle.InterleavingOracle`. A violation halts
the schedule (the rest of the run is unreachable anyway — the bug
already happened) and is recorded with its full branch trace; the
first one is then greedily minimized to a shortest failing trace
suitable for a replay file.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.explore.controller import (
    ExplorationHalt,
    ExplorationStrategy,
    ScheduleController,
    ScheduleObserver,
)
from repro.explore.hooks import Action, install_controller
from repro.explore.oracle import CrossTenantOracle, InterleavingOracle
from repro.explore.scenarios import Scenario, ScenarioRun
from repro.obs import NOOP_OBS, Observation
from repro.recovery.invariants import (
    InvariantError,
    InvariantMonitor,
    InvariantViolation,
)
from repro.explore.strategies import DfsStrategy, DfsTree, RandomWalkStrategy

logger = logging.getLogger(__name__)

#: Valid --explore-strategy values.
EXPLORE_MODES = ("exhaustive", "por", "random")

#: Hard cap on schedules per exploration (runaway-DFS backstop).
DEFAULT_MAX_SCHEDULES = 20_000


@dataclass(frozen=True)
class FoundViolation:
    """One failing schedule: its branch trace and what it broke."""

    schedule_index: int
    trace: tuple[tuple[str, str], ...]
    steps: tuple[str, ...]
    violations: tuple[InvariantViolation, ...]


@dataclass
class ExploreReport:
    """The outcome of one exploration."""

    scenario: str
    mode: str
    seed: int
    schedules: int = 0
    choices: int = 0
    pruned: int = 0
    checks: int = 0
    distinct_orderings: int = 0
    truncated: bool = False
    violations: list[FoundViolation] = field(default_factory=list)
    minimized: FoundViolation | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_names(self) -> set[str]:
        """The distinct invariant names violated across all schedules."""
        return {v.name for found in self.violations for v in found.violations}

    def context(self) -> dict[str, Any]:
        """The reproduction recipe attached to raised InvariantErrors."""
        first = self.violations[0] if self.violations else None
        return {
            "harness": "explore",
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "schedule_index": first.schedule_index if first else None,
            "schedule_prefix": [list(c) for c in first.trace] if first else [],
        }


class RunObserver(ScheduleObserver):
    """Checks invariants at quiescent points and epoch ends."""

    def __init__(self, run: ScenarioRun) -> None:
        self.run = run
        self.monitor = InvariantMonitor(run.service)
        self.oracle = InterleavingOracle(run.service)
        # Multi-tenant scenarios: every bulkhead gets its own state
        # monitor and the tenant oracle watches all of them per step.
        self.extra_monitors = [
            (InvariantMonitor(service), service, state)
            for service, state in run.extras
        ]
        self.tenant_oracle = (
            CrossTenantOracle(
                [run.service] + [service for service, _state in run.extras]
            )
            if run.extras
            else None
        )
        self.checks = 0

    def on_step(self, action: Action, controller: ScheduleController) -> None:
        self.oracle.on_step(action)
        if self.tenant_oracle is not None:
            violations = self.tenant_oracle.on_step(action)
            if violations:
                raise ExplorationHalt(violations)

    def on_quiescent(self, site: str, controller: ScheduleController) -> None:
        self._check(epoch_end=False)

    def on_epoch_end(self, site: str, controller: ScheduleController) -> None:
        self._check(epoch_end=True)

    def _check(self, epoch_end: bool) -> None:
        self.checks += 1
        t = self.run.service.storage.accounted_until
        violations = self.monitor.check(self.run.state, t)
        for monitor, service, state in self.extra_monitors:
            violations.extend(
                monitor.check(state, service.storage.accounted_until)
            )
        if epoch_end:
            violations.extend(self.oracle.check_epoch_end(t))
        if violations:
            raise ExplorationHalt(violations)


def run_schedule(
    scenario: Scenario, strategy: ExplorationStrategy, por: bool = False
) -> tuple[ScheduleController, tuple[InvariantViolation, ...], int]:
    """Run one schedule of ``scenario``; returns (controller, violations,
    invariant checks performed)."""
    run = scenario.build()
    observer = RunObserver(run)
    controller = ScheduleController(strategy, observer=observer, por=por)
    previous = install_controller(controller)
    violations: tuple[InvariantViolation, ...] = ()
    try:
        run.drive()
    except ExplorationHalt as halt:
        violations = tuple(halt.violations)
    finally:
        install_controller(previous)
    return controller, violations, observer.checks


def explore(
    scenario: Scenario,
    mode: str = "exhaustive",
    *,
    budget: int = 64,
    depth: int | None = 12,
    minimize: bool = True,
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
    obs: Observation = NOOP_OBS,
) -> ExploreReport:
    """Explore the scenario's schedule space; returns the report.

    ``mode`` is one of :data:`EXPLORE_MODES`: ``exhaustive`` (bounded
    DFS over every branch), ``por`` (the same DFS with partial-order
    pruning of commutative reorderings) or ``random`` (``budget``
    seeded walks). ``depth`` bounds the branching sites per schedule in
    the DFS modes; sites beyond it take the canonical option.
    """
    if mode not in EXPLORE_MODES:
        raise ValueError(
            f"unknown exploration mode {mode!r}; valid names: "
            f"{', '.join(EXPLORE_MODES)}"
        )
    report = ExploreReport(scenario=scenario.name, mode=mode, seed=scenario.seed)
    orderings: set[tuple[str, ...]] = set()

    def record(
        controller: ScheduleController,
        violations: tuple[InvariantViolation, ...],
        checks: int,
        index: int,
    ) -> None:
        report.schedules += 1
        report.choices += controller.choices_made
        report.pruned += controller.pruned
        report.checks += checks
        orderings.add(tuple(controller.steps))
        if obs.enabled:
            obs.metrics.counter("explore/schedules").inc()
            obs.metrics.counter("explore/choices").inc(controller.choices_made)
            obs.metrics.counter("explore/pruned").inc(controller.pruned)
        if violations:
            found = FoundViolation(
                schedule_index=index,
                trace=tuple((c.site, c.picked) for c in controller.trace),
                steps=tuple(controller.steps),
                violations=violations,
            )
            report.violations.append(found)
            if obs.enabled:
                obs.metrics.counter("explore/violations").inc(len(violations))
                obs.journal.emit(
                    "explore_violation",
                    t=float(len(controller.steps)),
                    scenario=scenario.name,
                    mode=mode,
                    schedule_index=index,
                    names=sorted({v.name for v in violations}),
                    trace=[list(entry) for entry in found.trace],
                )

    if mode in ("exhaustive", "por"):
        tree = DfsTree(depth)
        index = 0
        while True:
            controller, violations, checks = run_schedule(
                scenario, DfsStrategy(tree), por=(mode == "por")
            )
            record(controller, violations, checks, index)
            index += 1
            if index >= max_schedules:
                report.truncated = True
                logger.warning(
                    "exploration truncated at %d schedules (raise "
                    "--max-schedules or lower --depth to finish the tree)",
                    max_schedules,
                )
                break
            if not tree.advance():
                break
    else:
        rng = np.random.default_rng(scenario.seed)
        for index in range(budget):
            controller, violations, checks = run_schedule(
                scenario, RandomWalkStrategy(rng)
            )
            record(controller, violations, checks, index)

    report.distinct_orderings = len(orderings)
    if minimize and report.violations:
        report.minimized = minimize_violation(scenario, report.violations[0])
        if obs.enabled and report.minimized is not None:
            obs.journal.emit(
                "explore_minimized",
                t=0.0,
                scenario=scenario.name,
                names=sorted({v.name for v in report.minimized.violations}),
                trace=[list(entry) for entry in report.minimized.trace],
            )
    if obs.enabled:
        obs.journal.emit(
            "explore_done",
            t=0.0,
            scenario=scenario.name,
            mode=mode,
            schedules=report.schedules,
            distinct_orderings=report.distinct_orderings,
            pruned=report.pruned,
            violations=sorted(report.violation_names()),
        )
    return report


def minimize_violation(
    scenario: Scenario, found: FoundViolation
) -> FoundViolation | None:
    """Greedily minimize a failing trace; returns the re-verified result."""
    from repro.explore.minimize import minimize_trace, replay_trace

    target = found.violations[0].name
    trace = minimize_trace(scenario, list(found.trace), target)
    if trace is None:  # pragma: no cover - the full trace must reproduce
        logger.warning("minimization failed to reproduce %s", target)
        return None
    controller, violations, _checks = replay_trace(scenario, trace)
    return FoundViolation(
        schedule_index=-1,
        trace=tuple(trace),
        steps=tuple(controller.steps),
        violations=violations,
    )


def invariant_error(report: ExploreReport) -> InvariantError:
    """Package a failing report as an InvariantError with repro context."""
    found = report.minimized or report.violations[0]
    return InvariantError(list(found.violations), context=report.context())
