"""Greedy trace minimization.

A failing schedule's branch trace can carry dozens of choices that have
nothing to do with the violation. The minimizer shrinks it in two
passes, re-running the scenario after every probe (each probe is a full
fresh run under :class:`~repro.explore.strategies.ReplayStrategy`, with
canonical completion past the candidate trace):

1. *Shortest failing prefix* — try prefixes of ascending length and
   keep the first one that still reproduces the target violation.
2. *Greedy deletion* — repeatedly drop single entries from the prefix
   while the violation survives, to a fixpoint.

The result is the shortest trace this greedy procedure can find (not
necessarily a global minimum — delta-debugging subsets would be
stronger — but in practice the planted races minimize to one entry).
"""

from __future__ import annotations

from repro.explore.controller import ScheduleController
from repro.explore.scenarios import Scenario
from repro.explore.strategies import ReplayStrategy
from repro.recovery.invariants import InvariantViolation

Trace = list[tuple[str, str]]


def replay_trace(
    scenario: Scenario, trace: Trace
) -> tuple[ScheduleController, tuple[InvariantViolation, ...], int]:
    """Run one schedule that re-applies ``trace`` (canonical elsewhere)."""
    from repro.explore.engine import run_schedule

    return run_schedule(scenario, ReplayStrategy(trace))


def _reproduces(scenario: Scenario, trace: Trace, target: str) -> bool:
    _controller, violations, _checks = replay_trace(scenario, trace)
    return any(v.name == target for v in violations)


def minimize_trace(
    scenario: Scenario, trace: Trace, target: str
) -> Trace | None:
    """Shrink ``trace`` while the violation ``target`` still reproduces.

    Returns the minimized trace, or None if even the full trace fails to
    reproduce (a non-deterministic scenario — should never happen).
    """
    if not _reproduces(scenario, trace, target):
        return None
    # Pass 1: shortest failing prefix.
    best = trace
    for n in range(len(trace)):
        prefix = trace[:n]
        if _reproduces(scenario, prefix, target):
            best = prefix
            break
    # Pass 2: greedy single-entry deletion to a fixpoint.
    shrunk = True
    while shrunk:
        shrunk = False
        for k in range(len(best)):
            candidate = best[:k] + best[k + 1 :]
            if _reproduces(scenario, candidate, target):
                best = candidate
                shrunk = True
                break
    return list(best)
