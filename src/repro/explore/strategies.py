"""Exploration strategies: identity, seeded random walks, bounded DFS,
and trace replay.

All strategies are pure functions of their construction arguments plus
the deterministic choice-site stream, so any schedule they produce can
be reproduced exactly from ``(scenario, seed, trace)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.explore.controller import ExplorationStrategy
from repro.explore.hooks import Action


class IdentityStrategy(ExplorationStrategy):
    """Option 0 everywhere: the canonical (controller-free) schedule."""

    def choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
        last: Action | None,
    ) -> int:
        return 0


class RandomWalkStrategy(ExplorationStrategy):
    """Uniform choice at every site from a seeded generator.

    One generator is shared across a whole walk budget, so walk ``k`` is
    a deterministic function of ``(seed, k)``.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
        last: Action | None,
    ) -> int:
        return int(self.rng.integers(0, len(options)))


class DfsTree:
    """Cross-run cursor for bounded exhaustive enumeration.

    Stateless-model-checking DFS: each schedule run replays the choice
    prefix recorded on the stack, then takes option 0 at every new site
    (recording its branching factor). Between runs :meth:`advance` bumps
    the deepest site with untried options and pops exhausted ones.
    ``depth`` bounds the number of *branching* sites per schedule;
    deeper sites silently take the canonical option.
    """

    def __init__(self, depth: int | None = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        #: Stack of [picked_index, option_count] per branch site.
        self.stack: list[list[int]] = []

    def advance(self) -> bool:
        """Move to the next unexplored path; False when the tree is done."""
        while self.stack:
            top = self.stack[-1]
            if top[0] + 1 < top[1]:
                top[0] += 1
                return True
            self.stack.pop()
        return False


class DfsStrategy(ExplorationStrategy):
    """One schedule's view of a :class:`DfsTree` (fresh per run)."""

    def __init__(self, tree: DfsTree) -> None:
        self.tree = tree
        self._pos = 0

    def choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
        last: Action | None,
    ) -> int:
        stack = self.tree.stack
        if self._pos < len(stack):
            pick, count = stack[self._pos]
            if count != len(options):  # pragma: no cover - determinism guard
                raise RuntimeError(
                    f"non-deterministic scenario: site {site!r} offered "
                    f"{len(options)} options, previously {count}"
                )
            self._pos += 1
            return pick
        if self.tree.depth is not None and len(stack) >= self.tree.depth:
            return 0  # beyond the branch budget: canonical completion
        stack.append([0, len(options)])
        self._pos += 1
        return 0


class ReplayStrategy(ExplorationStrategy):
    """Re-apply a recorded (or minimized) trace, canonical elsewhere.

    Entries are ``(site, picked)`` pairs consumed in order: the head
    entry applies when its site label matches the current choice site
    and its picked option is available; a non-matching site leaves the
    entry queued (minimization deletes entries, so later sites of a
    shortened trace still line up). Divergences are counted rather than
    fatal — a replayed *prefix* plus canonical completion is exactly how
    the minimizer probes candidate traces.
    """

    def __init__(self, schedule: Sequence[tuple[str, str]]) -> None:
        self.schedule = list(schedule)
        self._cursor = 0
        self.divergences = 0

    @property
    def consumed(self) -> int:
        """How many trace entries have been applied."""
        return self._cursor

    def choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
        last: Action | None,
    ) -> int:
        if self._cursor >= len(self.schedule):
            return 0
        rec_site, picked = self.schedule[self._cursor]
        if rec_site != site:
            return 0
        self._cursor += 1
        if picked in options:
            return list(options).index(picked)
        self.divergences += 1
        return 0
