"""Deterministic schedule-space exploration (``repro chaos explore``).

The service loop's atomic actions (build applies, deletes, kill
checkpoints, history appends, slot-fills) are generator-backed
:class:`~repro.explore.hooks.Action` objects with named yield points;
a :class:`~repro.explore.controller.ScheduleController` owns their
interleaving order and an exploration strategy — seeded random walks,
bounded exhaustive DFS, or DFS with partial-order reduction — picks the
schedule. Every quiescent point is invariant-checked; violations are
greedily minimized to a shortest failing trace and saved as replay
files that re-execute byte-deterministically.

Only :mod:`repro.explore.hooks` (the pure-stdlib leaf the service loop
imports) loads eagerly here; everything else resolves lazily via PEP
562 so that ``repro.core.service`` can import the hooks leaf without
dragging the whole exploration stack (which imports the service back)
into its own import cycle.

See ``docs/CONCURRENCY.md`` for the yield-point catalog, the strategy
descriptions, the replay-file format and how to add an invariant.
"""

from typing import Any

from repro.explore.hooks import (
    ALL_RESOURCES,
    NOTE_POINTS,
    SYNC_POINTS,
    YIELD_POINTS,
    Action,
    Epoch,
    InterleaveController,
    active_controller,
    all_point_names,
    drive,
    install_controller,
    note,
)

#: Lazily resolved name -> defining submodule.
_LAZY: dict[str, str] = {
    "Choice": "controller",
    "ExplorationHalt": "controller",
    "ExplorationStrategy": "controller",
    "ScheduleController": "controller",
    "ScheduleObserver": "controller",
    "EXPLORE_MODES": "engine",
    "ExploreReport": "engine",
    "FoundViolation": "engine",
    "explore": "engine",
    "invariant_error": "engine",
    "run_schedule": "engine",
    "minimize_trace": "minimize",
    "replay_trace": "minimize",
    "InterleavingOracle": "oracle",
    "ReplayFile": "replay",
    "ReplayResult": "replay",
    "load_replay": "replay",
    "run_replay": "replay",
    "save_replay": "replay",
    "SCENARIOS": "scenarios",
    "Scenario": "scenarios",
    "build_scenario": "scenarios",
    "DfsStrategy": "strategies",
    "DfsTree": "strategies",
    "IdentityStrategy": "strategies",
    "RandomWalkStrategy": "strategies",
    "ReplayStrategy": "strategies",
}

__all__ = sorted(
    [
        "ALL_RESOURCES",
        "NOTE_POINTS",
        "SYNC_POINTS",
        "YIELD_POINTS",
        "Action",
        "Epoch",
        "InterleaveController",
        "active_controller",
        "all_point_names",
        "drive",
        "install_controller",
        "note",
        *_LAZY,
    ]
)


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return __all__
