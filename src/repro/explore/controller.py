"""The schedule controller: owns the interleaving order of actions.

The service offers its atomic actions through :class:`~repro.explore.
hooks.Epoch`; with a :class:`ScheduleController` installed each
synchronisation site becomes a *choice site* where an exploration
strategy picks the next move:

* ``offer:<key>``   — binary choice: run the just-offered action to
  completion now (``run``, the canonical move) or leave it pending
  (``defer``);
* ``pause:<site>``  — loop: return control to the service (``proceed``,
  canonical) or advance one pending action by one micro-step;
* ``require:<key>`` — loop until the required action completes;
  advancing it is the canonical move, advancing another pending action
  first interleaves;
* ``drain:<site>``  — loop until every pending action completes;
  canonical order is offer order.

The *identity schedule* — option 0 at every choice site — therefore
reproduces the controller-free canonical execution exactly, which is
the anchor the byte-identity tests pin.

Forced moves (a single option, possibly after partial-order pruning)
consume no choice and are not recorded, so traces stay minimal and a
replayed prefix re-derives them deterministically.

Partial-order reduction ("sleep-set lite"): when enabled, a candidate
action ``a`` is pruned at a choice site if the immediately preceding
micro-step belonged to an action ``b`` with ``a.seq < b.seq`` and
``a.independent(b)`` — the schedule that runs ``a`` first is explored
on another branch, and independence means the two orders reach the same
state. Options that return control to the service (``run``/``defer``/
``proceed``) are main-thread moves and are never pruned; whenever
control returns to the service the "last step" resets, so pruning only
ever fires between genuinely adjacent action micro-steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.explore.hooks import Action, InterleaveController
from repro.recovery.invariants import InvariantViolation

#: Option labels for the main-thread moves.
PROCEED = "proceed"
RUN_NOW = "run"
DEFER = "defer"


@dataclass(frozen=True)
class Choice:
    """One recorded branch decision: at ``site``, ``picked`` was chosen
    among ``options`` (the post-pruning option labels)."""

    site: str
    options: tuple[str, ...]
    picked: str


class ExplorationHalt(BaseException):
    """Raised by a schedule observer to cut a schedule short.

    A ``BaseException`` (like :class:`~repro.recovery.hooks.
    SimulatedCrash`) so it sails through any ``except Exception``
    handler between the observer callback and the engine.
    """

    def __init__(self, violations: list[InvariantViolation]) -> None:
        super().__init__("; ".join(str(v) for v in violations))
        self.violations = violations


class ScheduleObserver:
    """Callbacks the exploration engine hooks into the controller."""

    def on_step(self, action: Action, controller: "ScheduleController") -> None:
        """One micro-step of ``action`` just ran."""

    def on_quiescent(self, site: str, controller: "ScheduleController") -> None:
        """No action is mid-flight: a consistent point to check invariants."""

    def on_epoch_end(self, site: str, controller: "ScheduleController") -> None:
        """A drain completed: every offered action has run to completion."""


class ExplorationStrategy:
    """Picks one option index at every (post-pruning) choice site."""

    def choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
        last: Action | None,
    ) -> int:
        raise NotImplementedError


class ScheduleController(InterleaveController):
    """Drives offered actions according to an exploration strategy.

    Records the branch decisions (:attr:`trace`), the flat micro-step
    order (:attr:`steps`, one action key per micro-step — the schedule's
    equivalence signature) and passive notes, and reports quiescent
    points to the observer for invariant checking.
    """

    def __init__(
        self,
        strategy: ExplorationStrategy,
        observer: ScheduleObserver | None = None,
        por: bool = False,
    ) -> None:
        self.strategy = strategy
        self.observer = observer
        self.por = por
        self.pending: list[Action] = []
        self.trace: list[Choice] = []
        self.steps: list[str] = []
        self.notes: list[str] = []
        self.choices_made = 0
        self.pruned = 0
        self._seq = 0
        self._last: Action | None = None

    # -- choice plumbing ------------------------------------------------
    def _choose(
        self,
        site: str,
        options: Sequence[str],
        actions: Sequence[Action | None],
    ) -> int:
        allowed = list(range(len(options)))
        last = self._last
        if self.por and last is not None:
            kept = [
                i
                for i in allowed
                if actions[i] is None
                or actions[i] is last
                or actions[i].seq > last.seq
                or not actions[i].independent(last)
            ]
            if kept:  # never prune the site empty (forced-move escape)
                self.pruned += len(allowed) - len(kept)
                allowed = kept
        if len(allowed) == 1:
            return allowed[0]
        shown = tuple(options[i] for i in allowed)
        pick = self.strategy.choose(
            site, shown, tuple(actions[i] for i in allowed), last
        )
        idx = allowed[pick]
        self.trace.append(Choice(site=site, options=shown, picked=options[idx]))
        self.choices_made += 1
        return idx

    def _advance(self, action: Action, site: str) -> None:
        action.advance()
        self.steps.append(action.key)
        self._last = action
        if action.done:
            self.pending.remove(action)
        if self.observer is not None:
            self.observer.on_step(action, self)
            if not any(a.started and not a.done for a in self.pending):
                self.observer.on_quiescent(site, self)

    # -- Epoch protocol -------------------------------------------------
    def on_offer(self, action: Action) -> None:
        action.seq = self._seq
        self._seq += 1
        self.pending.append(action)
        site = f"offer:{action.key}"
        idx = self._choose(site, (RUN_NOW, DEFER), (None, None))
        if idx == 0:
            while not action.done:
                self._advance(action, site)
        self._last = None

    def on_pause(self, site: str) -> None:
        label = f"pause:{site}"
        while True:
            runnable = [a for a in self.pending if not a.done]
            options = [PROCEED] + [f"step:{a.key}" for a in runnable]
            actions: list[Action | None] = [None] + list(runnable)
            idx = self._choose(label, options, actions)
            if idx == 0:
                break
            chosen = actions[idx]
            assert chosen is not None
            self._advance(chosen, label)
        self._last = None

    def on_require(self, action: Action) -> None:
        label = f"require:{action.key}"
        while not action.done:
            ordered = [action] + [
                a for a in self.pending if not a.done and a is not action
            ]
            options = [f"step:{a.key}" for a in ordered]
            idx = self._choose(label, options, ordered)
            self._advance(ordered[idx], label)
        self._last = None

    def on_drain(self, site: str) -> None:
        label = f"drain:{site}"
        while True:
            runnable = [a for a in self.pending if not a.done]
            if not runnable:
                break
            options = [f"step:{a.key}" for a in runnable]
            idx = self._choose(label, options, runnable)
            self._advance(runnable[idx], label)
        self._last = None
        if self.observer is not None:
            self.observer.on_epoch_end(site, self)

    def on_note(self, point: str) -> None:
        self.notes.append(point)
