"""Interleaving-specific invariants.

:class:`~repro.recovery.invariants.InvariantMonitor` checks *state*
consistency at quiescent points, but some ordering bugs leave the state
looking perfectly consistent — the canonical example is a delete racing
a build apply: the delete drops the index's partitions, a late build
apply then re-inserts one, and at the end of the epoch the catalog and
storage agree with each other while the tuner believes the index is
gone (and its storage bills forever). Catching those needs the *order*
of completed actions, which only the schedule controller sees; this
oracle records it and is consulted at every epoch end.
"""

from __future__ import annotations

from typing import Any

from repro.explore.hooks import Action
from repro.recovery.invariants import InvariantViolation


class InterleavingOracle:
    """Order-sensitive invariant checks over one schedule run."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._step_no = 0
        #: index name -> micro-step at which its delete action completed
        #: (within the current epoch).
        self._deleted_at: dict[str, int] = {}
        #: (index name, partition id, completion micro-step) of build
        #: actions completed within the current epoch.
        self._builds_done: list[tuple[str, int, int]] = []

    def on_step(self, action: Action) -> None:
        """Record one executed micro-step (called for every advance)."""
        self._step_no += 1
        if not action.done:
            return
        if action.kind in ("delete", "watchdog_delete"):
            name = action.key.split(":", 1)[1]
            self._deleted_at[name] = self._step_no
        elif action.kind == "build":
            _, name, pid = action.key.split(":")
            self._builds_done.append((name, int(pid), self._step_no))

    def check_epoch_end(self, t: float) -> list[InvariantViolation]:
        """Run the ordering checks; resets the per-epoch state."""
        out: list[InvariantViolation] = []
        for name, pid, step in self._builds_done:
            deleted_step = self._deleted_at.get(name)
            if deleted_step is None or step < deleted_step:
                continue
            index = self.service.catalog.indexes.get(name)
            if index is not None and index.partitions[pid].built:
                out.append(
                    InvariantViolation(
                        "delete-racing-build",
                        t,
                        f"index {name}[{pid}] resurrected: its delete "
                        f"completed at micro-step {deleted_step} but a racing "
                        f"build apply completed at micro-step {step}, leaving "
                        f"a built partition the tuner believes deleted",
                    )
                )
        self._deleted_at.clear()
        self._builds_done.clear()
        return out
