"""Interleaving-specific invariants.

:class:`~repro.recovery.invariants.InvariantMonitor` checks *state*
consistency at quiescent points, but some ordering bugs leave the state
looking perfectly consistent — the canonical example is a delete racing
a build apply: the delete drops the index's partitions, a late build
apply then re-inserts one, and at the end of the epoch the catalog and
storage agree with each other while the tuner believes the index is
gone (and its storage bills forever). Catching those needs the *order*
of completed actions, which only the schedule controller sees; this
oracle records it and is consulted at every epoch end.
"""

from __future__ import annotations

from typing import Any

from repro.explore.hooks import Action
from repro.recovery.invariants import InvariantViolation


class CrossTenantOracle:
    """Bulkhead isolation as an ordering invariant.

    The multi-tenant front end promises that tenants share nothing but
    the admission budget: every catalog/storage mutation stays inside
    the service that issued the action. This oracle watches an integer
    digest of each tenant's state — built partition count plus live
    storage objects, both ints so no float comparison is involved — and
    flags any micro-step after which *more than one* tenant's digest
    changed: that can only happen if an action reached across a
    bulkhead (e.g. a shared storage account or catalog object).
    """

    def __init__(self, services: list[Any]) -> None:
        self.services = services
        self._last = [self._digest(s) for s in services]
        self._step_no = 0

    @staticmethod
    def _digest(service: Any) -> tuple[int, int]:
        built = sum(
            len(index.built_partition_ids())
            for index in service.catalog.indexes.values()
        )
        return (built, service.storage.live_count)

    def on_step(self, action: Action) -> list[InvariantViolation]:
        """Check one executed micro-step; returns any leak violations."""
        self._step_no += 1
        current = [self._digest(s) for s in self.services]
        changed = [
            i for i, (a, b) in enumerate(zip(self._last, current)) if a != b
        ]
        self._last = current
        if len(changed) > 1:
            return [
                InvariantViolation(
                    "cross-tenant-leak",
                    float(self._step_no),
                    f"micro-step {self._step_no} ({action.kind}:{action.key}) "
                    f"mutated tenants {changed}: bulkhead isolation allows "
                    f"one action to touch at most one tenant's catalog/storage",
                )
            ]
        return []


class InterleavingOracle:
    """Order-sensitive invariant checks over one schedule run."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._step_no = 0
        #: index name -> micro-step at which its delete action completed
        #: (within the current epoch).
        self._deleted_at: dict[str, int] = {}
        #: (index name, partition id, completion micro-step) of build
        #: actions completed within the current epoch.
        self._builds_done: list[tuple[str, int, int]] = []

    def on_step(self, action: Action) -> None:
        """Record one executed micro-step (called for every advance)."""
        self._step_no += 1
        if not action.done:
            return
        if action.kind in ("delete", "watchdog_delete"):
            name = action.key.split(":", 1)[1]
            self._deleted_at[name] = self._step_no
        elif action.kind == "build":
            _, name, pid = action.key.split(":")
            self._builds_done.append((name, int(pid), self._step_no))

    def check_epoch_end(self, t: float) -> list[InvariantViolation]:
        """Run the ordering checks; resets the per-epoch state."""
        out: list[InvariantViolation] = []
        for name, pid, step in self._builds_done:
            deleted_step = self._deleted_at.get(name)
            if deleted_step is None or step < deleted_step:
                continue
            index = self.service.catalog.indexes.get(name)
            if index is not None and index.partitions[pid].built:
                out.append(
                    InvariantViolation(
                        "delete-racing-build",
                        t,
                        f"index {name}[{pid}] resurrected: its delete "
                        f"completed at micro-step {deleted_step} but a racing "
                        f"build apply completed at micro-step {step}, leaving "
                        f"a built partition the tuner believes deleted",
                    )
                )
        self._deleted_at.clear()
        self._builds_done.clear()
        return out
