"""Adaptive per-index fading controllers (the paper's future work).

"Automatic learning of the index gain fading controller to select proper
respective values for each index" (Section 7). The controller observes
when each index was actually useful (the arrival times of dataflows that
would gain from it) and tunes the fading horizon ``D``:

* *Regular* usage (low coefficient of variation of the gaps) means the
  past predicts the future — a longer ``D`` lets the gains accumulate.
* *Bursty or stale* usage means history misleads — a shorter ``D`` makes
  the tuner drop the index quickly once the burst ends.

The suggested ``D`` interpolates between ``min_fade`` and ``max_fade``
with the regularity score, and is clamped around the observed mean usage
gap so an index used every ``g`` quanta retains roughly the last few
uses worth of evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.cloud.pricing import PricingModel


@dataclass
class UsageTrace:
    """Arrival times (seconds) of dataflows that would use one index."""

    times: list[float] = field(default_factory=list)

    def record(self, time: float) -> None:
        if self.times and time < self.times[-1] - 1e-9:
            raise ValueError("usage times must be non-decreasing")
        self.times.append(time)

    def gaps(self) -> list[float]:
        return [b - a for a, b in zip(self.times, self.times[1:])]


class AdaptiveFadingController:
    """Learns a per-index fading horizon ``D`` from usage regularity.

    Attributes:
        default_fade: ``D`` used before an index has enough history.
        min_fade / max_fade: Clamp of the learned values, in quanta.
        min_observations: Usage gaps needed before adapting.
        window: Only this many most recent usages are considered.
    """

    def __init__(
        self,
        pricing: PricingModel,
        default_fade: float = 5.0,
        min_fade: float = 1.0,
        max_fade: float = 30.0,
        min_observations: int = 3,
        window: int = 20,
    ) -> None:
        if not 0 < min_fade <= default_fade <= max_fade:
            raise ValueError("need 0 < min_fade <= default_fade <= max_fade")
        if min_observations < 2:
            raise ValueError("min_observations must be at least 2")
        self.pricing = pricing
        self.default_fade = default_fade
        self.min_fade = min_fade
        self.max_fade = max_fade
        self.min_observations = min_observations
        self.window = window
        self._traces: dict[str, UsageTrace] = {}

    # ------------------------------------------------------------------
    def record_usage(self, index_name: str, time: float) -> None:
        """Note that a dataflow issued at ``time`` would use the index."""
        self._traces.setdefault(index_name, UsageTrace()).record(time)

    def record_dataflow(self, candidate_indexes: Iterable[str], time: float) -> None:
        for name in candidate_indexes:
            self.record_usage(name, time)

    def usage_count(self, index_name: str) -> int:
        trace = self._traces.get(index_name)
        return len(trace.times) if trace else 0

    # ------------------------------------------------------------------
    def regularity(self, index_name: str) -> float | None:
        """1 for perfectly periodic usage, toward 0 for bursty; None if
        there is not enough history."""
        trace = self._traces.get(index_name)
        if trace is None:
            return None
        gaps = trace.gaps()[-self.window:]
        if len(gaps) < self.min_observations:
            return None
        mean = sum(gaps) / len(gaps)
        if mean <= 0:
            return 1.0
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean
        return 1.0 / (1.0 + cv)

    def suggest_fade(self, index_name: str) -> float:
        """The learned ``D`` for one index, in quanta."""
        score = self.regularity(index_name)
        if score is None:
            return self.default_fade
        trace = self._traces[index_name]
        gaps = trace.gaps()[-self.window:]
        mean_gap_quanta = self.pricing.quanta(sum(gaps) / len(gaps))
        # Retain about `3 * score` usages worth of evidence: regular
        # indexes look further back, bursty ones barely past the burst.
        fade = mean_gap_quanta * (0.5 + 3.0 * score)
        return float(min(self.max_fade, max(self.min_fade, fade)))

    def fade_overrides(self) -> dict[str, float]:
        """Suggested ``D`` for every index with enough history."""
        out: dict[str, float] = {}
        for name in self._traces:
            if self.regularity(name) is not None:
                out[name] = self.suggest_fade(name)
        return out
