"""Online index tuning (Algorithm 1).

Triggered whenever a dataflow is issued (and periodically, to delete
indexes that stopped being beneficial): computes the gains of all
potential indexes over the historical dataflows plus the incoming one,
ranks the beneficial ones, interleaves their build operators into the
dataflow's schedule, and flags non-beneficial built indexes for
deletion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.catalog import Catalog
from repro.data.index_model import Index
from repro.dataflow.graph import Dataflow
from repro.interleave.lp import InterleavedSchedule, lp_interleave, select_fastest
from repro.interleave.online import online_interleave
from repro.interleave.slots import BuildCandidate, slot_fill_payloads
from repro.explore.hooks import note
from repro.obs import NOOP_OBS, Observation
from repro.recovery.hooks import crash_point
from repro.scheduling.skyline import SkylineScheduler
from repro.tuning.gain import (
    DataflowGainSample,
    GainModel,
    IndexGain,
    dataflow_index_gains,
)
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.incremental import IncrementalGainEvaluator
from repro.tuning.ranking import deletable_indexes, rank_indexes
from repro.tuning.vectorized import VectorizedGainEvaluator

if TYPE_CHECKING:
    from repro.tuning.adaptive import AdaptiveFadingController


@dataclass
class TunerDecision:
    """The output of one Algorithm 1 invocation.

    Attributes:
        chosen: The selected interleaved schedule (Sdf + SBI).
        skyline: All interleaved schedules the scheduler produced.
        gains: Evaluated gain of every potential index.
        ranked: Beneficial indexes, best first.
        to_delete: Names of built indexes to drop (DI).
    """

    chosen: InterleavedSchedule
    skyline: list[InterleavedSchedule] = field(default_factory=list)
    gains: dict[str, IndexGain] = field(default_factory=dict)
    ranked: list[IndexGain] = field(default_factory=list)
    to_delete: list[str] = field(default_factory=list)
    # gtd/gmd of the incoming dataflow, computed on its *original*
    # runtimes (before available indexes were folded in); the service
    # records these into Hd when the dataflow finishes.
    dataflow_time_gains: dict[str, float] = field(default_factory=dict)
    dataflow_money_gains: dict[str, float] = field(default_factory=dict)

    def predicted_build_gains(self) -> dict[str, float]:
        """Combined-dollar gain predicted for each index this decision builds.

        The ROI ledger records these at decision time so a later
        regression (workload shift) can be measured against what the
        tuner believed the index was worth when it paid for it.
        """
        scheduled = {c.index_name for c in self.chosen.scheduled_builds}
        return {
            name: self.gains[name].combined_dollars
            for name in sorted(scheduled)
            if name in self.gains
        }


class OnlineIndexTuner:
    """Algorithm 1 over a catalog, a gain model and a dataflow history.

    Attributes:
        interleaver: "lp" (Algorithm 2) or "online" (Section 5.3.2).
        max_candidates: Cap on build operators offered to the
            interleaver per dataflow (the best-ranked indexes win); keeps
            the per-slot knapsacks tractable.
    """

    def __init__(
        self,
        catalog: Catalog,
        gain_model: GainModel,
        history: DataflowHistory,
        scheduler: SkylineScheduler,
        interleaver: str = "lp",
        max_candidates: int = 150,
        fading_controller: AdaptiveFadingController | None = None,
        incremental_gain: bool = True,
        vectorized: bool = False,
        obs: Observation | None = None,
    ) -> None:
        if interleaver not in ("lp", "online"):
            raise ValueError("interleaver must be 'lp' or 'online'")
        if max_candidates <= 0:
            raise ValueError("max_candidates must be positive")
        self.catalog = catalog
        self.gain_model = gain_model
        self.history = history
        self.scheduler = scheduler
        self.interleaver = interleaver
        self.max_candidates = max_candidates
        self.obs = obs if obs is not None else NOOP_OBS
        # Optional AdaptiveFadingController: learns a per-index fading
        # horizon D from usage regularity (Section 7 future work).
        self.fading_controller = fading_controller
        # Incremental maintenance of the faded gain sums: the running
        # aggregates are decay-rescaled between decisions instead of
        # re-folding the whole window (tolerance-equal to the naive
        # model; see repro.tuning.incremental). The naive path stays as
        # the oracle and as the fallback (incremental_gain=False).
        self._incremental: IncrementalGainEvaluator | None = (
            IncrementalGainEvaluator(gain_model, history) if incremental_gain else None
        )
        # Batch strategy: columnar history snapshots evaluated through
        # the numpy kernels (repro.tuning.vectorized). Takes precedence
        # over the incremental evaluator when both are enabled; the
        # knapsack construction of the interleaver is batched alongside.
        self.vectorized = vectorized
        self._vectorized: VectorizedGainEvaluator | None = (
            VectorizedGainEvaluator(gain_model, history) if vectorized else None
        )
        self._read_quanta_cache: dict[str, float] = {}
        # Per-dataflow gtd/gmd are intrinsic to the dataflow (original
        # runtimes); queued dataflows are re-examined at every decision,
        # so memoise by name with LRU eviction — hot names (queued
        # dataflows re-ranked at every arrival) survive cache pressure.
        self._df_gain_cache: OrderedDict[
            str, tuple[dict[str, float], dict[str, float]]
        ] = OrderedDict()

    # ------------------------------------------------------------------
    # Gain bookkeeping
    # ------------------------------------------------------------------
    def index_read_quanta(self, index: Index) -> float:
        cached = self._read_quanta_cache.get(index.name)
        if cached is None:
            cached = self.gain_model.index_read_quanta(index)
            self._read_quanta_cache[index.name] = cached
        return cached

    def index_size_mb(self, name: str) -> float:
        index = self.catalog.index(name)
        return self.gain_model.cost_model.index_size_mb(index.table, index.spec)

    #: Bound of the per-dataflow gain memo (LRU-evicted beyond this).
    GAIN_CACHE_MAX = 512

    def dataflow_gains(self, dataflow: Dataflow) -> tuple[dict[str, float], dict[str, float]]:
        """gtd/gmd of one dataflow for every index it can use (memoised)."""
        cached = self._df_gain_cache.get(dataflow.name)
        if cached is not None:
            self._df_gain_cache.move_to_end(dataflow.name)
            return cached
        known = [n for n in dataflow.candidate_indexes if n in self.catalog.indexes]
        read = {n: self.index_read_quanta(self.catalog.index(n)) for n in known}
        sizes = {n: self.index_size_mb(n) for n in known}
        gains = dataflow_index_gains(
            dataflow,
            self.gain_model.pricing,
            index_read_quanta=read,
            net_bw_mb_s=self.gain_model.cost_model.container.net_bw_mb_s,
            index_sizes_mb=sizes,
        )
        while len(self._df_gain_cache) >= self.GAIN_CACHE_MAX:
            self._df_gain_cache.popitem(last=False)
        self._df_gain_cache[dataflow.name] = gains
        return gains

    def record_execution(
        self,
        dataflow_name: str,
        finished_at: float,
        time_gains: dict[str, float],
        money_gains: dict[str, float],
    ) -> None:
        """Store an executed dataflow in ``Hd``.

        The gains must be the ones computed against the dataflow's
        *original* runtime estimates (returned in the TunerDecision), not
        the post-index-update runtimes — otherwise an index would erode
        its own recorded usefulness simply by existing.
        """
        self.history.add(
            DataflowRecord(
                name=dataflow_name,
                executed_at=finished_at,
                time_gains=time_gains,
                money_gains=money_gains,
            )
        )

    def evaluate_gains(
        self,
        now: float,
        current: Dataflow | None = None,
        current_gains: tuple[dict[str, float], dict[str, float]] | None = None,
        queued: list[Dataflow] | None = None,
    ) -> dict[str, IndexGain]:
        """Gains of all potential indexes over Hd ∪ {current ∪ queued}.

        Per Section 4, the sum in Equations 4/5 covers the historical
        dataflows in the window *and* the currently running or queued
        ones, which contribute at age 0 (ΔT = 0, no fading). A long
        queue of dataflows that would use an index therefore raises its
        gain — exactly when building it pays off most.
        """
        live: list[tuple[dict[str, float], dict[str, float]]] = []
        if current_gains is not None:
            live.append(current_gains)
        elif current is not None:
            live.append(self.dataflow_gains(current))
        for dataflow in queued or ():
            live.append(self.dataflow_gains(dataflow))
        names = set(self.history.index_names())
        for time_gains, _ in live:
            names |= set(time_gains)
        gains: dict[str, IndexGain] = {}
        for name in sorted(names):
            index = self.catalog.indexes.get(name)
            if index is None:
                continue
            fade = None
            if self.fading_controller is not None:
                fade = self.fading_controller.suggest_fade(name)
            evaluator = self._vectorized if self._vectorized is not None else self._incremental
            if evaluator is not None:
                # Historical inflow from the maintained running sums (or
                # the batch columnar evaluation); live dataflows
                # contribute at dc(0) = 1 on top, exactly as the naive
                # path appends them at age 0.
                sum_t, sum_m, count = evaluator.faded_sums(name, now, fade)
                mc = self.gain_model.pricing.quantum_price
                for time_gains, money_gains in live:
                    if name in time_gains:
                        sum_t += time_gains[name]
                        sum_m += mc * money_gains[name]
                        count += 1
                gains[name] = self.gain_model.evaluate_from_sums(
                    index, sum_t, sum_m, count, fade_quanta=fade
                )
                continue
            samples = self.history.samples_for(name, now)
            for time_gains, money_gains in live:
                if name in time_gains:
                    samples.append(
                        DataflowGainSample(
                            age_quanta=0.0,
                            time_gain_quanta=time_gains[name],
                            money_gain_quanta=money_gains[name],
                        )
                    )
            gains[name] = self.gain_model.evaluate(index, samples, fade_quanta=fade)
        return gains

    # ------------------------------------------------------------------
    # Build candidates
    # ------------------------------------------------------------------
    def build_candidates(self, ranked: list[IndexGain]) -> list[BuildCandidate]:
        """Per-partition build operators of the ranked beneficial indexes.

        The index's combined gain is split over its unbuilt partitions in
        proportion to the records they cover (partial indexes are usable
        incrementally). Durable checkpoint progress from interrupted
        builds is subtracted from the duration: a resumed build only
        pays for the remaining work.
        """
        candidates: list[BuildCandidate] = []
        for gain in ranked:
            index = self.catalog.index(gain.index_name)
            table, spec = index.table, index.spec
            total_records = max(1, table.num_records)
            per_index: list[BuildCandidate] = []
            for pid in sorted(index.unbuilt_partition_ids()):
                partition = table.partition(pid)
                model = self.gain_model.cost_model.partition_model(table, spec, partition)
                share = partition.num_records / total_records
                remaining_s = model.total_build_seconds - index.checkpoint_seconds(pid)
                per_index.append(
                    BuildCandidate(
                        index_name=index.name,
                        partition_id=pid,
                        duration_s=max(remaining_s, 1e-6),
                        gain=max(gain.combined_dollars * share, 0.0),
                    )
                )
            # Stable (-gain, partition_id) order: the most valuable
            # partitions are offered first and ties never depend on dict
            # insertion order (equal-share partitions keep ascending pid).
            per_index.sort(key=lambda c: (-c.gain, c.partition_id))
            take = self.max_candidates - len(candidates)
            candidates.extend(per_index[:take])
            if len(candidates) >= self.max_candidates:
                break
        return candidates

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def on_dataflow(
        self,
        dataflow: Dataflow,
        now: float,
        queued: list[Dataflow] | None = None,
    ) -> TunerDecision:
        """Schedule ``dataflow`` with interleaved builds; flag deletions.

        ``queued`` are dataflows already issued but not yet executed;
        they contribute to the gains at age 0 (Section 4).
        """
        crash_point("tuner.pre_rank")
        note("tuner.decide")
        if self.fading_controller is not None:
            self.fading_controller.record_dataflow(dataflow.candidate_indexes, now)
        current_gains = self.dataflow_gains(dataflow)
        gains = self.evaluate_gains(
            now, current=dataflow, current_gains=current_gains, queued=queued
        )
        ranked = rank_indexes(list(gains.values()))
        candidates = self.build_candidates(ranked)

        available = {idx.name for idx in self.catalog.built_indexes()}
        fractions = {
            idx.name: idx.built_fraction() for idx in self.catalog.built_indexes()
        }
        sizes_mb = {name: self.index_size_mb(name) for name in available}
        interleave = lp_interleave if self.interleaver == "lp" else online_interleave
        skyline = interleave(
            dataflow,
            candidates,
            self.scheduler,
            available_indexes=available,
            index_fractions=fractions,
            index_sizes_mb=sizes_mb,
            obs=self.obs,
            vectorized=self.vectorized,
        )
        chosen = select_fastest(skyline)
        crash_point("tuner.post_interleave")

        to_delete = [
            g.index_name
            for g in deletable_indexes(list(gains.values()))
            if self.catalog.index(g.index_name).any_built
        ]
        obs = self.obs
        if obs.enabled:
            obs.journal.emit(
                "tuner_decision",
                t=now,
                dataflow=dataflow.name,
                interleaver=self.interleaver,
                candidates_offered=len(candidates),
                builds_scheduled=chosen.num_builds,
                skyline_points=len(skyline),
                ranked=[g.index_name for g in ranked],
                to_delete=list(to_delete),
                gains={name: g.breakdown() for name, g in sorted(gains.items())},
            )
            for payload in slot_fill_payloads(chosen.build_assignments):
                obs.journal.emit(
                    "slot_fill", t=now, dataflow=dataflow.name, **payload
                )
            m = obs.metrics
            m.counter("tuner/decisions").inc()
            m.counter("tuner/candidates_offered").inc(len(candidates))
            m.counter("tuner/builds_scheduled").inc(chosen.num_builds)
            m.counter("tuner/deletions_flagged").inc(len(to_delete))
            self.gain_model.cost_stats.publish(m, "cache/gain_costs")
            if self._vectorized is not None:
                self._vectorized.stats.publish(m, "cache/gain_sums")
            elif self._incremental is not None:
                self._incremental.stats.publish(m, "cache/gain_sums")
        return TunerDecision(
            chosen=chosen,
            skyline=skyline,
            gains=gains,
            ranked=ranked,
            to_delete=to_delete,
            dataflow_time_gains=current_gains[0],
            dataflow_money_gains=current_gains[1],
        )

    def periodic_cleanup(self, now: float) -> list[str]:
        """Deletion-only trigger (fires when no dataflow arrives)."""
        gains = self.evaluate_gains(now, current=None)
        to_delete = [
            g.index_name
            for g in deletable_indexes(list(gains.values()))
            if self.catalog.index(g.index_name).any_built
        ]
        if self.obs.enabled:
            self.obs.journal.emit(
                "periodic_cleanup",
                t=now,
                to_delete=list(to_delete),
                gains={
                    name: g.breakdown()
                    for name, g in sorted(gains.items())
                    if name in set(to_delete)
                },
            )
            self.obs.metrics.counter("tuner/cleanups").inc()
            self.obs.metrics.counter("tuner/deletions_flagged").inc(len(to_delete))
        return to_delete
