"""Deferred (delayed) index building for short-idle-slot workloads.

The paper's conclusion: "we consider a conservative approach to build
indexes using idle slots so that they do not interfere with the user
workload. Building indexes in a delayed manner for scenarios where idle
slots are short is an interesting direction of our future work."

This module implements that direction: build operators that repeatedly
fail to fit into idle slots accumulate in a deferred queue; once the
total gain waiting in the queue exceeds the price of leasing dedicated
compute for it (with a configurable payback factor), the policy proposes
a *dedicated build batch* — containers leased purely to build indexes,
whose cost is charged explicitly rather than hidden in fragmentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.pricing import PricingModel
from repro.interleave.slots import BuildCandidate


@dataclass
class DeferredBuild:
    """One build candidate waiting for compute.

    Attributes:
        candidate: The build operator that could not be interleaved.
        deferrals: How many scheduling rounds it failed to fit.
    """

    candidate: BuildCandidate
    deferrals: int = 1


@dataclass(frozen=True)
class BuildBatch:
    """A dedicated build proposal: candidates, containers, price."""

    candidates: tuple[BuildCandidate, ...]
    num_containers: int
    leased_quanta: int
    cost_dollars: float
    expected_gain_dollars: float

    @property
    def worthwhile(self) -> bool:
        return self.expected_gain_dollars > self.cost_dollars


class DeferredBuildPolicy:
    """Accumulates unplaced builds and proposes dedicated build batches.

    Attributes:
        min_deferrals: Rounds a build must fail to fit before it counts
            toward a batch (fresh candidates get another chance at free
            interleaving first).
        payback_factor: Required ratio of queued gain to dedicated-lease
            cost before a batch is proposed (2.0 = gains must be at least
            twice the price).
        max_batch_containers: Parallelism cap of one dedicated batch.
    """

    def __init__(
        self,
        pricing: PricingModel,
        min_deferrals: int = 2,
        payback_factor: float = 2.0,
        max_batch_containers: int = 4,
    ) -> None:
        if min_deferrals < 1:
            raise ValueError("min_deferrals must be at least 1")
        if payback_factor <= 0:
            raise ValueError("payback_factor must be positive")
        if max_batch_containers < 1:
            raise ValueError("max_batch_containers must be at least 1")
        self.pricing = pricing
        self.min_deferrals = min_deferrals
        self.payback_factor = payback_factor
        self.max_batch_containers = max_batch_containers
        self._queue: dict[str, DeferredBuild] = {}

    # ------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def record_unplaced(self, candidates: list[BuildCandidate]) -> None:
        """Register builds that did not fit into this round's idle slots."""
        for cand in candidates:
            entry = self._queue.get(cand.op_name)
            if entry is None:
                self._queue[cand.op_name] = DeferredBuild(candidate=cand)
            else:
                entry.candidate = cand  # refresh gain estimate
                entry.deferrals += 1

    def record_placed(self, candidates: list[BuildCandidate]) -> None:
        """Drop builds that eventually made it into an idle slot."""
        for cand in candidates:
            self._queue.pop(cand.op_name, None)

    def drop_index(self, index_name: str) -> None:
        """Forget deferred builds of an index that stopped being useful."""
        stale = [k for k, e in self._queue.items() if e.candidate.index_name == index_name]
        for key in stale:
            del self._queue[key]

    def ripe(self) -> list[DeferredBuild]:
        """Builds deferred often enough to justify dedicated compute."""
        return sorted(
            (e for e in self._queue.values() if e.deferrals >= self.min_deferrals),
            key=lambda e: e.candidate.gain / max(e.candidate.duration_s, 1e-9),
            reverse=True,
        )

    # ------------------------------------------------------------------
    # Batch proposal
    # ------------------------------------------------------------------
    def propose_batch(self) -> BuildBatch | None:
        """A dedicated build batch, or None while patience still pays.

        Candidates are packed by gain density onto up to
        ``max_batch_containers`` containers; the batch is proposed only
        when the queued gain covers ``payback_factor`` times the lease.
        """
        ripe = self.ripe()
        if not ripe:
            return None
        chosen: list[BuildCandidate] = []
        total_gain = 0.0
        total_work_s = 0.0
        for entry in ripe:
            chosen.append(entry.candidate)
            total_gain += entry.candidate.gain
            total_work_s += entry.candidate.duration_s
        containers = min(self.max_batch_containers, max(1, len(chosen)))
        # Parallel makespan of the batch: work spread over the containers
        # (LPT-style bound: average load plus the longest single build).
        longest = max(c.duration_s for c in chosen)
        makespan_s = max(longest, total_work_s / containers)
        leased = containers * max(1, math.ceil(
            makespan_s / self.pricing.quantum_seconds - 1e-9
        ))
        cost = self.pricing.compute_cost(leased)
        batch = BuildBatch(
            candidates=tuple(chosen),
            num_containers=containers,
            leased_quanta=leased,
            cost_dollars=cost,
            expected_gain_dollars=total_gain,
        )
        if batch.expected_gain_dollars >= self.payback_factor * batch.cost_dollars:
            return batch
        return None

    def commit_batch(self, batch: BuildBatch) -> None:
        """Remove a proposed batch's builds from the queue (they ran)."""
        for cand in batch.candidates:
            self._queue.pop(cand.op_name, None)
