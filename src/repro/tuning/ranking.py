"""Index ranking in the 2D (time gain, money gain) space (Section 5.1).

Indexes with positive time *and* money gain are beneficial; among them,
higher weighted gain (Equation 3) is preferred — the "lighter areas" of
Figure 4, whose angle is set by α. Non-beneficial indexes (any
non-positive component, like X1..X4 in the figure) are excluded.
"""

from __future__ import annotations

from repro.tuning.gain import IndexGain


def rank_indexes(gains: list[IndexGain]) -> list[IndexGain]:
    """Beneficial indexes sorted by decreasing combined gain.

    Ties are broken by time gain, then money gain, then name (for
    deterministic experiments).
    """
    beneficial = [g for g in gains if g.beneficial]
    return sorted(
        beneficial,
        key=lambda g: (
            -g.combined_dollars,
            -g.time_gain_quanta,
            -g.money_gain_dollars,
            g.index_name,
        ),
    )


def deletable_indexes(gains: list[IndexGain]) -> list[IndexGain]:
    """Indexes whose time and money gains are both non-positive.

    Sorted by (most-negative combined gain, name): deletion order is a
    stable function of the gains, never of dict insertion order.
    """
    deletable = [g for g in gains if g.deletable]
    return sorted(deletable, key=lambda g: (g.combined_dollars, g.index_name))
