"""Historical dataflow store ``Hd`` (Section 3).

Dataflows that have already been executed are stored with the per-index
gains they realised; the gain model queries them as
:class:`~repro.tuning.gain.DataflowGainSample` streams relative to "now".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.pricing import PricingModel
from repro.tuning.gain import DataflowGainSample


@dataclass(frozen=True)
class DataflowRecord:
    """One executed (or running) dataflow and its per-index gains.

    Attributes:
        name: Dataflow name.
        executed_at: Time the dataflow executed, in seconds. Running or
            queued dataflows are recorded with their issue time and age 0
            is reported until they finish.
        time_gains: gtd(idx, d) per index name, in quanta.
        money_gains: gmd(idx, d) per index name, in quanta.
        running: True while the dataflow has not finished.
    """

    name: str
    executed_at: float
    time_gains: dict[str, float] = field(default_factory=dict)
    money_gains: dict[str, float] = field(default_factory=dict)
    running: bool = False

    def age_quanta(self, now: float, pricing: PricingModel) -> float:
        """ΔT: quanta since execution; 0 for running/queued dataflows."""
        if self.running:
            return 0.0
        return max(0.0, pricing.quanta(now - self.executed_at))


class DataflowHistory:
    """Append-only store of dataflow records with per-index queries."""

    def __init__(self, pricing: PricingModel, max_records: int | None = None) -> None:
        self.pricing = pricing
        self.max_records = max_records
        self._records: list[DataflowRecord] = []
        # index name -> record positions that mention it (query acceleration)
        self._by_index: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[DataflowRecord]:
        return list(self._records)

    def add(self, record: DataflowRecord) -> None:
        position = len(self._records)
        self._records.append(record)
        for index_name in record.time_gains:
            self._by_index.setdefault(index_name, []).append(position)
        if self.max_records is not None and len(self._records) > self.max_records:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        self._records.pop(0)
        rebuilt: dict[str, list[int]] = {}
        for i, record in enumerate(self._records):
            for index_name in record.time_gains:
                rebuilt.setdefault(index_name, []).append(i)
        self._by_index = rebuilt

    def mark_finished(self, name: str, finished_at: float) -> None:
        """Flip a running record to finished (records are frozen; replace)."""
        for i, record in enumerate(self._records):
            if record.name == name and record.running:
                self._records[i] = DataflowRecord(
                    name=record.name,
                    executed_at=finished_at,
                    time_gains=record.time_gains,
                    money_gains=record.money_gains,
                    running=False,
                )
                return
        raise KeyError(f"no running dataflow {name!r} in history")

    def index_names(self) -> list[str]:
        """All indexes any recorded dataflow could use."""
        return sorted(self._by_index)

    def samples_for(self, index_name: str, now: float) -> list[DataflowGainSample]:
        """Gain samples of one index across the recorded dataflows."""
        samples: list[DataflowGainSample] = []
        for position in self._by_index.get(index_name, ()):  # insertion order
            record = self._records[position]
            samples.append(
                DataflowGainSample(
                    age_quanta=record.age_quanta(now, self.pricing),
                    time_gain_quanta=record.time_gains.get(index_name, 0.0),
                    money_gain_quanta=record.money_gains.get(index_name, 0.0),
                )
            )
        return samples
