"""Historical dataflow store ``Hd`` (Section 3).

Dataflows that have already been executed are stored with the per-index
gains they realised; the gain model queries them as
:class:`~repro.tuning.gain.DataflowGainSample` streams relative to "now".

Records are addressed by a monotonically increasing *global position*
that is never reused or renumbered: evicting the oldest record advances
``head_position`` instead of shifting positions, so incremental
consumers (:class:`~repro.tuning.incremental.IncrementalGainEvaluator`)
can remember how far they have read with a single integer. Eviction is
amortised O(1); the old implementation rebuilt the whole per-index
position map on every eviction, which made a bounded history *more*
expensive than an unbounded one.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator

from repro.cloud.pricing import PricingModel
from repro.tuning.gain import DataflowGainSample


@dataclass(frozen=True)
class DataflowRecord:
    """One executed (or running) dataflow and its per-index gains.

    Attributes:
        name: Dataflow name.
        executed_at: Time the dataflow executed, in seconds. Running or
            queued dataflows are recorded with their issue time and age 0
            is reported until they finish.
        time_gains: gtd(idx, d) per index name, in quanta.
        money_gains: gmd(idx, d) per index name, in quanta.
        running: True while the dataflow has not finished.
    """

    name: str
    executed_at: float
    time_gains: dict[str, float] = field(default_factory=dict)
    money_gains: dict[str, float] = field(default_factory=dict)
    running: bool = False

    def age_quanta(self, now: float, pricing: PricingModel) -> float:
        """ΔT: quanta since execution; 0 for running/queued dataflows."""
        if self.running:
            return 0.0
        return max(0.0, pricing.quanta(now - self.executed_at))


class DataflowHistory:
    """Append-only store of dataflow records with per-index queries."""

    def __init__(self, pricing: PricingModel, max_records: int | None = None) -> None:
        self.pricing = pricing
        self.max_records = max_records
        self._records: list[DataflowRecord] = []
        #: Global position of ``_records[0]``; grows on eviction.
        self._head = 0
        # index name -> sorted global positions that mention it; evicted
        # prefixes are pruned lazily on access.
        self._by_index: dict[str, list[int]] = {}
        #: Bumped whenever an *existing* record is replaced in place
        #: (``mark_finished``); appends and evictions do not count.
        #: Incremental consumers rebuild when this changes.
        self.mutation_version = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[DataflowRecord]:
        return list(self._records)

    @property
    def head_position(self) -> int:
        """Global position of the oldest retained record."""
        return self._head

    @property
    def end_position(self) -> int:
        """Global position one past the newest record."""
        return self._head + len(self._records)

    def add(self, record: DataflowRecord) -> None:
        position = self._head + len(self._records)
        self._records.append(record)
        for index_name in record.time_gains:
            self._by_index.setdefault(index_name, []).append(position)
        if self.max_records is not None and len(self._records) > self.max_records:
            self._records.pop(0)
            self._head += 1

    def mark_finished(self, name: str, finished_at: float) -> None:
        """Flip a running record to finished (records are frozen; replace)."""
        for i, record in enumerate(self._records):
            if record.name == name and record.running:
                self._records[i] = DataflowRecord(
                    name=record.name,
                    executed_at=finished_at,
                    time_gains=record.time_gains,
                    money_gains=record.money_gains,
                    running=False,
                )
                self.mutation_version += 1
                return
        raise KeyError(f"no running dataflow {name!r} in history")

    def window_digest(self) -> str:
        """A stable 8-hex digest of the retained window.

        Recovery commit records carry it so resume can verify the
        replayed history converged on the same window as the crashed
        process (names, execution times and running flags included).
        """
        parts = [f"{self._head}:{self.mutation_version}"]
        for record in self._records:
            parts.append(
                f"{record.name}@{record.executed_at!r}:{int(record.running)}"
            )
        return f"{zlib.crc32('|'.join(parts).encode('utf-8')):08x}"

    def _positions(self, index_name: str) -> list[int]:
        """Live global positions mentioning ``index_name`` (ascending)."""
        positions = self._by_index.get(index_name)
        if positions is None:
            return []
        if positions and positions[0] < self._head:
            del positions[: bisect_left(positions, self._head)]
        return positions

    def index_names(self) -> list[str]:
        """All indexes any *retained* recorded dataflow could use."""
        return sorted(
            name for name in self._by_index if self._positions(name)
        )

    def samples_for(self, index_name: str, now: float) -> list[DataflowGainSample]:
        """Gain samples of one index across the recorded dataflows."""
        samples: list[DataflowGainSample] = []
        for position in self._positions(index_name):  # insertion order
            record = self._records[position - self._head]
            samples.append(
                DataflowGainSample(
                    age_quanta=record.age_quanta(now, self.pricing),
                    time_gain_quanta=record.time_gains.get(index_name, 0.0),
                    money_gain_quanta=record.money_gains.get(index_name, 0.0),
                )
            )
        return samples

    def entries_for(
        self, index_name: str, since_position: int = 0
    ) -> Iterator[tuple[int, DataflowRecord]]:
        """(position, record) pairs mentioning ``index_name`` from
        ``since_position`` on — the incremental evaluator's append feed."""
        positions = self._positions(index_name)
        start = bisect_left(positions, max(since_position, self._head))
        for position in positions[start:]:
            yield position, self._records[position - self._head]
