"""Incremental evaluation of the faded gain sums (Equations 4/5).

The naive gain model recomputes, at every decision point, the faded
benefit inflow of every index::

    S_t(now) = Σ_i  e^(-ΔT_i/D) · gtd_i        (in-window samples)
    S_m(now) = Σ_i  e^(-ΔT_i/D) · Mc · gmd_i

with ``ΔT_i = (now - executed_at_i)`` in quanta. That is one ``exp``
per (index, sample) pair per decision — O(window) work for a result
that changes only marginally between decisions.

This module exploits the exponential's composition law: sliding "now"
forward by δ rescales *every* in-window term by the same factor::

    e^(-(ΔT+δ)/D) = e^(-δ/D) · e^(-ΔT/D)
    ⇒  S(now+δ)   = e^(-δ/D) · S(now)  −  expired  +  appended

so one advance costs O(changed entries): one multiply for the decay,
one subtraction per sample that left the window (or was evicted from
the bounded history), one addition per newly recorded dataflow. The
state rebuilds itself from the history whenever an exact replay is not
possible (a record was replaced in place, time moved backwards, the
fading controller changed D for the index).

Numerical contract: the rescaled sum is *tolerance-equal* — not
bit-identical — to the naive per-sample sum, because float
multiplication does not distribute exactly over addition. The drift
per advance is one rounding error (~1e-16 relative); to keep it from
accumulating over thousands of advances, the state re-derives the sums
exactly from its window every :data:`REFRESH_EVERY` advances. The
differential suite (``tests/differential/test_gain_oracle.py``) asserts
agreement with the naive oracle within the repo's money/time epsilons
under adversarial schedules.
"""

from __future__ import annotations

import math
from collections import deque

from repro.perf import CacheStats
from repro.tuning.gain import GainModel
from repro.tuning.history import DataflowHistory

#: Advances between exact recomputations of the running sums (drift bound).
REFRESH_EVERY = 32


class _IndexState:
    """Running sums and sliding window of one (index, fade) stream."""

    __slots__ = (
        "fade",
        "version",
        "last_now",
        "consumed",
        "sum_time",
        "sum_money",
        "window",
        "running",
        "future",
        "advances",
    )

    def __init__(self, fade: float, version: int, now: float) -> None:
        self.fade = fade
        self.version = version
        self.last_now = now
        #: History position one past the newest consumed record.
        self.consumed = 0
        #: Σ dc(ΔT)·gtd over the in-window finished samples, quanta.
        self.sum_time = 0.0
        #: Σ dc(ΔT)·Mc·gmd over the in-window finished samples, dollars.
        self.sum_money = 0.0
        #: (position, executed_at, gtd, gmd) of tracked finished samples,
        #: oldest first (history appends in finish order).
        self.window: deque[tuple[int, float, float, float]] = deque()
        #: (position, gtd, gmd) of running records: they contribute at
        #: dc(0) = 1 and must not decay, so they stay out of the sums.
        self.running: list[tuple[int, float, float]] = []
        #: (position, executed_at, gtd, gmd) of *future-dated* finished
        #: records (executed_at > now). The model clamps their age to 0
        #: — a clamp the decay-rescale composition law cannot express —
        #: so they contribute at dc(0) = 1 outside the sums until "now"
        #: catches up, at which point the state rebuilds exactly.
        self.future: list[tuple[int, float, float, float]] = []
        self.advances = 0


class IncrementalGainEvaluator:
    """Maintains the faded gain sums of every index across decisions.

    Usage: ``faded_sums(name, now, fade)`` returns
    ``(S_t, S_m, samples_in_window)`` — exactly the aggregates
    :meth:`repro.tuning.gain.GainModel.evaluate_from_sums` consumes.
    Live (running/queued) dataflow contributions are *not* included;
    the tuner adds them at dc(0) = 1 on top, mirroring the naive path.

    Cache behaviour is observable: ``stats.hits`` counts O(δ) advances,
    ``stats.misses`` counts full rebuilds, and ``stats.invalidations``
    counts rebuilds forced by history mutation or fade changes.

    Crash-recovery contract (``repro.recovery``): because the rescaled
    sums are only *tolerance-equal* to a from-scratch refold, a restored
    snapshot must keep the pickled per-index states authoritative —
    calling :meth:`reset` after a restore would re-derive bit-different
    sums and break the byte-identical-resume guarantee. A *cold* resume
    (no usable snapshot) instead rebuilds from the restored history the
    exact way the original run did: it replays every advance from t=0,
    so each ``_rebuild``/``_advance`` happens at the same ``now`` with
    the same window contents and reproduces the original bits.
    """

    def __init__(self, model: GainModel, history: DataflowHistory) -> None:
        self.model = model
        self.history = history
        self.stats = CacheStats()
        self._states: dict[str, _IndexState] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def faded_sums(
        self, index_name: str, now: float, fade_quanta: float | None = None
    ) -> tuple[float, float, int]:
        """(Σ dc·gtd, Σ dc·Mc·gmd, #in-window samples) at ``now``."""
        fade = self.model.params.fade_quanta if fade_quanta is None else fade_quanta
        state = self._states.get(index_name)
        if state is None:
            self.stats.miss()
            state = self._rebuild(index_name, now, fade)
        elif (
            state.fade != fade
            or state.version != self.history.mutation_version
            or now < state.last_now
        ):
            self.stats.invalidate()
            state = self._rebuild(index_name, now, fade)
        else:
            self.stats.hit()
            state = self._advance(state, index_name, now)
        head = self.history.head_position
        flat_t = 0.0
        flat_m = 0.0
        alive_flat = 0
        if state.running or state.future:
            mc = self.model.pricing.quantum_price
            for position, gtd, gmd in state.running:
                if position >= head:
                    flat_t += gtd
                    flat_m += mc * gmd
                    alive_flat += 1
            for position, _executed_at, gtd, gmd in state.future:
                if position >= head:
                    flat_t += gtd
                    flat_m += mc * gmd
                    alive_flat += 1
        return (
            state.sum_time + flat_t,
            state.sum_money + flat_m,
            len(state.window) + alive_flat,
        )

    def reset(self) -> None:
        """Drop all state (next lookups rebuild from the history)."""
        if self._states:
            self.stats.invalidate(len(self._states))
        self._states.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild(self, index_name: str, now: float, fade: float) -> _IndexState:
        history = self.history
        pricing = self.model.pricing
        window_q = self.model.params.window_quanta
        mc = pricing.quantum_price
        state = _IndexState(fade=fade, version=history.mutation_version, now=now)
        for position, record in history.entries_for(index_name):
            gtd = record.time_gains.get(index_name, 0.0)
            gmd = record.money_gains.get(index_name, 0.0)
            if record.running:
                state.running.append((position, gtd, gmd))
                continue
            if record.executed_at > now:
                state.future.append((position, record.executed_at, gtd, gmd))
                continue
            age = record.age_quanta(now, pricing)
            if age <= window_q:
                dc = math.exp(-age / fade)
                state.sum_time += dc * gtd
                state.sum_money += dc * mc * gmd
                state.window.append((position, record.executed_at, gtd, gmd))
        state.consumed = history.end_position
        self._states[index_name] = state
        return state

    def _advance(
        self, state: _IndexState, index_name: str, now: float
    ) -> _IndexState:
        history = self.history
        pricing = self.model.pricing
        window_q = self.model.params.window_quanta
        mc = pricing.quantum_price
        # 0. A future-dated record whose executed_at "now" has caught up
        #    with must start decaying from its true age — only an exact
        #    rebuild slots it into the ordered window correctly.
        if state.future and any(executed_at <= now for _, executed_at, _, _ in state.future):
            self.stats.invalidate()
            return self._rebuild(index_name, now, state.fade)
        # 1. Decay-rescale the sums from last_now to now.
        if now > state.last_now:
            delta_q = pricing.quanta(now - state.last_now)
            decay = math.exp(-delta_q / state.fade)
            state.sum_time *= decay
            state.sum_money *= decay
        state.last_now = now
        # 2. Expire from the front: head-evicted records and records that
        #    slid out of the window. The window is ordered by position
        #    and (per the monotone-append check in step 3) by
        #    executed_at, so expiry only ever removes a prefix.
        head = history.head_position
        while state.window:
            position, executed_at, gtd, gmd = state.window[0]
            age = max(0.0, pricing.quanta(now - executed_at))
            if position >= head and age <= window_q:
                break
            state.window.popleft()
            dc = math.exp(-age / state.fade)
            state.sum_time -= dc * gtd
            state.sum_money -= dc * mc * gmd
        if state.running:
            state.running = [e for e in state.running if e[0] >= head]
        if state.future:
            state.future = [e for e in state.future if e[0] >= head]
        # 3. Consume records appended since the last advance.
        for position, record in history.entries_for(index_name, state.consumed):
            gtd = record.time_gains.get(index_name, 0.0)
            gmd = record.money_gains.get(index_name, 0.0)
            if record.running:
                state.running.append((position, gtd, gmd))
                continue
            if record.executed_at > now:
                state.future.append((position, record.executed_at, gtd, gmd))
                continue
            if state.window and record.executed_at < state.window[-1][1]:
                # Out-of-order append would break prefix expiry; fall
                # back to an exact rebuild (counted as an invalidation).
                self.stats.invalidate()
                return self._rebuild(index_name, now, state.fade)
            age = record.age_quanta(now, pricing)
            if age <= window_q:
                dc = math.exp(-age / state.fade)
                state.sum_time += dc * gtd
                state.sum_money += dc * mc * gmd
                state.window.append((position, record.executed_at, gtd, gmd))
        state.consumed = history.end_position
        # 4. Periodic exact refresh bounds the decay-rescaling drift.
        state.advances += 1
        if state.advances % REFRESH_EVERY == 0:
            sum_time = 0.0
            sum_money = 0.0
            for _position, executed_at, gtd, gmd in state.window:
                age = max(0.0, pricing.quanta(now - executed_at))
                dc = math.exp(-age / state.fade)
                sum_time += dc * gtd
                sum_money += dc * mc * gmd
            state.sum_time = sum_time
            state.sum_money = sum_money
        return state
