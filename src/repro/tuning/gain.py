"""Index gain model: Equations 3, 4, 5 and the exponential fading.

An index's usefulness at time ``t`` combines the time and money gains it
produced for dataflows in a sliding window, faded exponentially with
``dc(t) = e^(-t/D)``, minus what it costs to build and keep:

* time gain (Eq. 5):   gt(idx,t) = Σ_i δ(d_i,t)·dc(ΔT_i)·gtd(idx,d_i) − ti(idx)
* money gain (Eq. 4):  gm(idx,t) = Σ_i δ(d_i,t)·dc(ΔT_i)·Mc·gmd(idx,d_i)
                                    − (Mc·mi(idx) + st(idx,W))
* combined (Eq. 3):    g(idx,t) = α·Mc·gt(idx,t) + (1−α)·gm(idx,t)

``gtd``/``gmd`` are per-dataflow gains in quanta; ``gt`` is in quanta and
``gm``/``g`` in dollars. An index is *beneficial* when both gt and gm are
positive (Algorithm 1); beneficial indexes are built as soon as possible
and deleted as soon as they stop being beneficial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.pricing import PricingModel
from repro.core.numeric import gt_tol, le_tol
from repro.data.index_model import Index, IndexCostModel
from repro.perf import CacheStats

if TYPE_CHECKING:
    from repro.dataflow.graph import Dataflow


@dataclass(frozen=True)
class GainParameters:
    """Tuning knobs of the gain model (Table 3 defaults).

    Attributes:
        alpha: Time/money trade-off weight α ∈ [0, 1]; large values favour
            time (Section 4).
        fade_quanta: The controller ``D`` of the exponential fading, in
            quanta. Table 3 lists "1 quantum", but the paper's own phase
            arithmetic ("33.3 quanta (10000 sec)") shows the tuning-level
            quantum is 300 s, i.e. five billing quanta — with D of one
            60-s quantum and Poisson arrivals every quantum, history
            would fade to e^-1 before the next dataflow even arrives and
            no index could ever amortise. We default to D = 5 billing
            quanta (= 1 tuning quantum of 300 s).
        window_quanta: Sliding window ``W``: dataflows older than this do
            not contribute at all, and the storage cost is charged for
            this horizon. ``inf`` disables the hard cutoff (the fading
            alone then discounts history, as in the Figure 3 example).
        storage_window_quanta: Horizon for the storage-cost term
            ``st(idx, W)``. Section 4 mentions "e.g., two quanta", but a
            window that short underprices holding an index across the
            dataflows that amortise it; the default of 20 quanta reflects
            the typical time an index stays alive between builds and
            fading-driven deletion, and makes expensive wide-column
            indexes (comment) lose to cheap ones (orderkey) exactly as
            the paper's economics intend. Defaults to the fading horizon
            ``D`` so the benefit inflow (≈ D quanta of faded history) and
            the holding cost are measured over the same horizon.
    """

    alpha: float = 0.5
    fade_quanta: float = 5.0
    window_quanta: float = 60.0
    storage_window_quanta: float = 5.0
    #: Gains below this many quanta count as "not beneficial" for the
    #: deletion rule: exponentially faded history never reaches exactly
    #: zero, so without a threshold a built index (whose remaining build
    #: hurdle is zero) would survive on an arbitrarily small residue.
    #: 0.05 quanta = three seconds of faded gain.
    delete_threshold_quanta: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.fade_quanta <= 0:
            raise ValueError("fade_quanta must be positive")
        if self.window_quanta <= 0 or self.storage_window_quanta < 0:
            raise ValueError("windows must be positive")


@dataclass(frozen=True)
class DataflowGainSample:
    """One dataflow's contribution to an index's gain.

    Attributes:
        age_quanta: ΔT — quanta elapsed since the dataflow executed (0
            for running or queued dataflows).
        time_gain_quanta: gtd(idx, d) — dataflow time saved by the index.
        money_gain_quanta: gmd(idx, d) — money saved, in quanta of VM
            price (already net of the cost to read the index).
    """

    age_quanta: float
    time_gain_quanta: float
    money_gain_quanta: float


@dataclass(frozen=True)
class IndexGain:
    """Evaluated gains of one index at one time point.

    Beyond the three Eq. 3-5 results, the evaluation records the terms
    they were computed from (faded benefit inflow, build hurdle,
    storage holding cost, fading controller, sample count) so a
    decision journal can show *why* an index was built or dropped
    without re-running the model.
    """

    index_name: str
    time_gain_quanta: float  # gt(idx, t)
    money_gain_dollars: float  # gm(idx, t)
    combined_dollars: float  # g(idx, t)
    #: Deletion threshold (quanta) the evaluating model was configured
    #: with; see GainParameters.delete_threshold_quanta.
    delete_threshold_quanta: float = 0.05
    # ------------------------------------------------------------------
    # Eq. 3-5 term breakdown (zero-cost: derived from values the
    # evaluation computes anyway).
    # ------------------------------------------------------------------
    #: Σ dc(ΔT)·gtd — the faded time-benefit inflow, in quanta.
    faded_time_quanta: float = 0.0
    #: Σ dc(ΔT)·Mc·gmd — the faded money-benefit inflow, in dollars.
    faded_money_dollars: float = 0.0
    #: ti(idx) — remaining build time over unbuilt partitions, quanta.
    build_time_quanta: float = 0.0
    #: Mc·mi(idx) — monetary cost of the remaining build, dollars.
    build_cost_dollars: float = 0.0
    #: st(idx, W) — holding cost over the storage window, dollars.
    storage_cost_dollars: float = 0.0
    #: The fading controller D the evaluation used, in quanta.
    fade_quanta: float = 0.0
    #: Number of in-window dataflow samples that contributed.
    samples: int = 0

    @property
    def beneficial(self) -> bool:
        """Both gains positive — the Algorithm 1 build criterion.

        The tolerance is zero on purpose: the build hurdle is already
        folded into both gains, so *any* strictly positive residue means
        the index pays for itself (making the threshold explicit keeps
        NUM01 honest without changing the paper's criterion).
        """
        return gt_tol(self.time_gain_quanta, 0.0, tol=0.0) and gt_tol(
            self.money_gain_dollars, 0.0, tol=0.0
        )

    @property
    def deletable(self) -> bool:
        """Both gains (effectively) non-positive — Algorithm 1's delete.

        A built index has no remaining build hurdle, so an arbitrarily
        faded history sample keeps its time gain mathematically positive
        forever; gains below the configured threshold count as zero.
        """
        eps_t = self.delete_threshold_quanta
        eps_m = self.delete_threshold_quanta * 0.1  # Mc dollars per quantum
        return le_tol(self.time_gain_quanta, 0.0, tol=eps_t) and le_tol(
            self.money_gain_dollars, 0.0, tol=eps_m
        )

    def breakdown(self) -> dict[str, object]:
        """The full Eq. 3-5 term breakdown as a JSON-ready dict.

        This is the payload the decision journal attaches to every
        gain evaluation, index build and index delete event.
        """
        return {
            "index": self.index_name,
            "time_gain_quanta": self.time_gain_quanta,
            "money_gain_dollars": self.money_gain_dollars,
            "combined_dollars": self.combined_dollars,
            "faded_time_quanta": self.faded_time_quanta,
            "faded_money_dollars": self.faded_money_dollars,
            "build_time_quanta": self.build_time_quanta,
            "build_cost_dollars": self.build_cost_dollars,
            "storage_cost_dollars": self.storage_cost_dollars,
            "fade_quanta": self.fade_quanta,
            "samples": self.samples,
            "beneficial": self.beneficial,
            "deletable": self.deletable,
        }


class GainModel:
    """Evaluates Equations 3-5 for indexes against dataflow history."""

    def __init__(
        self,
        pricing: PricingModel,
        cost_model: IndexCostModel,
        params: GainParameters | None = None,
    ) -> None:
        self.pricing = pricing
        self.cost_model = cost_model
        self.params = params or GainParameters()
        #: Hit/miss/invalidation counters of the cost-term memo below.
        self.cost_stats = CacheStats()
        # ti(idx) depends only on the index's build state (which
        # partitions are unbuilt): partition record counts never change
        # (updates bump versions, not sizes), so the memo keys on
        # (name, build_version) — every build/invalidate/drop bumps the
        # version, making stale hits impossible.
        self._build_time_cache: dict[str, tuple[int, float]] = {}
        # st(idx, W) and the index size are static per index.
        self._storage_cache: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def fading(self, age_quanta: float, fade_quanta: float | None = None) -> float:
        """dc(t) = e^(-t/D) — discounts historical dataflows.

        ``fade_quanta`` overrides the global controller ``D`` for one
        index (the adaptive-controller extension; Section 7's future
        work allows per-index values).
        """
        if age_quanta < 0:
            raise ValueError("age cannot be negative")
        fade = self.params.fade_quanta if fade_quanta is None else fade_quanta
        if fade <= 0:
            raise ValueError("fade_quanta must be positive")
        return math.exp(-age_quanta / fade)

    def in_window(self, age_quanta: float) -> bool:
        """δ(d, t): whether the dataflow still counts at all."""
        return age_quanta <= self.params.window_quanta

    def build_time_quanta(self, index: Index) -> float:
        """ti(idx): remaining build time over unbuilt partitions.

        Memoised on ``(index.name, index.build_version)`` — the exact
        float the sum below would produce is returned, so the memo is
        invisible to the gain arithmetic.
        """
        cached = self._build_time_cache.get(index.name)
        if cached is not None and cached[0] == index.build_version:
            self.cost_stats.hit()
            return cached[1]
        self.cost_stats.miss()
        table, spec = index.table, index.spec
        value = self.pricing.quanta(
            sum(
                self.cost_model.partition_model(table, spec, table.partition(pid)).total_build_seconds
                for pid in index.unbuilt_partition_ids()
            )
        )
        self._build_time_cache[index.name] = (index.build_version, value)
        return value

    def invalidate_index(self, index_name: str) -> None:
        """Drop memoised cost terms of one index.

        The build-version keying already prevents stale hits; explicit
        invalidation (called by the service when an index is built,
        dropped or data-invalidated) keeps the table bounded by live
        indexes and makes the cache lifecycle observable through
        ``cost_stats.invalidations``.
        """
        if self._build_time_cache.pop(index_name, None) is not None:
            self.cost_stats.invalidate()

    def build_cost_quanta(self, index: Index) -> float:
        """mi(idx): monetary cost of the remaining build, in quanta.

        Builds run on already-leased resources, so this equals the build
        time — the money the idle slots would otherwise waste.
        """
        return self.build_time_quanta(index)

    def storage_cost_dollars(self, index: Index) -> float:
        """st(idx, W): keeping the whole index for the storage window.

        Memoised per index name: partition record counts are immutable
        (data updates version partitions without resizing them), so the
        storage cost of an index never changes over a run.
        """
        cached = self._storage_cache.get(index.name)
        if cached is not None:
            self.cost_stats.hit()
            return cached
        self.cost_stats.miss()
        value = self.cost_model.storage_cost_dollars(
            index.table, index.spec, self.params.storage_window_quanta
        )
        self._storage_cache[index.name] = value
        return value

    def index_read_quanta(self, index: Index) -> float:
        """Time to read the full index from the storage service."""
        size_mb = self.cost_model.index_size_mb(index.table, index.spec)
        return self.pricing.quanta(size_mb / self.cost_model.container.net_bw_mb_s)

    # ------------------------------------------------------------------
    # Equations 4, 5, 3
    # ------------------------------------------------------------------
    def time_gain(
        self,
        index: Index,
        samples: list[DataflowGainSample],
        fade_quanta: float | None = None,
    ) -> float:
        """Equation 5, in quanta."""
        total = sum(
            self.fading(s.age_quanta, fade_quanta) * s.time_gain_quanta
            for s in samples
            if self.in_window(s.age_quanta)
        )
        return total - self.build_time_quanta(index)

    def money_gain(
        self,
        index: Index,
        samples: list[DataflowGainSample],
        fade_quanta: float | None = None,
    ) -> float:
        """Equation 4, in dollars."""
        mc = self.pricing.quantum_price
        total = sum(
            self.fading(s.age_quanta, fade_quanta) * mc * s.money_gain_quanta
            for s in samples
            if self.in_window(s.age_quanta)
        )
        build = mc * self.build_cost_quanta(index)
        return total - (build + self.storage_cost_dollars(index))

    def evaluate(
        self,
        index: Index,
        samples: list[DataflowGainSample],
        fade_quanta: float | None = None,
    ) -> IndexGain:
        """Equation 3: the weighted combined gain (and its components).

        The returned :class:`IndexGain` also carries the Eq. 3-5 term
        breakdown; the inflow terms are derived from the gains and the
        cost terms (never recomputed), so evaluation cost and the gt/gm
        float arithmetic are bit-identical to the unadorned model.
        """
        gt = self.time_gain(index, samples, fade_quanta)
        gm = self.money_gain(index, samples, fade_quanta)
        alpha = self.params.alpha
        combined = alpha * self.pricing.quantum_price * gt + (1.0 - alpha) * gm
        build_time = self.build_time_quanta(index)
        build_cost = self.pricing.quantum_price * build_time  # mi(idx) == ti(idx)
        storage_cost = self.storage_cost_dollars(index)
        fade = self.params.fade_quanta if fade_quanta is None else fade_quanta
        in_window = sum(1 for s in samples if self.in_window(s.age_quanta))
        return IndexGain(
            index_name=index.name,
            time_gain_quanta=gt,
            money_gain_dollars=gm,
            combined_dollars=combined,
            delete_threshold_quanta=self.params.delete_threshold_quanta,
            faded_time_quanta=gt + build_time,
            faded_money_dollars=gm + build_cost + storage_cost,
            build_time_quanta=build_time,
            build_cost_dollars=build_cost,
            storage_cost_dollars=storage_cost,
            fade_quanta=fade,
            samples=in_window,
        )

    def evaluate_from_sums(
        self,
        index: Index,
        faded_time_quanta: float,
        faded_money_dollars: float,
        samples_in_window: int,
        fade_quanta: float | None = None,
    ) -> IndexGain:
        """Equations 3-5 from pre-aggregated benefit inflows.

        ``faded_time_quanta`` is Σ dc(ΔT)·gtd over the in-window samples
        and ``faded_money_dollars`` is Σ dc(ΔT)·Mc·gmd — exactly the two
        sums :meth:`time_gain` / :meth:`money_gain` fold over the sample
        list. The incremental evaluator maintains those sums across
        calls (:mod:`repro.tuning.incremental`); everything downstream
        of the sums (cost terms, Eq. 3 weighting, breakdown) is the
        identical arithmetic of :meth:`evaluate`.
        """
        build_time = self.build_time_quanta(index)
        build_cost = self.pricing.quantum_price * build_time  # mi(idx) == ti(idx)
        storage_cost = self.storage_cost_dollars(index)
        gt = faded_time_quanta - build_time
        gm = faded_money_dollars - (build_cost + storage_cost)
        alpha = self.params.alpha
        combined = alpha * self.pricing.quantum_price * gt + (1.0 - alpha) * gm
        fade = self.params.fade_quanta if fade_quanta is None else fade_quanta
        return IndexGain(
            index_name=index.name,
            time_gain_quanta=gt,
            money_gain_dollars=gm,
            combined_dollars=combined,
            delete_threshold_quanta=self.params.delete_threshold_quanta,
            faded_time_quanta=faded_time_quanta,
            faded_money_dollars=faded_money_dollars,
            build_time_quanta=build_time,
            build_cost_dollars=build_cost,
            storage_cost_dollars=storage_cost,
            fade_quanta=fade,
            samples=samples_in_window,
        )


def dataflow_index_gains(
    dataflow: Dataflow,
    pricing: PricingModel,
    index_read_quanta: dict[str, float] | None = None,
    net_bw_mb_s: float | None = None,
    index_sizes_mb: dict[str, float] | None = None,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-index gtd/gmd of one dataflow, in quanta.

    The time gain of an index is the operator runtime it would save if
    fully built — the operator's runtime share on the indexed file,
    scaled by ``1 - 1/speedup`` — plus, when the network bandwidth is
    given, the input transfer avoided by reading the index and the
    touched slice instead of the whole file. The money gain is the same
    saved VM time minus the time to read the index from storage (both in
    quanta, so money and time share units, Section 4).
    """
    time_gains: dict[str, float] = {}
    for op in dataflow.operators.values():
        if not op.index_speedup:
            continue
        weights = op.input_weights()
        sizes = {f.name: f.size_mb for f in op.inputs}
        for index_name, speedup in op.index_speedup.items():
            if le_tol(speedup, 1.0):
                continue
            table = index_name.split("__", 1)[0]
            weight = weights.get(table, 1.0 if not weights else 0.0)
            saved_s = op.runtime * weight * (1.0 - 1.0 / speedup)
            if net_bw_mb_s and table in sizes:
                index_mb = (index_sizes_mb or {}).get(index_name, 0.0)
                avoided = sizes[table] - (sizes[table] / speedup + index_mb)
                if gt_tol(avoided, 0.0):
                    saved_s += avoided / net_bw_mb_s
            time_gains[index_name] = time_gains.get(index_name, 0.0) + pricing.quanta(saved_s)
    money_gains: dict[str, float] = {}
    for index_name, gain in time_gains.items():
        read = (index_read_quanta or {}).get(index_name, 0.0)
        money_gains[index_name] = gain - read
    return time_gains, money_gains
