"""Online auto-tuning: gain model, history, ranking, Algorithm 1 tuner.

Also hosts the future-work extensions: the what-if index advisor, the
adaptive per-index fading controller, and the deferred-build policy.
"""

from repro.tuning.adaptive import AdaptiveFadingController, UsageTrace
from repro.tuning.advisor import IndexAdvisor, Recommendation
from repro.tuning.deferred import BuildBatch, DeferredBuildPolicy

from repro.tuning.gain import (
    DataflowGainSample,
    GainModel,
    GainParameters,
    IndexGain,
    dataflow_index_gains,
)
from repro.tuning.history import DataflowHistory, DataflowRecord
from repro.tuning.ranking import deletable_indexes, rank_indexes
from repro.tuning.tuner import OnlineIndexTuner, TunerDecision

__all__ = [
    "AdaptiveFadingController",
    "UsageTrace",
    "IndexAdvisor",
    "Recommendation",
    "BuildBatch",
    "DeferredBuildPolicy",
    "DataflowGainSample",
    "GainModel",
    "GainParameters",
    "IndexGain",
    "dataflow_index_gains",
    "DataflowHistory",
    "DataflowRecord",
    "deletable_indexes",
    "rank_indexes",
    "OnlineIndexTuner",
    "TunerDecision",
]
