"""Batch (struct-of-arrays) evaluation of the faded gain sums.

The naive gain model folds one ``math.exp`` per (index, sample) pair at
every decision point; the incremental evaluator
(:mod:`repro.tuning.incremental`) replaces the fold with an O(changed)
decay-rescale. This module is the third strategy: keep each index's
history slice as contiguous numpy columns and evaluate Equations 4/5 in
one shot through :func:`repro.perf.vectorized.faded_sums_kernel` — one
``np.exp`` over the in-window slice instead of a Python-level loop.

Compared to the incremental evaluator this recomputes from the columns
at every call (no carried sums, hence no drift and no rebuild
heuristics), but the per-call cost is a handful of numpy kernels over
arrays that are only rebuilt when the history actually changes. At the
100k-record scales the scale benchmark drives, that wins by an order of
magnitude over the scalar fold and stays competitive with the
incremental path while being embarrassingly simple to reason about.

Numerical contract (mirrors the incremental evaluator's): the returned
sums are *tolerance-equal* (1e-7 relative) to the naive per-sample fold
— ``np.exp`` and the blocked dot-product accumulation differ from
``math.exp`` plus left-to-right addition by rounding only. The
in-window sample *count* is bit-identical: ages are computed with the
same single subtraction/division per record, so the cutoff comparison
sees identical floats. The differential suite
(``tests/differential/test_vectorized_gain.py``) asserts both against
the frozen oracle.
"""

from __future__ import annotations

import numpy as np

from repro.perf import CacheStats
from repro.perf.vectorized import ages_quanta, faded_sums_kernel
from repro.tuning.gain import GainModel
from repro.tuning.history import DataflowHistory


class _IndexColumns:
    """One index's history slice as parallel numpy columns.

    ``positions`` is ascending (history positions are monotone), so the
    live suffix after head eviction is a single ``searchsorted`` slice.
    """

    __slots__ = ("version", "end", "positions", "executed_at", "running", "gtd", "gmd")

    def __init__(
        self,
        version: int,
        end: int,
        positions: np.ndarray,
        executed_at: np.ndarray,
        running: np.ndarray,
        gtd: np.ndarray,
        gmd: np.ndarray,
    ) -> None:
        self.version = version
        self.end = end
        self.positions = positions
        self.executed_at = executed_at
        self.running = running
        self.gtd = gtd
        self.gmd = gmd


class VectorizedGainEvaluator:
    """Drop-in for :class:`~repro.tuning.incremental.IncrementalGainEvaluator`.

    Same public surface — ``faded_sums(name, now, fade)`` returning
    ``(S_t, S_m, samples_in_window)`` plus observable ``stats`` — but
    the sums come from a columnar snapshot of the history evaluated
    through the batch kernels. Cache behaviour: ``stats.hits`` counts
    calls served from an up-to-date snapshot, ``stats.misses`` cold
    builds, ``stats.invalidations`` rebuilds forced by history growth or
    in-place mutation (``mark_finished``).

    Unlike the incremental evaluator there is no carried float state:
    every call re-derives the sums exactly from the columns, so restored
    runs need no snapshot special-casing — the result is a pure function
    of (history contents, now, fade).
    """

    def __init__(self, model: GainModel, history: DataflowHistory) -> None:
        self.model = model
        self.history = history
        self.stats = CacheStats()
        self._columns: dict[str, _IndexColumns] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def faded_sums(
        self, index_name: str, now: float, fade_quanta: float | None = None
    ) -> tuple[float, float, int]:
        """(Σ dc·gtd, Σ dc·Mc·gmd, #in-window samples) at ``now``."""
        fade = self.model.params.fade_quanta if fade_quanta is None else fade_quanta
        cols = self._snapshot(index_name)
        head = self.history.head_position
        lo = int(np.searchsorted(cols.positions, head, side="left"))
        ages = ages_quanta(
            now,
            cols.executed_at[lo:],
            cols.running[lo:],
            self.model.pricing.quantum_seconds,
        )
        return faded_sums_kernel(
            ages,
            cols.gtd[lo:],
            cols.gmd[lo:],
            self.model.params.window_quanta,
            fade,
            self.model.pricing.quantum_price,
        )

    def reset(self) -> None:
        """Drop all snapshots (next lookups rebuild from the history)."""
        if self._columns:
            self.stats.invalidate(len(self._columns))
        self._columns.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _snapshot(self, index_name: str) -> _IndexColumns:
        history = self.history
        version = history.mutation_version
        end = history.end_position
        cols = self._columns.get(index_name)
        if cols is not None and cols.version == version and cols.end == end:
            self.stats.hit()
            return cols
        if cols is None:
            self.stats.miss()
        else:
            self.stats.invalidate()
        entries = list(history.entries_for(index_name))
        n = len(entries)
        positions = np.empty(n, dtype=np.int64)
        executed_at = np.empty(n, dtype=np.float64)
        running = np.empty(n, dtype=bool)
        gtd = np.empty(n, dtype=np.float64)
        gmd = np.empty(n, dtype=np.float64)
        for i, (position, record) in enumerate(entries):
            positions[i] = position
            executed_at[i] = record.executed_at
            running[i] = record.running
            gtd[i] = record.time_gains.get(index_name, 0.0)
            gmd[i] = record.money_gains.get(index_name, 0.0)
        cols = _IndexColumns(version, end, positions, executed_at, running, gtd, gmd)
        self._columns[index_name] = cols
        return cols
