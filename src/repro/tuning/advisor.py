"""A what-if index advisor producing the tuner's candidate set.

The paper treats index recommendation as an orthogonal problem: "most
index advisors can output a set of indexes that might be useful (e.g.,
by doing a what-if analysis). This would be the input to our system."
(Section 1). This module provides such an advisor so the pipeline works
end-to-end without hand-fed candidates:

* each operator's *category* (the Section 1 taxonomy: lookup, range
  select, sorting, grouping, join) determines which index kinds help it
  and how much, using the complexity arguments of Section 1 calibrated
  by the Table 6 measurements;
* a what-if pass estimates the runtime each candidate would save and
  drops candidates below a benefit threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.catalog import Catalog, TABLE6_SPEEDUPS
from repro.data.index_model import IndexKind, IndexSpec
from repro.dataflow.graph import Dataflow
from repro.dataflow.operator import Operator

#: Expected speedup per operator category, from the Table 6 measurements
#: (lookup and small ranges dominate; sorting gains the least).
CATEGORY_SPEEDUPS: dict[str, float] = {
    "lookup": TABLE6_SPEEDUPS["lookup"],
    "range_select": TABLE6_SPEEDUPS["range_large"],
    "sorting": TABLE6_SPEEDUPS["order_by"],
    "grouping": TABLE6_SPEEDUPS["order_by"],
    "join": TABLE6_SPEEDUPS["range_large"],
}

#: Index kinds that serve each category: hash indexes only support
#: exact-key lookups; everything order-based needs a B+tree (Section 1).
CATEGORY_KINDS: dict[str, tuple[IndexKind, ...]] = {
    "lookup": (IndexKind.BTREE, IndexKind.HASH),
    "range_select": (IndexKind.BTREE,),
    "sorting": (IndexKind.BTREE,),
    "grouping": (IndexKind.BTREE,),
    "join": (IndexKind.BTREE,),
}


@dataclass(frozen=True)
class Recommendation:
    """One advised index with its what-if benefit estimate.

    Attributes:
        spec: The recommended index.
        speedup: Expected operator speedup when the index is used.
        saved_seconds: Estimated dataflow runtime saved (what-if).
        operators: Names of the operators that would use it.
    """

    spec: IndexSpec
    speedup: float
    saved_seconds: float
    operators: tuple[str, ...]

    @property
    def index_name(self) -> str:
        return self.spec.name


class IndexAdvisor:
    """Recommends per-dataflow candidate indexes via what-if analysis.

    Attributes:
        catalog: Known tables (recommendations must reference them).
        min_saved_seconds: What-if threshold below which a candidate is
            not worth reporting.
        prefer_hash_for_lookup: Emit hash indexes for pure-lookup
            operators (smaller and O(1), but useless for ranges).
    """

    def __init__(
        self,
        catalog: Catalog,
        min_saved_seconds: float = 1.0,
        prefer_hash_for_lookup: bool = False,
    ) -> None:
        if min_saved_seconds < 0:
            raise ValueError("min_saved_seconds must be non-negative")
        self.catalog = catalog
        self.min_saved_seconds = min_saved_seconds
        self.prefer_hash_for_lookup = prefer_hash_for_lookup

    # ------------------------------------------------------------------
    def _candidate_kind(self, category: str) -> IndexKind:
        kinds = CATEGORY_KINDS.get(category, (IndexKind.BTREE,))
        if self.prefer_hash_for_lookup and IndexKind.HASH in kinds:
            return IndexKind.HASH
        return kinds[0]

    def _what_if_saving(self, op: Operator, table: str, speedup: float) -> float:
        """Runtime the operator would save with a full index on ``table``."""
        weight = op.input_weights().get(table, 0.0)
        return op.runtime * weight * (1.0 - 1.0 / speedup)

    def recommend(self, dataflow: Dataflow, max_per_table: int = 2) -> list[Recommendation]:
        """Advised indexes for one dataflow, strongest first.

        For every operator that reads catalog tables, each indexable
        column of each table is considered with the operator's category
        speedup; candidates whose estimated saving falls below the
        threshold are dropped and at most ``max_per_table`` survive per
        table.
        """
        if max_per_table < 1:
            raise ValueError("max_per_table must be at least 1")
        by_spec: dict[str, Recommendation] = {}
        for op in dataflow.operators.values():
            if not op.inputs:
                continue
            speedup = CATEGORY_SPEEDUPS.get(op.category)
            if speedup is None or speedup <= 1.0:
                continue
            kind = self._candidate_kind(op.category)
            for data_file in op.inputs:
                table = self.catalog.tables.get(data_file.name)
                if table is None:
                    continue
                saved = self._what_if_saving(op, table.name, speedup)
                if saved < self.min_saved_seconds:
                    continue
                for column in table.schema.column_names():
                    if column == "payload":
                        continue
                    spec = IndexSpec(table.name, (column,), kind=kind)
                    existing = by_spec.get(spec.name)
                    if existing is None:
                        by_spec[spec.name] = Recommendation(
                            spec=spec, speedup=speedup, saved_seconds=saved,
                            operators=(op.name,),
                        )
                    else:
                        by_spec[spec.name] = Recommendation(
                            spec=spec,
                            speedup=max(existing.speedup, speedup),
                            saved_seconds=existing.saved_seconds + saved,
                            operators=(*existing.operators, op.name),
                        )
        ranked = sorted(by_spec.values(), key=lambda r: -r.saved_seconds)
        per_table: dict[str, int] = {}
        out: list[Recommendation] = []
        for rec in ranked:
            count = per_table.get(rec.spec.table_name, 0)
            if count >= max_per_table:
                continue
            per_table[rec.spec.table_name] = count + 1
            out.append(rec)
        return out

    def predicted_gains(self, dataflow: Dataflow, max_per_table: int = 2) -> dict[str, float]:
        """What-if saved seconds per advised index name (pure query).

        The advisor-tier counterpart of the tuner's decision-time
        prediction: what the what-if pass believed each index was worth
        before any build was paid for. Does not mutate the catalog or
        the dataflow.
        """
        return {
            rec.index_name: rec.saved_seconds
            for rec in self.recommend(dataflow, max_per_table=max_per_table)
        }

    def apply(self, dataflow: Dataflow, max_per_table: int = 2) -> list[Recommendation]:
        """Recommend and wire the advice into the dataflow in place.

        Registers each advised index as a catalog potential index and
        attaches the speedups to the operators that would use them — the
        exact hand-off the paper describes between an advisor and the
        auto-tuner.
        """
        recommendations = self.recommend(dataflow, max_per_table=max_per_table)
        for rec in recommendations:
            self.catalog.add_potential_index(rec.spec)
            dataflow.candidate_indexes.add(rec.index_name)
            for op_name in rec.operators:
                op = dataflow.operators[op_name]
                current = op.index_speedup.get(rec.index_name, 1.0)
                op.index_speedup[rec.index_name] = max(current, rec.speedup)
        return recommendations
