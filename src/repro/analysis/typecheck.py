"""Optional ``mypy --strict`` leg of the analysis gate.

The lint rules are dependency-free; the type gate shells out to mypy
when (and only when) it is installed. On a machine without mypy the
gate degrades gracefully to "skipped" — it never *passes vacuously as
green typechecking*, the report says so explicitly — while CI installs
the ``dev`` extra and runs the strict check for real.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

#: Packages held to ``mypy --strict`` (the billing-critical layers,
#: plus the batch-kernel leaf they call into).
STRICT_PACKAGES: tuple[str, ...] = (
    "repro.core",
    "repro.cloud",
    "repro.tuning",
    "repro.perf",
)


@dataclass(frozen=True)
class TypecheckResult:
    """Outcome of the mypy leg: passed / failed / skipped."""

    status: str  # "passed" | "failed" | "skipped"
    detail: str

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    def to_json(self) -> dict[str, str]:
        return {"status": self.status, "detail": self.detail}


def mypy_available() -> bool:
    """Whether mypy is importable in this environment."""
    return importlib.util.find_spec("mypy") is not None


def _source_root() -> Path:
    """Directory containing the ``repro`` package (the ``src`` dir)."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    return package_dir.parent


def run_mypy(
    packages: tuple[str, ...] = STRICT_PACKAGES, timeout_s: float = 600.0
) -> TypecheckResult:
    """Run ``mypy --strict`` over ``packages``; skip if not installed."""
    if not mypy_available():
        return TypecheckResult(
            status="skipped",
            detail=(
                "mypy is not installed; strict typechecking skipped "
                "(install the [dev] extra to enable it)"
            ),
        )
    cmd = [sys.executable, "-m", "mypy", "--strict", "--no-error-summary"]
    for package in packages:
        cmd += ["-p", package]
    try:
        proc = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=timeout_s,
            env={**os.environ, "MYPYPATH": str(_source_root())},
        )
    except subprocess.TimeoutExpired:
        return TypecheckResult(status="failed", detail=f"mypy timed out after {timeout_s}s")
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode == 0:
        return TypecheckResult(status="passed", detail=output or "clean")
    return TypecheckResult(status="failed", detail=output)
