"""Pluggable checker registry.

A *module* checker is a function ``(ModuleContext) -> Iterable[Diagnostic]``
registered under a stable rule code via the :func:`register` decorator.
New rules drop in by adding a module under ``repro.analysis.checkers``
and decorating one function — the runner discovers them through this
registry, never through hard-coded lists.

A *project* checker sees the whole program at once: it is a function
``(FlowAnalysis) -> Iterable[tuple[Diagnostic, fingerprint]]``
registered via :func:`register_project`. Project rules run only under
``repro-lint --flow`` (they need the interprocedural summaries), and
each finding carries a line-independent *fingerprint* used by the
baseline ratchet (see :mod:`repro.analysis.flow.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic

CheckerFn = Callable[[ModuleContext], Iterable[Diagnostic]]
#: ``(FlowAnalysis) -> iterable of (diagnostic, fingerprint)``. Typed as
#: ``Any`` to keep the registry import-light; the concrete argument type
#: lives in :mod:`repro.analysis.flow`.
ProjectCheckerFn = Callable[[Any], Iterable[tuple[Diagnostic, str]]]

#: Reserved code for lint infrastructure errors (malformed suppressions,
#: unparsable files). Not a registrable checker.
LINT_META_CODE = "LINT00"

#: Reserved code for stale-suppression findings. Emitted by the runner
#: itself (staleness is only knowable after every selected rule ran),
#: not by a registrable checker.
SUPPRESSION_CODE = "SUP01"


@dataclass(frozen=True)
class Rule:
    """One registered rule: its code, a one-line summary, the checker."""

    code: str
    summary: str
    checker: CheckerFn


@dataclass(frozen=True)
class ProjectRule:
    """One registered whole-program rule."""

    code: str
    summary: str
    checker: ProjectCheckerFn


_RULES: dict[str, Rule] = {}
_PROJECT_RULES: dict[str, ProjectRule] = {}
_RESERVED = frozenset({LINT_META_CODE, SUPPRESSION_CODE})


def register(code: str, summary: str) -> Callable[[CheckerFn], CheckerFn]:
    """Class/function decorator registering a checker under ``code``."""

    def decorate(fn: CheckerFn) -> CheckerFn:
        if code in _RESERVED:
            raise ValueError(f"{code} is reserved for the lint runner")
        if code in _RULES or code in _PROJECT_RULES:
            raise ValueError(f"duplicate rule code {code}")
        _RULES[code] = Rule(code=code, summary=summary, checker=fn)
        return fn

    return decorate


def register_project(
    code: str, summary: str
) -> Callable[[ProjectCheckerFn], ProjectCheckerFn]:
    """Decorator registering a whole-program (``--flow``) rule."""

    def decorate(fn: ProjectCheckerFn) -> ProjectCheckerFn:
        if code in _RESERVED:
            raise ValueError(f"{code} is reserved for the lint runner")
        if code in _RULES or code in _PROJECT_RULES:
            raise ValueError(f"duplicate rule code {code}")
        _PROJECT_RULES[code] = ProjectRule(code=code, summary=summary, checker=fn)
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Registered module rules, sorted by code (stable report order)."""
    return [_RULES[code] for code in sorted(_RULES)]


def all_project_rules() -> list[ProjectRule]:
    """Registered whole-program rules, sorted by code."""
    return [_PROJECT_RULES[code] for code in sorted(_PROJECT_RULES)]


def module_codes() -> frozenset[str]:
    """Codes of the per-module rules only."""
    return frozenset(_RULES)


def project_codes() -> frozenset[str]:
    """Codes of the whole-program (``--flow``) rules only."""
    return frozenset(_PROJECT_RULES)


def known_codes() -> frozenset[str]:
    """All valid rule codes, including the reserved runner codes."""
    return frozenset(_RULES) | frozenset(_PROJECT_RULES) | _RESERVED
