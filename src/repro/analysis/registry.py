"""Pluggable checker registry.

A checker is a function ``(ModuleContext) -> Iterable[Diagnostic]``
registered under a stable rule code via the :func:`register` decorator.
New rules drop in by adding a module under ``repro.analysis.checkers``
and decorating one function — the runner discovers them through this
registry, never through hard-coded lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic

CheckerFn = Callable[[ModuleContext], Iterable[Diagnostic]]

#: Reserved code for lint infrastructure errors (malformed suppressions,
#: unparsable files). Not a registrable checker.
LINT_META_CODE = "LINT00"


@dataclass(frozen=True)
class Rule:
    """One registered rule: its code, a one-line summary, the checker."""

    code: str
    summary: str
    checker: CheckerFn


_RULES: dict[str, Rule] = {}


def register(code: str, summary: str) -> Callable[[CheckerFn], CheckerFn]:
    """Class/function decorator registering a checker under ``code``."""

    def decorate(fn: CheckerFn) -> CheckerFn:
        if code == LINT_META_CODE:
            raise ValueError(f"{LINT_META_CODE} is reserved for the lint runner")
        if code in _RULES:
            raise ValueError(f"duplicate rule code {code}")
        _RULES[code] = Rule(code=code, summary=summary, checker=fn)
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Registered rules, sorted by code (stable report order)."""
    return [_RULES[code] for code in sorted(_RULES)]


def known_codes() -> frozenset[str]:
    """All valid rule codes, including the reserved meta code."""
    return frozenset(_RULES) | {LINT_META_CODE}
