"""repro.analysis — the repo's own static-analysis gate.

An AST-based lint framework plus an optional ``mypy --strict`` leg that
together machine-check the invariants the paper reproduction depends
on: bit-deterministic simulation (DET01, SEED01), numerically safe
billing math (NUM01), an acyclic package DAG (LAY01), hashable
simulation records (SIM01) and fully-annotated public APIs in the
billing-critical packages (TYP01).

Run it as ``python -m repro.analysis src/repro`` or via the
``repro-lint`` console script; rules and rationale are documented in
``docs/ANALYSIS.md``. The package deliberately imports nothing from the
rest of ``repro`` at runtime (the typecheck leg resolves the source
root lazily), so the linter still runs on a tree it is about to reject.
"""

from repro.analysis.context import ModuleContext, module_name_for_path
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import LINT_META_CODE, Rule, all_rules, known_codes, register
from repro.analysis.runner import discover_files, lint_paths, lint_source, main
from repro.analysis.typecheck import STRICT_PACKAGES, TypecheckResult, run_mypy

__all__ = [
    "Diagnostic",
    "ModuleContext",
    "module_name_for_path",
    "Rule",
    "register",
    "all_rules",
    "known_codes",
    "LINT_META_CODE",
    "discover_files",
    "lint_paths",
    "lint_source",
    "main",
    "STRICT_PACKAGES",
    "TypecheckResult",
    "run_mypy",
]
