"""Inline suppression comments.

A violation can be silenced on its own line with::

    something_flagged()  # repro-lint: disable=DET01 -- why this is safe

The justification after ``--`` is **mandatory**: a suppression without
one, or naming an unknown rule code, is itself reported (as the reserved
``LINT00`` meta code). This keeps every escape hatch auditable — the
reviewer sees *why* the invariant does not apply, not just that someone
turned the rule off.

Suppressions are found by **tokenizing**, not by line-scanning: only
real ``#`` comment tokens count. A ``repro-lint: disable=`` example
inside a docstring (this module's own docstring used to trip the old
regex) is documentation, not an escape hatch.

The table also tracks *usage*: a suppression that silenced nothing this
run is **stale** and is reported under the reserved ``SUP01`` code —
dead escape hatches hide real regressions when the silenced code path
later returns. Staleness is only assessed for rule codes that actually
ran (see the runner's ``--select`` / ``--flow`` handling), so a partial
run never flags suppressions for rules it skipped.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import LINT_META_CODE, SUPPRESSION_CODE

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    codes: frozenset[str]
    justification: str | None


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` of every comment token; [] on tokenize failure.

    A file that does not tokenize does not parse either, so the runner
    already reports it (LINT00) — suppressions are moot there.
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []


def parse_suppressions(source: str) -> list[Suppression]:
    """All ``repro-lint: disable=`` *comments* in ``source``, by line."""
    found: list[Suppression] = []
    for lineno, text in _comment_tokens(source):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group("codes").split(",") if code.strip()
        )
        found.append(
            Suppression(
                line=lineno, codes=codes, justification=match.group("why")
            )
        )
    return found


class SuppressionTable:
    """Validated per-file suppressions, plus their own diagnostics."""

    def __init__(
        self, source: str, path: Path, valid_codes: frozenset[str]
    ) -> None:
        self.path = path
        self.problems: list[Diagnostic] = []
        self._by_line: dict[int, frozenset[str]] = {}
        #: (line, code) pairs that actually silenced a diagnostic.
        self._used: set[tuple[int, str]] = set()
        for sup in parse_suppressions(source):
            ok = True
            if not sup.codes:
                self._note(path, sup.line, "suppression lists no rule codes")
                ok = False
            unknown = sorted(sup.codes - valid_codes)
            if unknown:
                self._note(
                    path, sup.line,
                    f"suppression names unknown rule code(s): {', '.join(unknown)}",
                )
                ok = False
            if not sup.justification:
                self._note(
                    path, sup.line,
                    "suppression requires a justification: append "
                    "`-- <why this is safe>` after the rule code(s)",
                )
                ok = False
            if ok:
                merged = self._by_line.get(sup.line, frozenset()) | sup.codes
                self._by_line[sup.line] = merged

    def _note(self, path: Path, line: int, message: str) -> None:
        self.problems.append(
            Diagnostic(
                path=str(path), line=line, col=1,
                code=LINT_META_CODE, message=message,
            )
        )

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a valid suppression on ``line`` covers ``code``."""
        if code in self._by_line.get(line, frozenset()):
            self._used.add((line, code))
            return True
        return False

    def stale(
        self, ran_codes: frozenset[str], severity: str = "warning"
    ) -> list[Diagnostic]:
        """SUP01 diagnostics for suppressions that silenced nothing.

        Only codes in ``ran_codes`` (the rules this run executed) are
        assessed; a suppression for a skipped rule is never stale.
        """
        out: list[Diagnostic] = []
        for line in sorted(self._by_line):
            for code in sorted(self._by_line[line]):
                if code not in ran_codes or (line, code) in self._used:
                    continue
                out.append(
                    Diagnostic(
                        path=str(self.path), line=line, col=1,
                        code=SUPPRESSION_CODE,
                        message=(
                            f"stale suppression: {code} reported nothing on "
                            "this line; remove the escape hatch"
                        ),
                        severity=severity,
                    )
                )
        return out
