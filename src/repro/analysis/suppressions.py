"""Inline suppression comments.

A violation can be silenced on its own line with::

    something_flagged()  # repro-lint: disable=DET01 -- why this is safe

The justification after ``--`` is **mandatory**: a suppression without
one, or naming an unknown rule code, is itself reported (as the reserved
``LINT00`` meta code). This keeps every escape hatch auditable — the
reviewer sees *why* the invariant does not apply, not just that someone
turned the rule off.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import LINT_META_CODE

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    codes: frozenset[str]
    justification: str | None


def parse_suppressions(source: str) -> list[Suppression]:
    """All ``repro-lint: disable=`` comments in ``source``, by line."""
    found: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group("codes").split(",") if code.strip()
        )
        found.append(
            Suppression(
                line=lineno, codes=codes, justification=match.group("why")
            )
        )
    return found


class SuppressionTable:
    """Validated per-file suppressions, plus their own diagnostics."""

    def __init__(
        self, source: str, path: Path, valid_codes: frozenset[str]
    ) -> None:
        self.problems: list[Diagnostic] = []
        self._by_line: dict[int, frozenset[str]] = {}
        for sup in parse_suppressions(source):
            ok = True
            if not sup.codes:
                self._note(path, sup.line, "suppression lists no rule codes")
                ok = False
            unknown = sorted(sup.codes - valid_codes)
            if unknown:
                self._note(
                    path, sup.line,
                    f"suppression names unknown rule code(s): {', '.join(unknown)}",
                )
                ok = False
            if not sup.justification:
                self._note(
                    path, sup.line,
                    "suppression requires a justification: append "
                    "`-- <why this is safe>` after the rule code(s)",
                )
                ok = False
            if ok:
                merged = self._by_line.get(sup.line, frozenset()) | sup.codes
                self._by_line[sup.line] = merged

    def _note(self, path: Path, line: int, message: str) -> None:
        self.problems.append(
            Diagnostic(
                path=str(path), line=line, col=1,
                code=LINT_META_CODE, message=message,
            )
        )

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a valid suppression on ``line`` covers ``code``."""
        return code in self._by_line.get(line, frozenset())
