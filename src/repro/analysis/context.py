"""Per-module analysis context shared by all checkers.

Wraps one parsed source file with the helpers every checker needs:

* the module's dotted name (``repro.core.simulator``), derived from the
  path or overridden by a ``# lint-module: <name>`` header (used by the
  self-test fixtures, which live outside the package tree);
* an alias map from local names to canonical module paths, built from
  the module's import statements (``np`` -> ``numpy``, ``datetime`` ->
  ``datetime.datetime`` after ``from datetime import datetime``);
* resolution of call targets to canonical dotted names, so checkers
  match ``numpy.random.uniform`` regardless of how numpy was imported.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

_LINT_MODULE_RE = re.compile(r"^#\s*lint-module:\s*([\w.]+)\s*$")

#: How many leading lines may carry ``# lint-module:`` headers.
_HEADER_SCAN_LINES = 10


def module_name_for_path(path: Path) -> str | None:
    """Dotted module name of a file inside the ``repro`` package tree."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    dotted = list(parts[start:])
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


@dataclass
class ModuleContext:
    """One source file, parsed, with import-resolution helpers."""

    path: Path
    source: str
    tree: ast.Module
    module: str | None
    _aliases: dict[str, str] | None = field(default=None, repr=False)

    @classmethod
    def parse(
        cls, source: str, path: Path, module: str | None = None
    ) -> "ModuleContext":
        """Parse ``source``; may raise :class:`SyntaxError`.

        The module name is taken from, in priority order: the explicit
        argument, a ``# lint-module:`` header in the first few lines
        (fixture escape hatch), or the path's position under ``repro/``.
        """
        if module is None:
            for raw in source.splitlines()[:_HEADER_SCAN_LINES]:
                match = _LINT_MODULE_RE.match(raw.strip())
                if match:
                    module = match.group(1)
                    break
        if module is None:
            module = module_name_for_path(path)
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, source=source, tree=tree, module=module)

    # ------------------------------------------------------------------
    # Import resolution
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted path, from all import statements."""
        if self._aliases is None:
            self._aliases = self._build_aliases()
        return self._aliases

    def _build_aliases(self) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{base}.{alias.name}" if base else alias.name
        return aliases

    def _resolve_from_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute module a ``from X import ...`` pulls from."""
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        # Relative import: climb ``level`` packages from this module.
        parts = self.module.split(".")
        if len(parts) < node.level:
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    # ------------------------------------------------------------------
    # Name canonicalisation
    # ------------------------------------------------------------------
    def canonical_name(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, or None.

        Only resolves chains whose root name was introduced by an import
        (a chain rooted at a local variable is not a module reference).
        """
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.aliases.get(cursor.id)
        if root is None:
            return None
        chain.append(root)
        return ".".join(reversed(chain))

    def call_target(self, node: ast.Call) -> str | None:
        """Canonical dotted path of a call's target, or None."""
        return self.canonical_name(node.func)
