"""The lint runner: file discovery, rule dispatch, reporting, CLI.

Usage::

    python -m repro.analysis src/repro            # full gate (lint + mypy)
    repro-lint src/repro --json report.json       # machine-readable report
    repro-lint src/repro --flow                   # + whole-program rules
    repro-lint --list-rules                       # what is enforced, and why
    repro-lint tests/analysis_fixtures --no-typecheck --select DET01

Every file is parsed **once**: the same :class:`ModuleContext` feeds the
per-module rules and (under ``--flow``) the whole-program effect
analysis, so the flow leg adds no re-parse cost on top of the lint leg.

Whole-program findings ratchet against a checked-in baseline
(``flow-baseline.json``): new findings fail, enumerated pre-existing
ones are reported informationally, and entries that no longer match
anything are stale and also fail — the debt can only shrink. See
:mod:`repro.analysis.flow.baseline`.

Exit status is 0 only when no error-severity diagnostic fired and the
mypy leg did not fail (a *skipped* mypy — not installed — does not fail
the gate; the JSON report records the skip so CI can insist on the real
thing). Stale-suppression findings (``SUP01``) are warnings by default
and errors under ``--strict-suppressions``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import repro.analysis.checkers  # noqa: F401  (registers the built-in rules)
import repro.analysis.flow.checkers  # noqa: F401  (registers the project rules)
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow import FlowAnalysis, action_report, analyze, run_project_rules
from repro.analysis.flow.baseline import (
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.registry import (
    LINT_META_CODE,
    SUPPRESSION_CODE,
    all_project_rules,
    all_rules,
    known_codes,
    module_codes,
    project_codes,
)
from repro.analysis.suppressions import SuppressionTable
from repro.analysis.typecheck import STRICT_PACKAGES, TypecheckResult, run_mypy

REPORT_VERSION = 2

DEFAULT_BASELINE = "flow-baseline.json"


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


@dataclass
class FileEntry:
    """One parsed source file: the shared AST + its suppression table."""

    path: Path
    ctx: ModuleContext | None  #: None when the file does not parse
    table: SuppressionTable
    parse_problem: Diagnostic | None


def load_file(source: str, path: Path, module: str | None = None) -> FileEntry:
    """Parse one source text into the shared per-file analysis state."""
    table = SuppressionTable(source, path, known_codes())
    try:
        ctx = ModuleContext.parse(source, path, module=module)
    except SyntaxError as exc:
        return FileEntry(
            path=path,
            ctx=None,
            table=table,
            parse_problem=Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=LINT_META_CODE,
                message=f"file does not parse: {exc.msg}",
            ),
        )
    return FileEntry(path=path, ctx=ctx, table=table, parse_problem=None)


def _module_diagnostics(
    entry: FileEntry, select: frozenset[str] | None
) -> list[Diagnostic]:
    if entry.parse_problem is not None:
        return [entry.parse_problem]
    diagnostics: list[Diagnostic] = list(entry.table.problems)
    assert entry.ctx is not None
    for rule in all_rules():
        if select is not None and rule.code not in select:
            continue
        for diag in rule.checker(entry.ctx):
            if not entry.table.is_suppressed(diag.code, diag.line):
                diagnostics.append(diag)
    return diagnostics


def lint_source(
    source: str,
    path: Path,
    module: str | None = None,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Run every (selected) per-module rule over one source text."""
    diagnostics = _module_diagnostics(load_file(source, path, module), select)
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.code))


def lint_paths(
    paths: Sequence[str | Path], select: frozenset[str] | None = None
) -> list[Diagnostic]:
    """Lint every Python file under ``paths`` (per-module rules only)."""
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        diagnostics.extend(lint_source(path.read_text(), path, select=select))
    return diagnostics


@dataclass
class GateResult:
    """Everything one gate run produced."""

    diagnostics: list[Diagnostic]
    flow: dict[str, object] | None
    ran_codes: frozenset[str]
    baseline_written: str | None = None

    @property
    def failed(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)


def run_gate(
    paths: Sequence[str | Path],
    select: frozenset[str] | None = None,
    flow: bool = False,
    baseline_path: str | Path = DEFAULT_BASELINE,
    update_baseline: bool = False,
    strict_suppressions: bool = False,
) -> GateResult:
    """Run the full gate: module rules, optional flow leg, SUP01."""
    entries = [load_file(p.read_text(), p) for p in discover_files(paths)]
    diagnostics: list[Diagnostic] = []
    for entry in entries:
        diagnostics.extend(_module_diagnostics(entry, select))

    flow_section: dict[str, object] | None = None
    baseline_written: str | None = None
    ran = module_codes() if select is None else module_codes() & select
    if flow:
        ran = ran | (project_codes() if select is None else project_codes() & select)
        tables = {str(entry.path): entry.table for entry in entries}
        contexts = [entry.ctx for entry in entries if entry.ctx is not None]
        analysis = analyze(contexts)
        flow_diags, flow_section, baseline_written = _run_flow_leg(
            analysis, tables, select, baseline_path, update_baseline
        )
        diagnostics.extend(flow_diags)

    # Staleness is knowable only after every selected rule (including the
    # flow leg) has had its chance to hit each suppression.
    severity = "error" if strict_suppressions else "warning"
    if select is None or SUPPRESSION_CODE in select:
        for entry in entries:
            diagnostics.extend(entry.table.stale(ran, severity=severity))

    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code, d.message))
    return GateResult(
        diagnostics=diagnostics,
        flow=flow_section,
        ran_codes=frozenset(ran),
        baseline_written=baseline_written,
    )


def _run_flow_leg(
    analysis: FlowAnalysis,
    tables: dict[str, SuppressionTable],
    select: frozenset[str] | None,
    baseline_path: str | Path,
    update_baseline: bool,
) -> tuple[list[Diagnostic], dict[str, object], str | None]:
    findings = run_project_rules(analysis, select=select)
    kept = []
    for finding in findings:
        table = tables.get(finding.diagnostic.path)
        if table is not None and table.is_suppressed(
            finding.diagnostic.code, finding.diagnostic.line
        ):
            continue
        kept.append(finding)

    baseline = load_baseline(baseline_path)
    fingerprints = [finding.fingerprint for finding in kept]
    new_indices, baselined, stale = split_findings(fingerprints, baseline)

    # A baseline entry is stale only if its rule actually ran: under
    # --select a skipped rule produces no findings, which must not read
    # as "the debt was paid".
    ran_flow = {
        rule.code
        for rule in all_project_rules()
        if select is None or rule.code in select
    }
    preserved = [
        entry for entry in stale if entry.split("|", 1)[0] not in ran_flow
    ]
    stale = [entry for entry in stale if entry.split("|", 1)[0] in ran_flow]

    diagnostics = [kept[index].diagnostic for index in new_indices]
    baseline_written: str | None = None
    if update_baseline:
        Path(baseline_path).write_text(
            render_baseline(fingerprints + preserved, baseline)
        )
        baseline_written = str(baseline_path)
        diagnostics = []  # the refreshed baseline covers everything current
        stale = []
    else:
        for fingerprint in stale:
            diagnostics.append(
                Diagnostic(
                    path=str(baseline_path),
                    line=1,
                    col=1,
                    code=LINT_META_CODE,
                    message=(
                        f"stale baseline entry {fingerprint!r}: the finding no "
                        "longer exists; remove the entry (or run "
                        "--flow --update-baseline) so the ratchet can tighten"
                    ),
                )
            )

    new_set = {kept[index].fingerprint for index in new_indices}
    section: dict[str, object] = {
        "baseline": str(baseline_path),
        "rules": [
            {"code": rule.code, "summary": rule.summary}
            for rule in all_project_rules()
            if select is None or rule.code in select
        ],
        "actions": action_report(analysis),
        "findings": [
            {
                **finding.diagnostic.to_json(),
                "fingerprint": finding.fingerprint,
                "baselined": finding.fingerprint not in new_set,
            }
            for finding in kept
        ],
        "baselined": baselined,
        "stale_baseline": stale,
    }
    return diagnostics, section, baseline_written


def _build_report(
    paths: Sequence[str],
    result: GateResult,
    typecheck: TypecheckResult | None,
) -> dict[str, object]:
    counts: dict[str, int] = {}
    for diag in result.diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return {
        "tool": "repro-lint",
        "version": REPORT_VERSION,
        "paths": list(paths),
        "rules": [
            {"code": rule.code, "summary": rule.summary} for rule in all_rules()
        ],
        "diagnostics": [diag.to_json() for diag in result.diagnostics],
        "counts": dict(sorted(counts.items())),
        "typecheck": typecheck.to_json() if typecheck is not None else None,
        "flow": result.flow,
    }


def _github_escape(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def github_annotation(diag: Diagnostic) -> str:
    """One GitHub Actions workflow command annotating the finding."""
    level = "error" if diag.severity == "error" else "warning"
    return (
        f"::{level} file={diag.path},line={diag.line},col={diag.col},"
        f"title={diag.code}::{_github_escape(diag.message)}"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for ``repro-lint`` / ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST lint + typecheck gate for simulator determinism, "
            "billing-math safety, package layering and (with --flow) "
            "whole-program effect/footprint soundness."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write a machine-readable JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="run the whole-program effect rules (EFF01/PUR01/EFF02)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"flow-findings ratchet baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from current flow findings and exit clean",
    )
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help="stale suppressions (SUP01) fail the gate instead of warning",
    )
    parser.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="diagnostic output format (github = Actions annotations)",
    )
    parser.add_argument(
        "--no-typecheck", action="store_true",
        help="skip the mypy --strict leg of the gate",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        for rule in all_project_rules():
            print(f"{rule.code}  (--flow) {rule.summary}")
        print(f"{SUPPRESSION_CODE}  (reserved) stale suppression comments")
        print(
            f"{LINT_META_CODE}  (reserved) malformed suppressions / unparsable "
            "files / stale baseline entries"
        )
        return 0

    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(code.strip().upper() for code in args.select.split(","))
        unknown = select - known_codes()
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        if select & project_codes():
            args.flow = True  # selecting a flow rule implies the flow leg

    try:
        result = run_gate(
            args.paths,
            select=select,
            flow=args.flow or args.update_baseline,
            baseline_path=args.baseline,
            update_baseline=args.update_baseline,
            strict_suppressions=args.strict_suppressions,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))

    typecheck: TypecheckResult | None = None
    if not args.no_typecheck and select is None:
        typecheck = run_mypy()

    # With `--json -` the report owns stdout; human diagnostics move to
    # stderr so the stream stays machine-parsable.
    out = sys.stderr if args.json == "-" else sys.stdout
    for diag in result.diagnostics:
        if args.format == "github":
            print(github_annotation(diag), file=out)
        else:
            print(diag.format(), file=out)
    errors = sum(1 for d in result.diagnostics if d.severity == "error")
    warnings = len(result.diagnostics) - errors
    if result.diagnostics:
        tail = f", {warnings} warning(s)" if warnings else ""
        print(f"repro-lint: {errors} problem(s){tail} found", file=out)
    else:
        print("repro-lint: clean", file=out)
    if result.flow is not None:
        baselined = len(result.flow["baselined"])  # type: ignore[arg-type]
        print(
            f"flow: {len(result.flow['actions'])} action(s) analysed, "  # type: ignore[arg-type]
            f"{baselined} baselined finding(s)",
            file=out,
        )
    if result.baseline_written is not None:
        print(f"flow: baseline rewritten at {result.baseline_written}", file=out)
    if typecheck is not None:
        label = f"mypy --strict ({', '.join(STRICT_PACKAGES)}): {typecheck.status}"
        print(label, file=out)
        if typecheck.failed:
            print(typecheck.detail, file=out)

    if args.json:
        report = json.dumps(
            _build_report(args.paths, result, typecheck), indent=2
        )
        if args.json == "-":
            print(report)
        else:
            Path(args.json).write_text(report + "\n")

    failed = result.failed or (typecheck is not None and typecheck.failed)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
