"""The lint runner: file discovery, rule dispatch, reporting, CLI.

Usage::

    python -m repro.analysis src/repro            # full gate (lint + mypy)
    repro-lint src/repro --json report.json       # machine-readable report
    repro-lint --list-rules                       # what is enforced, and why
    repro-lint tests/analysis_fixtures --no-typecheck --select DET01

Exit status is 0 only when every lint rule passes and the mypy leg did
not fail (a *skipped* mypy — not installed — does not fail the gate;
the JSON report records the skip so CI can insist on the real thing).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

import repro.analysis.checkers  # noqa: F401  (registers the built-in rules)
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import LINT_META_CODE, all_rules, known_codes
from repro.analysis.suppressions import SuppressionTable
from repro.analysis.typecheck import STRICT_PACKAGES, TypecheckResult, run_mypy

REPORT_VERSION = 1


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_source(
    source: str,
    path: Path,
    module: str | None = None,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Run every (selected) registered rule over one source text."""
    try:
        ctx = ModuleContext.parse(source, path, module=module)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=LINT_META_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    table = SuppressionTable(source, path, known_codes())
    diagnostics: list[Diagnostic] = list(table.problems)
    for rule in all_rules():
        if select is not None and rule.code not in select:
            continue
        for diag in rule.checker(ctx):
            if not table.is_suppressed(diag.code, diag.line):
                diagnostics.append(diag)
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.code))


def lint_paths(
    paths: Sequence[str | Path], select: frozenset[str] | None = None
) -> list[Diagnostic]:
    """Lint every Python file under ``paths``."""
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        diagnostics.extend(lint_source(path.read_text(), path, select=select))
    return diagnostics


def _build_report(
    paths: Sequence[str],
    diagnostics: list[Diagnostic],
    typecheck: TypecheckResult | None,
) -> dict[str, object]:
    counts: dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return {
        "tool": "repro-lint",
        "version": REPORT_VERSION,
        "paths": list(paths),
        "rules": [
            {"code": rule.code, "summary": rule.summary} for rule in all_rules()
        ],
        "diagnostics": [diag.to_json() for diag in diagnostics],
        "counts": dict(sorted(counts.items())),
        "typecheck": typecheck.to_json() if typecheck is not None else None,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for ``repro-lint`` / ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST lint + typecheck gate for simulator determinism, "
            "billing-math safety and package layering."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write a machine-readable JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--no-typecheck", action="store_true",
        help="skip the mypy --strict leg of the gate",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        print(
            f"{LINT_META_CODE}  (reserved) malformed suppressions / unparsable files"
        )
        return 0

    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(code.strip().upper() for code in args.select.split(","))
        unknown = select - known_codes()
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    try:
        diagnostics = lint_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    typecheck: TypecheckResult | None = None
    if not args.no_typecheck and select is None:
        typecheck = run_mypy()

    # With `--json -` the report owns stdout; human diagnostics move to
    # stderr so the stream stays machine-parsable.
    out = sys.stderr if args.json == "-" else sys.stdout
    for diag in diagnostics:
        print(diag.format(), file=out)
    if diagnostics:
        print(f"repro-lint: {len(diagnostics)} problem(s) found", file=out)
    else:
        print("repro-lint: clean", file=out)
    if typecheck is not None:
        label = f"mypy --strict ({', '.join(STRICT_PACKAGES)}): {typecheck.status}"
        print(label, file=out)
        if typecheck.failed:
            print(typecheck.detail, file=out)

    if args.json:
        report = json.dumps(
            _build_report(args.paths, diagnostics, typecheck), indent=2
        )
        if args.json == "-":
            print(report)
        else:
            Path(args.json).write_text(report + "\n")

    failed = bool(diagnostics) or (typecheck is not None and typecheck.failed)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
