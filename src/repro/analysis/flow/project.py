"""Whole-program index: every module, class, function and their types.

The per-module :class:`~repro.analysis.context.ModuleContext` already
resolves import aliases to canonical dotted names; this module lifts
that to project scope. It indexes

* every function/method/nested function under a stable id
  ``<module>.<qualname>`` (``repro.core.service.QaaSService.step``,
  ``repro.explore.scenarios._build_toy.<locals>.driver``),
* every class with its resolved base classes, its methods, and the
  types of its attributes — gathered from class-body annotations
  (dataclass fields), ``self.x: T = ...`` / ``self.x = T(...)``
  assignments, and ``self.x = param`` aliasing of annotated
  ``__init__`` parameters,

which is exactly what the call-graph builder needs for method dispatch
via annotated receiver types. Everything is collected in deterministic
(sorted) order so downstream reports are byte-stable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ModuleContext


def walk_own_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterable[ast.AST]:
    """Walk a function's own statements without entering nested defs.

    Nested functions and lambdas are separate analysis units (they only
    contribute effects when *called*), so every per-function pass uses
    this instead of :func:`ast.walk`.
    """
    queue: list[ast.AST] = list(fn.body)
    while queue:
        node = queue.pop(0)
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            queue.append(child)


@dataclass
class FunctionInfo:
    """One function/method/nested function in the project."""

    fn_id: str  #: ``<module>.<qualname>``
    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext
    class_id: str | None  #: enclosing class id, for ``self`` dispatch
    #: ids of functions lexically visible as plain names from this body
    #: (siblings + enclosing scopes), for closure/nested-call resolution.
    local_scope: dict[str, str] = field(default_factory=dict)

    @property
    def is_generator(self) -> bool:
        return any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for sub in walk_own_body(self.node)
        )


@dataclass
class ClassInfo:
    """One class: bases, methods, attribute types."""

    class_id: str  #: ``<module>.<ClassName>``
    module: str
    name: str
    base_ids: list[str] = field(default_factory=list)
    #: method name -> function id
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> class id (resolved annotation / constructor)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute name -> raw annotated class name (for CLASS_RESOURCES)
    attr_type_names: dict[str, str] = field(default_factory=dict)


class Project:
    """The parsed project: module contexts plus cross-module indexes."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        #: module name -> context (modules without a resolvable name are
        #: skipped: nothing can call into them by qualified name).
        self.modules: dict[str, ModuleContext] = {}
        for ctx in contexts:
            if ctx.module is not None:
                self.modules[ctx.module] = ctx
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for module in sorted(self.modules):
            self._index_module(self.modules[module])
        for class_id in sorted(self.classes):
            self._resolve_class(self.classes[class_id])

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, ctx: ModuleContext) -> None:
        assert ctx.module is not None
        module_scope: dict[str, str] = {}
        # Two passes so forward references between siblings resolve.
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_scope[node.name] = f"{ctx.module}.{node.name}"
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(
                    ctx, node, qualname=node.name, class_id=None,
                    scope=dict(module_scope),
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(ctx, node, module_scope)

    def _index_class(
        self, ctx: ModuleContext, node: ast.ClassDef, module_scope: dict[str, str]
    ) -> None:
        assert ctx.module is not None
        class_id = f"{ctx.module}.{node.name}"
        info = ClassInfo(class_id=class_id, module=ctx.module, name=node.name)
        for base in node.bases:
            resolved = self._resolve_class_expr(ctx, base)
            if resolved is not None:
                info.base_ids.append(resolved)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{item.name}"
                info.methods[item.name] = f"{ctx.module}.{qualname}"
                self._index_function(
                    ctx, item, qualname=qualname, class_id=class_id,
                    scope=dict(module_scope),
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                self._note_attr_type(ctx, info, item.target.id, item.annotation)
        self.classes[class_id] = info

    def _index_function(
        self,
        ctx: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_id: str | None,
        scope: dict[str, str],
    ) -> None:
        assert ctx.module is not None
        fn_id = f"{ctx.module}.{qualname}"
        # Nested defs are visible to this body (and to each other).
        nested = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for item in nested:
            scope[item.name] = f"{fn_id}.<locals>.{item.name}"
        self.functions[fn_id] = FunctionInfo(
            fn_id=fn_id,
            module=ctx.module,
            qualname=qualname,
            node=node,
            ctx=ctx,
            class_id=class_id,
            local_scope=dict(scope),
        )
        for item in nested:
            self._index_function(
                ctx, item,
                qualname=f"{qualname}.<locals>.{item.name}",
                class_id=class_id,
                scope=dict(scope),
            )

    # ------------------------------------------------------------------
    # Type resolution
    # ------------------------------------------------------------------
    def _resolve_class_expr(self, ctx: ModuleContext, node: ast.expr) -> str | None:
        """The project class id an annotation/base expression names."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # ``T | None`` — try both arms, prefer the one that resolves.
            return self._resolve_class_expr(ctx, node.left) or self._resolve_class_expr(
                ctx, node.right
            )
        if isinstance(node, ast.Subscript):
            # ``Optional[T]`` resolves to T; containers stay opaque.
            base = self._annotation_name(ctx, node.value)
            if base is not None and base.rsplit(".", 1)[-1] == "Optional":
                return self._resolve_class_expr(ctx, node.slice)
            return None
        name = self._annotation_name(ctx, node)
        if name is None:
            return None
        if name in self.classes:
            return name
        if ctx.module is not None:
            local = f"{ctx.module}.{name}"
            if local in self.classes:
                return local
        return None

    @staticmethod
    def _annotation_name(ctx: ModuleContext, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return ctx.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            return ctx.canonical_name(node)
        return None

    def _note_attr_type(
        self, ctx: ModuleContext, info: ClassInfo, attr: str, annotation: ast.expr
    ) -> None:
        resolved = self._resolve_class_expr(ctx, annotation)
        if resolved is not None:
            info.attr_types[attr] = resolved
        name = self._annotation_tail(ctx, annotation)
        if name is not None:
            info.attr_type_names.setdefault(attr, name)

    def _annotation_tail(self, ctx: ModuleContext, node: ast.expr) -> str | None:
        """The unqualified class name an annotation ends in, if any."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_tail(ctx, node.left) or self._annotation_tail(
                ctx, node.right
            )
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _resolve_class(self, info: ClassInfo) -> None:
        """Second pass: attribute types from every method body."""
        ctx = self.modules[info.module]
        for method_name in sorted(info.methods):
            fn = self.functions[info.methods[method_name]]
            param_types = self.parameter_types(fn)
            param_type_names = self.parameter_type_names(fn)
            for node in ast.walk(fn.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                if annotation is not None:
                    self._note_attr_type(ctx, info, attr, annotation)
                if attr in info.attr_types or value is None:
                    continue
                resolved, type_name = self._infer_value_type(
                    ctx, value, param_types, param_type_names
                )
                if resolved is not None:
                    info.attr_types[attr] = resolved
                if type_name is not None:
                    info.attr_type_names.setdefault(attr, type_name)

    def _infer_value_type(
        self,
        ctx: ModuleContext,
        value: ast.expr,
        param_types: dict[str, str],
        param_type_names: dict[str, str],
    ) -> tuple[str | None, str | None]:
        """Type of ``self.x = <value>``: constructor call, annotated
        parameter, or either arm of a ``a if cond else b``."""
        if isinstance(value, ast.IfExp):
            for arm in (value.body, value.orelse):
                resolved, name = self._infer_value_type(
                    ctx, arm, param_types, param_type_names
                )
                if resolved is not None or name is not None:
                    return resolved, name
            return None, None
        if isinstance(value, ast.Call):
            resolved = self._resolve_class_expr(ctx, value.func)
            name = self._annotation_tail(ctx, value.func)
            return resolved, name
        if isinstance(value, ast.Name):
            return param_types.get(value.id), param_type_names.get(value.id)
        return None, None

    # ------------------------------------------------------------------
    # Lookup helpers used by the call-graph builder
    # ------------------------------------------------------------------
    def parameter_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Annotated parameter name -> resolved project class id."""
        out: dict[str, str] = {}
        for arg in [*fn.node.args.posonlyargs, *fn.node.args.args, *fn.node.args.kwonlyargs]:
            if arg.annotation is None:
                continue
            resolved = self._resolve_class_expr(fn.ctx, arg.annotation)
            if resolved is not None:
                out[arg.arg] = resolved
        return out

    def parameter_type_names(self, fn: FunctionInfo) -> dict[str, str]:
        """Annotated parameter name -> unqualified type name."""
        out: dict[str, str] = {}
        for arg in [*fn.node.args.posonlyargs, *fn.node.args.args, *fn.node.args.kwonlyargs]:
            if arg.annotation is None:
                continue
            name = self._annotation_tail(fn.ctx, arg.annotation)
            if name is not None:
                out[arg.arg] = name
        return out

    def lookup_method(self, class_id: str, method: str) -> str | None:
        """Resolve a method through the class and its (project) bases."""
        seen: set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.base_ids)
        return None

    def attr_type(self, class_id: str, attr: str) -> str | None:
        """Resolve an attribute's class through the class and its bases."""
        seen: set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.base_ids)
        return None

    def attr_type_name(self, class_id: str, attr: str) -> str | None:
        """Unqualified annotated type name of an attribute, if known."""
        seen: set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_type_names:
                return info.attr_type_names[attr]
            stack.extend(info.base_ids)
        return None


def load_project(contexts: Iterable[ModuleContext]) -> Project:
    """Build the project index from parsed module contexts."""
    return Project(list(contexts))


def parse_paths(files: Sequence[Path]) -> tuple[list[ModuleContext], list[Path]]:
    """Parse files into contexts; unparsable files are returned separately."""
    contexts: list[ModuleContext] = []
    broken: list[Path] = []
    for path in sorted(files):
        try:
            contexts.append(ModuleContext.parse(path.read_text(), path))
        except SyntaxError:
            broken.append(path)
    return contexts, broken
