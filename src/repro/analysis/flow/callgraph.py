"""Call-graph construction and per-function base effects.

For every indexed function this pass produces

* **call edges** — resolved through four mechanisms: module-qualified
  names (the per-module import alias map), ``self`` method dispatch
  (including project base classes), attribute-chain dispatch through
  *annotated receiver types* (``self.tuner.record_execution`` walks
  ``QaaSService.tuner: OnlineIndexTuner`` then looks the method up on
  the class), and lexical scope for closures/nested functions;
* **base effects** — the function's own primitive effects on the
  resource lattice, from the object-name/type tables in
  :mod:`repro.analysis.flow.effects` plus the canonical external calls
  (wall clock, unseeded rng, host fs);
* **base taints** — the determinism-taint subset, with per-site detail.

Each base item carries its source line and a human-readable detail
string so the fixpoint solver can reconstruct the exact leaking call
chain for EFF01/PUR01 messages.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.effects import (
    CLASS_RESOURCES,
    OBJECT_RESOURCES,
    close_effects,
    is_write_verb,
    primitive_call_items,
)
from repro.analysis.flow.project import FunctionInfo, Project, walk_own_body


@dataclass(frozen=True)
class Origin:
    """Where a base effect/taint enters a function."""

    line: int
    detail: str


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    callee: str
    line: int


@dataclass
class FunctionFacts:
    """Base effects, taints and call edges of one function."""

    fn_id: str
    effects: dict[str, Origin] = field(default_factory=dict)
    taints: dict[str, Origin] = field(default_factory=dict)
    calls: list[CallEdge] = field(default_factory=list)

    def add_effect(self, item: str, line: int, detail: str) -> None:
        if item not in self.effects:
            self.effects[item] = Origin(line, detail)

    def add_taint(self, tag: str, line: int, detail: str) -> None:
        if tag not in self.taints:
            self.taints[tag] = Origin(line, detail)


class CallGraphBuilder:
    """Builds :class:`FunctionFacts` for every function in a project."""

    def __init__(self, project: Project) -> None:
        self.project = project

    def build(self) -> dict[str, FunctionFacts]:
        facts: dict[str, FunctionFacts] = {}
        for fn_id in sorted(self.project.functions):
            facts[fn_id] = self._analyze_function(self.project.functions[fn_id])
        return facts

    # ------------------------------------------------------------------
    # Per-function analysis
    # ------------------------------------------------------------------
    def _analyze_function(self, fn: FunctionInfo) -> FunctionFacts:
        facts = FunctionFacts(fn_id=fn.fn_id)
        local_types = dict(self.project.parameter_types(fn))
        local_type_names = dict(self.project.parameter_type_names(fn))
        #: local name -> resources it carries (from assignment chains)
        local_resources: dict[str, frozenset[str]] = {}
        for arg in [
            *fn.node.args.posonlyargs, *fn.node.args.args, *fn.node.args.kwonlyargs,
        ]:
            resources = set()
            if arg.arg in OBJECT_RESOURCES:
                resources.add(OBJECT_RESOURCES[arg.arg])
            type_name = local_type_names.get(arg.arg)
            if type_name in CLASS_RESOURCES:
                resources.add(CLASS_RESOURCES[type_name])
            if resources:
                local_resources[arg.arg] = frozenset(resources)

        # Single forward pass in source order: assignments first extend
        # the local tables, then every node contributes effects/edges.
        for node in sorted(
            walk_own_body(fn.node),
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
        ):
            self._note_local_binding(fn, node, local_types, local_resources)
            self._collect_from_node(fn, node, facts, local_types, local_resources)
        facts.calls.sort(key=lambda e: (e.line, e.callee))
        return facts

    # -- local binding inference ---------------------------------------
    def _note_local_binding(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> None:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
            if isinstance(target, ast.Name):
                resolved = self.project._resolve_class_expr(fn.ctx, node.annotation)
                if resolved is not None:
                    local_types[target.id] = resolved
                tail = self.project._annotation_tail(fn.ctx, node.annotation)
                if tail in CLASS_RESOURCES:
                    local_resources[target.id] = local_resources.get(
                        target.id, frozenset()
                    ) | {CLASS_RESOURCES[tail]}
        elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            # ``for index in self.catalog.indexes.values():`` — the loop
            # variable carries the iterated resource.
            resources = self._expr_resources(
                fn, node.iter, local_types, local_resources
            )
            if resources:
                local_resources[node.target.id] = resources
            return
        if not isinstance(target, ast.Name) or value is None:
            return
        if isinstance(value, ast.Call):
            resolved = self.project._resolve_class_expr(fn.ctx, value.func)
            if resolved is not None:
                local_types[target.id] = resolved
        resources = self._expr_resources(fn, value, local_types, local_resources)
        if resources:
            local_resources[target.id] = resources

    def _expr_resources(
        self,
        fn: FunctionInfo,
        node: ast.expr,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Every resource an expression's attribute chains touch."""
        out: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Attribute, ast.Name)):
                out |= self._chain_resources(fn, sub, local_types, local_resources)
        return frozenset(out)

    def _chain_parts(self, node: ast.expr) -> tuple[str, list[str]] | None:
        """``self.tuner.history.add`` -> ``("self", ["tuner","history","add"])``."""
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        while isinstance(cursor, ast.Subscript):
            # ``self.catalog.indexes[name].partitions`` — the subscript
            # is transparent for resource attribution.
            cursor = cursor.value
            while isinstance(cursor, ast.Attribute):
                chain.append(cursor.attr)
                cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        return cursor.id, list(reversed(chain))

    def _chain_resources(
        self,
        fn: FunctionInfo,
        node: ast.expr,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        parts = self._chain_parts(node)
        if parts is None:
            return frozenset()
        root, chain = parts
        out: set[str] = set()
        out |= local_resources.get(root, frozenset())
        if root in OBJECT_RESOURCES and root not in ("self",):
            out.add(OBJECT_RESOURCES[root])
        # Segment names: self.<tuner>.<history>... — each mapped name
        # counts, and annotated attribute *types* count too.
        class_id = fn.class_id if root == "self" else local_types.get(root)
        for segment in chain:
            if segment in OBJECT_RESOURCES:
                out.add(OBJECT_RESOURCES[segment])
            if class_id is not None:
                type_name = self.project.attr_type_name(class_id, segment)
                if type_name in CLASS_RESOURCES:
                    out.add(CLASS_RESOURCES[type_name])
                class_id = self.project.attr_type(class_id, segment)
        return frozenset(out)

    # -- effect + edge collection --------------------------------------
    def _collect_from_node(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        facts: FunctionFacts,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> None:
        if isinstance(node, ast.Call):
            self._collect_call(fn, node, facts, local_types, local_resources)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                resources = self._store_target_resources(
                    fn, target, local_types, local_resources
                )
                for resource in sorted(resources):
                    facts.add_effect(
                        f"{resource}:w",
                        node.lineno,
                        f"store to {resource}-bearing attribute",
                    )
                    self._add_implied(facts, f"{resource}:w", node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                resources = self._store_target_resources(
                    fn, target, local_types, local_resources
                )
                for resource in sorted(resources):
                    facts.add_effect(
                        f"{resource}:w", node.lineno, f"del on {resource} state"
                    )

    def _store_target_resources(
        self,
        fn: FunctionInfo,
        target: ast.expr,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Resources mutated by an assignment target.

        A plain local name is never a mutation; an attribute store or a
        subscript store on a resource-bearing chain is.
        """
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            inner = target.value if isinstance(target, ast.Subscript) else target
            return self._chain_resources(fn, inner, local_types, local_resources)
        if isinstance(target, (ast.Tuple, ast.List)):
            out: set[str] = set()
            for element in target.elts:
                out |= self._store_target_resources(
                    fn, element, local_types, local_resources
                )
            return frozenset(out)
        return frozenset()

    def _add_implied(self, facts: FunctionFacts, item: str, line: int) -> None:
        for implied in sorted(close_effects({item}) - {item}):
            facts.add_effect(implied, line, f"implied by {item}")

    def _collect_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        facts: FunctionFacts,
        local_types: dict[str, str],
        local_resources: dict[str, frozenset[str]],
    ) -> None:
        # 1. Canonical external primitives (clock / rng / fs).
        target = fn.ctx.call_target(node)
        if target is None and isinstance(node.func, ast.Name):
            target = node.func.id if node.func.id == "open" else None
        if target is not None:
            hit = primitive_call_items(target, node)
            if hit is not None:
                effects, taints, detail = hit
                for item in sorted(effects):
                    facts.add_effect(item, node.lineno, f"{detail} `{target}`")
                for tag in sorted(taints):
                    facts.add_taint(tag, node.lineno, f"{detail} `{target}`")

        # 2. Resource method calls (heuristic polarity by verb).
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            resources = self._chain_resources(
                fn, node.func.value, local_types, local_resources
            )
            for resource in sorted(resources):
                if resource == "rng":
                    polarity = "w"  # every draw advances the stream
                else:
                    polarity = "w" if is_write_verb(method) else "r"
                item = f"{resource}:{polarity}"
                facts.add_effect(
                    item, node.lineno, f"`.{method}()` on {resource}"
                )
                self._add_implied(facts, item, node.lineno)

        # 3. Call edges.
        callee = self._resolve_callee(fn, node, local_types)
        if callee is not None:
            facts.calls.append(CallEdge(callee=callee, line=node.lineno))

    # -- callee resolution ---------------------------------------------
    def _resolve_callee(
        self, fn: FunctionInfo, node: ast.Call, local_types: dict[str, str]
    ) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            # Lexical scope (nested defs + module siblings) first.
            if func.id in fn.local_scope:
                return fn.local_scope[func.id]
            canonical = fn.ctx.aliases.get(func.id)
            if canonical is None and fn.module is not None:
                canonical = f"{fn.module}.{func.id}"
            return self._function_or_init(canonical)
        if isinstance(func, ast.Attribute):
            parts = self._chain_parts(func)
            if parts is None:
                return None
            root, chain = parts
            if not chain:
                return None
            *attrs, method = chain
            # ``self.x.y.meth()`` / ``param.meth()`` via annotated types.
            class_id = fn.class_id if root == "self" else local_types.get(root)
            if class_id is not None:
                for attr in attrs:
                    next_id = self.project.attr_type(class_id, attr)
                    if next_id is None:
                        class_id = None
                        break
                    class_id = next_id
                if class_id is not None:
                    resolved = self.project.lookup_method(class_id, method)
                    if resolved is not None:
                        return resolved
            # ``module.func()`` via the canonical name.
            canonical = fn.ctx.canonical_name(func)
            return self._function_or_init(canonical)
        return None

    def _function_or_init(self, canonical: str | None) -> str | None:
        if canonical is None:
            return None
        if canonical in self.project.functions:
            return canonical
        if canonical in self.project.classes:
            init = self.project.lookup_method(canonical, "__init__")
            if init is not None:
                return init
        # ``from x import Class`` then ``Class.method`` as an unbound
        # attribute — try a method lookup on the prefix.
        if "." in canonical:
            prefix, method = canonical.rsplit(".", 1)
            if prefix in self.project.classes:
                return self.project.lookup_method(prefix, method)
        return None


def build_call_graph(project: Project) -> dict[str, FunctionFacts]:
    """Facts (base effects, taints, edges) for every project function."""
    return CallGraphBuilder(project).build()
