"""The effect lattice and the primitive effect model.

The flow analysis abstracts every function's behaviour to a set of
*effects* on a small, closed vocabulary of shared resources — the state
the paper's online build/delete/kill protocol (Sec. 4) races over, plus
the determinism-relevant host facilities:

====================  ==================================================
resource              what it stands for
====================  ==================================================
``billing``           the money integrals (pricing, quantum bills,
                      MB*s storage cost)
``catalog``           the index catalog: partitions, built flags,
                      checkpoints, cost model
``storage``           the cloud object store (puts/deletes/billing clock)
``history``           the sliding gain window of executed dataflows
``pool``              the shared container pool
``metrics``           counters/journal/trace sinks (commutative appends)
``rng``               the seeded random streams (draws mutate them)
``clock``             the host wall clock (reads are nondeterministic)
``fs``                the host filesystem (WAL, snapshots, replay files)
====================  ==================================================

An effect is a string ``"<resource>:<polarity>"`` with polarity ``r``
(read) or ``w`` (write/mutate); sets of them are plain ``frozenset``
instances so the whole analysis stays hashable and byte-deterministic.

Alongside the footprint effects the model tracks **determinism taints**
— the three ways nondeterminism enters a call chain: an unseeded
``rng`` construction or global-state draw, a wall-``clock`` read, and
host-``fs`` state enumeration (directory listings, globs — the classic
unsorted-``listdir`` bug). Seeded, threaded generators are rng *effects*
but never rng *taints*.

The primitive model below is heuristic by construction (Python has no
effect system); it is deliberately *conservative in names*: any method
call, attribute store or iteration touching an object whose name or
annotated type maps to a resource counts. The mapping tables are the
single place to extend when a new resource-bearing object appears.
"""

from __future__ import annotations

import ast
from typing import Iterable

#: The closed resource vocabulary, sorted (report order).
RESOURCES: tuple[str, ...] = (
    "billing",
    "catalog",
    "clock",
    "fs",
    "history",
    "metrics",
    "pool",
    "rng",
    "storage",
)

#: Determinism-taint tags tracked alongside the footprint effects.
TAINTS: tuple[str, ...] = ("clock", "fs", "rng")

_RESOURCE_SET = frozenset(RESOURCES)
_POLARITIES = ("r", "w")


def effect(resource: str, polarity: str) -> str:
    """The canonical encoding of one effect (``"storage:w"``)."""
    if resource not in _RESOURCE_SET:
        raise ValueError(f"unknown resource {resource!r}; valid: {', '.join(RESOURCES)}")
    if polarity not in _POLARITIES:
        raise ValueError(f"polarity must be 'r' or 'w', got {polarity!r}")
    return f"{resource}:{polarity}"


def parse_effect(item: str) -> tuple[str, str]:
    """Validate and split one ``resource:polarity`` string."""
    resource, sep, polarity = item.partition(":")
    if not sep or resource not in _RESOURCE_SET or polarity not in _POLARITIES:
        raise ValueError(
            f"invalid effect {item!r}; expected <resource>:<r|w> with resource "
            f"in {{{', '.join(RESOURCES)}}}"
        )
    return resource, polarity


def validate_effects(items: Iterable[str]) -> frozenset[str]:
    """Validate a collection of effect strings; returns them as a frozenset."""
    out = set()
    for item in items:
        parse_effect(item)
        out.add(item)
    return frozenset(out)


def writes_of(effects: frozenset[str]) -> frozenset[str]:
    """The resources written by an effect set."""
    return frozenset(e.split(":", 1)[0] for e in effects if e.endswith(":w"))


def reads_of(effects: frozenset[str]) -> frozenset[str]:
    """The resources read by an effect set."""
    return frozenset(e.split(":", 1)[0] for e in effects if e.endswith(":r"))


# ----------------------------------------------------------------------
# Object-name and type based resource attribution
# ----------------------------------------------------------------------
#: Identifier -> resource. Applied to every segment of an attribute
#: chain (``self.tuner.history.add`` hits ``history``) and to bare
#: parameter/local names (``metrics.snapshots.append`` hits ``metrics``).
OBJECT_RESOURCES: dict[str, str] = {
    "billing": "billing",
    "pricing": "billing",
    "catalog": "catalog",
    "storage": "storage",
    "history": "history",
    "pool": "pool",
    "metrics": "metrics",
    "obs": "metrics",
    "journal": "metrics",
    "tracer": "metrics",
    "rng": "rng",
    "injector": "rng",
    "retry_policy": "rng",
    "recovery": "fs",
    "wal": "fs",
}

#: Annotated class name (unqualified) -> resource, for receivers whose
#: *type* rather than name identifies the resource.
CLASS_RESOURCES: dict[str, str] = {
    "PricingModel": "billing",
    "Catalog": "catalog",
    "CloudStorage": "storage",
    "DataflowHistory": "history",
    "ContainerPool": "pool",
    "ServiceMetrics": "metrics",
    "MetricsRegistry": "metrics",
    "Observation": "metrics",
    "RecordingJournal": "metrics",
    "Generator": "rng",
    "FaultInjector": "rng",
    "RetryPolicy": "rng",
    "RecoveryLog": "fs",
    "WriteAheadLog": "fs",
}

#: Method-name prefixes that mutate their receiver. Anything else on a
#: resource object counts as a read — except rng, where *every* method
#: call advances the stream and is therefore a write.
WRITE_VERBS: tuple[str, ...] = (
    "acquire",
    "add",
    "advance",
    "append",
    "charge",
    "clear",
    "commit",
    "dec",
    "delete",
    "drop",
    "emit",
    "extend",
    "fill",
    "inc",
    "insert",
    "invalidate",
    "kill",
    "mark",
    "observe",
    "pop",
    "push",
    "put",
    "record",
    "release",
    "remove",
    "reset",
    "set",
    "update",
    "write",
)

#: Storage mutations also move money: the MB*s integral (Eq. 6) advances
#: with every put/delete, so a storage write implies a billing write.
IMPLIED_EFFECTS: dict[str, frozenset[str]] = {
    "storage:w": frozenset({"billing:w"}),
}


def is_write_verb(method: str) -> bool:
    """Whether a method name reads as a mutation."""
    return method.startswith(WRITE_VERBS)


# ----------------------------------------------------------------------
# Primitive external calls (canonical dotted names, post alias
# resolution — the same canonicalisation DET01 uses)
# ----------------------------------------------------------------------
#: call target -> (effects, taints, human detail)
PRIMITIVE_CALLS: dict[str, tuple[frozenset[str], frozenset[str], str]] = {
    # wall clock
    "time.time": (frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read"),
    "time.time_ns": (frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read"),
    "time.monotonic": (frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read"),
    "time.monotonic_ns": (frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read"),
    "time.perf_counter": (frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read"),
    "time.perf_counter_ns": (
        frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read",
    ),
    "datetime.datetime.now": (
        frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read",
    ),
    "datetime.datetime.utcnow": (
        frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read",
    ),
    "datetime.datetime.today": (
        frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read",
    ),
    "datetime.date.today": (
        frozenset({"clock:r"}), frozenset({"clock"}), "wall-clock read",
    ),
    # host-fs state enumeration (unsorted, ambient)
    "os.listdir": (frozenset({"fs:r"}), frozenset({"fs"}), "directory listing"),
    "os.scandir": (frozenset({"fs:r"}), frozenset({"fs"}), "directory listing"),
    "os.walk": (frozenset({"fs:r"}), frozenset({"fs"}), "directory walk"),
    "glob.glob": (frozenset({"fs:r"}), frozenset({"fs"}), "filesystem glob"),
    "glob.iglob": (frozenset({"fs:r"}), frozenset({"fs"}), "filesystem glob"),
    "os.urandom": (frozenset({"rng:w"}), frozenset({"rng"}), "OS entropy"),
    # os-entropy randomness
    "random.SystemRandom": (
        frozenset({"rng:w"}), frozenset({"rng"}), "OS-entropy randomness",
    ),
}

#: Deterministic fs primitives: effects without taint (reading or
#: writing an explicitly named path replays byte-identically).
FS_CALLS: dict[str, frozenset[str]] = {
    "open": frozenset({"fs:r", "fs:w"}),
    "os.replace": frozenset({"fs:w"}),
    "os.remove": frozenset({"fs:w"}),
    "os.unlink": frozenset({"fs:w"}),
    "os.fsync": frozenset({"fs:w"}),
    "os.makedirs": frozenset({"fs:w"}),
    "os.mkdir": frozenset({"fs:w"}),
    "shutil.copy": frozenset({"fs:r", "fs:w"}),
    "shutil.copyfile": frozenset({"fs:r", "fs:w"}),
    "shutil.rmtree": frozenset({"fs:w"}),
}


def _call_has_arguments(node: ast.Call) -> bool:
    return bool(node.args or node.keywords)


def primitive_call_items(
    target: str, node: ast.Call
) -> tuple[frozenset[str], frozenset[str], str] | None:
    """Effects/taints of a canonical external call target, if any.

    Mirrors DET01's classification: seeded numpy constructors are
    effect-free (constructing a generator is not a draw); the unseeded
    forms and every global-state draw are rng taints.
    """
    hit = PRIMITIVE_CALLS.get(target)
    if hit is not None:
        return hit
    fs = FS_CALLS.get(target)
    if fs is not None:
        return fs, frozenset(), "filesystem access"
    if target.startswith("random."):
        # random.Random(seed) is fine; everything else on the module is
        # the global stream (a draw: rng write + taint).
        if target == "random.Random":
            if _call_has_arguments(node):
                return None
            return frozenset({"rng:w"}), frozenset({"rng"}), "unseeded random.Random()"
        return (
            frozenset({"rng:w"}),
            frozenset({"rng"}),
            "global random-state draw",
        )
    if target.startswith("numpy.random."):
        tail = target.removeprefix("numpy.random.")
        if tail in ("default_rng", "RandomState"):
            if _call_has_arguments(node):
                return None
            return (
                frozenset({"rng:w"}),
                frozenset({"rng"}),
                f"unseeded numpy.random.{tail}()",
            )
        if tail in (
            "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
            "MT19937", "Philox", "SFC64",
        ):
            return None
        return (
            frozenset({"rng:w"}),
            frozenset({"rng"}),
            "numpy global random-state draw",
        )
    return None


def close_effects(effects: set[str]) -> frozenset[str]:
    """Apply the implied-effect closure (storage:w => billing:w)."""
    out = set(effects)
    for item in list(out):
        out |= IMPLIED_EFFECTS.get(item, frozenset())
    return frozenset(out)
