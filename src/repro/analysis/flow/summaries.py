"""Fixpoint effect summaries over the project call graph.

A function's *transitive* summary is its own base effects/taints plus
the union of its callees' summaries. Both domains are finite powersets
(9 resources x 2 polarities; 3 taint tags) and the transfer function is
a monotone union, so the worklist iteration reaches a fixpoint in at
most ``|items| * |functions|`` steps — recursion and cycles included.

Provenance is tracked alongside: for every (function, item) the solver
remembers *how the item first arrived* — a local primitive site or the
call edge that imported it — which :func:`explain_chain` unwinds into
the ``f -> g -> h (file:line: detail)`` chains quoted by EFF01/PUR01
diagnostics. First-arrival is resolved in deterministic (sorted)
order, so the quoted chain is byte-stable across runs and hash seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import FunctionFacts, Origin


@dataclass
class Summary:
    """Transitive effects/taints of one function."""

    fn_id: str
    effects: frozenset[str] = frozenset()
    taints: frozenset[str] = frozenset()
    #: item -> ("local", Origin) or ("call", callee_id, line)
    provenance: dict[str, tuple[object, ...]] = field(default_factory=dict)


def solve(facts: dict[str, FunctionFacts]) -> dict[str, Summary]:
    """Solve all function summaries to a fixpoint."""
    summaries: dict[str, Summary] = {}
    callers: dict[str, list[str]] = {fn_id: [] for fn_id in facts}
    for fn_id in sorted(facts):
        fact = facts[fn_id]
        summary = Summary(fn_id=fn_id)
        items: set[str] = set()
        for item in sorted(fact.effects):
            items.add(f"eff:{item}")
            summary.provenance[f"eff:{item}"] = ("local", fact.effects[item])
        for tag in sorted(fact.taints):
            items.add(f"taint:{tag}")
            summary.provenance[f"taint:{tag}"] = ("local", fact.taints[tag])
        summary.effects = frozenset(sorted(fact.effects))
        summary.taints = frozenset(sorted(fact.taints))
        summaries[fn_id] = summary
        for edge in fact.calls:
            if edge.callee in callers:
                callers[edge.callee].append(fn_id)

    worklist = sorted(facts)
    queued = set(worklist)
    while worklist:
        fn_id = worklist.pop(0)
        queued.discard(fn_id)
        summary = summaries[fn_id]
        changed = False
        for edge in facts[fn_id].calls:
            callee = summaries.get(edge.callee)
            if callee is None:
                continue
            new_effects = callee.effects - summary.effects
            new_taints = callee.taints - summary.taints
            if new_effects:
                summary.effects = summary.effects | new_effects
                for item in sorted(new_effects):
                    summary.provenance[f"eff:{item}"] = (
                        "call", edge.callee, edge.line,
                    )
                changed = True
            if new_taints:
                summary.taints = summary.taints | new_taints
                for tag in sorted(new_taints):
                    summary.provenance[f"taint:{tag}"] = (
                        "call", edge.callee, edge.line,
                    )
                changed = True
        if changed:
            for caller in sorted(set(callers.get(fn_id, []))):
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return summaries


def explain_chain(
    summaries: dict[str, Summary], fn_id: str, item: str, kind: str = "eff"
) -> str:
    """The call chain through which ``item`` reaches ``fn_id``.

    Renders ``a -> b -> c (line N: detail)`` with fully qualified
    function ids; cycles terminate at the first repeat.
    """
    key = f"{kind}:{item}"
    chain: list[str] = []
    seen: set[str] = set()
    current = fn_id
    while True:
        if current in seen:
            chain.append(f"{current} (recursive)")
            break
        seen.add(current)
        summary = summaries.get(current)
        if summary is None or key not in summary.provenance:
            chain.append(current)
            break
        record = summary.provenance[key]
        if record[0] == "local":
            origin = record[1]
            assert isinstance(origin, Origin)
            chain.append(f"{current} (line {origin.line}: {origin.detail})")
            break
        _, callee, line = record
        chain.append(f"{current} (line {line})")
        current = str(callee)
    return " -> ".join(chain)
