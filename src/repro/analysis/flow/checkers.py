"""The whole-program rules: EFF01, PUR01, EFF02.

Each rule yields ``(Diagnostic, fingerprint)`` pairs; fingerprints are
line-independent identities consumed by the baseline ratchet.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow import FlowAnalysis
from repro.analysis.flow.actions import ActionSite
from repro.analysis.flow.baseline import fingerprint
from repro.analysis.flow.effects import writes_of
from repro.analysis.flow.summaries import explain_chain
from repro.analysis.registry import register_project

Finding = tuple[Diagnostic, str]


# ----------------------------------------------------------------------
# EFF01 — declared Action footprints must cover inferred effects
# ----------------------------------------------------------------------
@register_project(
    "EFF01",
    "explore Action footprints must be sound supersets of the generator's "
    "inferred transitive effects",
)
def check_footprint_soundness(analysis: FlowAnalysis) -> Iterator[Finding]:
    """EFF01: every Action's declared footprint covers its inferred effects."""
    for error in analysis.actions.errors:
        yield (
            Diagnostic(
                path=error.path,
                line=error.line,
                col=1,
                code="EFF01",
                message=error.message,
            ),
            fingerprint("EFF01", error.module, "ACTION_EFFECTS", error.message),
        )
    for site in analysis.actions.sites:
        yield from _check_site_footprint(analysis, site)


def _check_site_footprint(
    analysis: FlowAnalysis, site: ActionSite
) -> Iterator[Finding]:
    if site.gen_fn is None:
        yield (
            _site_diag(
                site,
                f"Action kind {site.kind!r}: the gen= generator cannot be "
                "resolved statically, so its footprint cannot be proved sound; "
                "construct it via a direct method/function call",
            ),
            fingerprint("EFF01", site.module, site.kind, "unresolved-generator"),
        )
        return
    declared = analysis.actions.declared_for(site)
    if declared is None:
        yield (
            _site_diag(
                site,
                f"Action kind {site.kind!r} has no declared footprint: add an "
                f"ACTION_EFFECTS[{site.kind!r}] entry in module {site.module} "
                "covering the generator's effects",
            ),
            fingerprint("EFF01", site.module, site.kind, "undeclared"),
        )
        return
    summary = analysis.summaries.get(site.gen_fn)
    inferred = summary.effects if summary is not None else frozenset()
    for item in sorted(inferred - declared):
        chain = explain_chain(analysis.summaries, site.gen_fn, item)
        yield (
            _site_diag(
                site,
                f"Action kind {site.kind!r} under-declares its footprint: "
                f"inferred effect '{item}' is missing from "
                f"ACTION_EFFECTS[{site.kind!r}]; leaking call chain: {chain}",
            ),
            fingerprint("EFF01", site.module, site.kind, item),
        )


def _site_diag(site: ActionSite, message: str) -> Diagnostic:
    return Diagnostic(
        path=site.path, line=site.line, col=site.col, code="EFF01", message=message
    )


# ----------------------------------------------------------------------
# PUR01 — no nondeterminism may reach the deterministic core
# ----------------------------------------------------------------------
#: Module prefixes whose behaviour must replay byte-identically: the
#: simulator (cost model), the tuner's gain machinery, the schedulers,
#: and WAL-record construction. An unseeded rng draw, wall-clock read
#: or host-fs enumeration anywhere in their call graphs breaks replay.
SINK_PREFIXES: tuple[str, ...] = (
    "repro.core.simulator",
    "repro.recovery.wal",
    "repro.scheduling",
    "repro.tuning.gain",
    "repro.tuning.incremental",
)


def _in_sinks(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SINK_PREFIXES
    )


@register_project(
    "PUR01",
    "unseeded rng / wall-clock / host-fs nondeterminism must not reach the "
    "simulator, gain model, schedulers or WAL construction",
)
def check_determinism_taint(analysis: FlowAnalysis) -> Iterator[Finding]:
    """PUR01: no nondeterminism taint may enter a replay-critical sink."""
    for fn_id in sorted(analysis.summaries):
        fn = analysis.project.functions.get(fn_id)
        if fn is None or not _in_sinks(fn.module):
            continue
        summary = analysis.summaries[fn_id]
        for tag in sorted(summary.taints):
            record = summary.provenance.get(f"taint:{tag}")
            if record is not None and record[0] == "call":
                callee = analysis.project.functions.get(str(record[1]))
                if callee is not None and _in_sinks(callee.module):
                    # The taint entered the sink region at the callee;
                    # one finding per entry point, not per caller.
                    continue
            chain = explain_chain(analysis.summaries, fn_id, tag, kind="taint")
            yield (
                Diagnostic(
                    path=str(fn.ctx.path),
                    line=fn.node.lineno,
                    col=fn.node.col_offset + 1,
                    code="PUR01",
                    message=(
                        f"determinism taint '{tag}' reaches {fn_id}, which must "
                        f"replay byte-identically; taint chain: {chain}"
                    ),
                ),
                fingerprint("PUR01", fn.module, fn.qualname, tag),
            )


# ----------------------------------------------------------------------
# EFF02 — commutativity audit of the oracle's independence relation
# ----------------------------------------------------------------------
#: Resources whose shared structure makes "disjoint keys => commutes" a
#: claim worth auditing. metrics is append-only commutative by design;
#: billing advances with the stamped storage clock; fs writes are the
#: WAL's own ordered appends.
AUDITED_RESOURCES: tuple[str, ...] = ("catalog", "history", "pool", "storage")


@register_project(
    "EFF02",
    "actions whose generators write multiple shared resources while claiming "
    "a keyed (non-global) footprint need a commutativity justification",
)
def check_commutativity(analysis: FlowAnalysis) -> Iterator[Finding]:
    """EFF02: keyed-footprint actions writing several shared resources."""
    for site in analysis.actions.sites:
        if site.resources_kind == "all" or site.gen_fn is None:
            continue
        summary = analysis.summaries.get(site.gen_fn)
        if summary is None:
            continue
        shared = sorted(writes_of(summary.effects) & set(AUDITED_RESOURCES))
        if len(shared) < 2:
            continue
        yield (
            _eff02_diag(site, shared),
            fingerprint("EFF02", site.module, site.kind, "+".join(shared)),
        )


def _eff02_diag(site: ActionSite, shared: Iterable[str]) -> Diagnostic:
    resources = ", ".join(shared)
    return Diagnostic(
        path=site.path,
        line=site.line,
        col=site.col,
        code="EFF02",
        message=(
            f"Action kind {site.kind!r} claims a {site.resources_kind} resource "
            f"footprint but its generator writes {{{resources}}}: the "
            "InterleavingOracle treats two instances with disjoint keys as "
            "independent, so these writes must commute (justify in the "
            "baseline or widen the footprint to ALL_RESOURCES)"
        ),
    )
