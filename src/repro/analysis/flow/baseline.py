"""Baseline ratchet for whole-program findings.

Interprocedural rules land on a codebase with pre-existing, *audited*
findings (e.g. EFF02 flags the build action's multi-resource write set,
which is justified by its per-index resource keys). Those are enumerated
in a checked-in baseline file; the gate then **ratchets**:

* a finding whose fingerprint is in the baseline is reported as
  ``baselined`` (informational) and does not fail the run;
* a finding *not* in the baseline is new — it fails the run;
* a baseline entry that no longer matches any finding is **stale** — it
  also fails the run, so the enumerated debt can only shrink.

Fingerprints are line-independent (``CODE|module|anchor|key``): moving
code around does not churn the baseline, while genuinely new leaks
always miss it. ``repro-lint --flow --update-baseline`` rewrites the
file from the current findings, preserving justifications for entries
that survive.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE_VERSION = 1

#: Default justification for entries written by ``--update-baseline``
#: that had none before. Meant to be replaced by a human in review.
UNREVIEWED = "UNREVIEWED: justify or fix, then update this entry"


def fingerprint(code: str, module: str, anchor: str, key: str) -> str:
    """The stable identity of one finding (no line numbers)."""
    return f"{code}|{module}|{anchor}|{key}"


def load_baseline(path: str | Path) -> dict[str, str]:
    """Load ``fingerprint -> justification`` from a baseline file.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (the gate must not silently pass on a bad ratchet).
    """
    file = Path(path)
    if not file.exists():
        return {}
    try:
        data = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{file}: baseline is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(f"{file}: baseline must be an object with an 'entries' list")
    entries: dict[str, str] = {}
    for item in data["entries"]:
        if (
            not isinstance(item, dict)
            or not isinstance(item.get("fingerprint"), str)
            or not isinstance(item.get("justification"), str)
        ):
            raise ValueError(
                f"{file}: each baseline entry needs string 'fingerprint' "
                "and 'justification' fields"
            )
        if item["fingerprint"] in entries:
            raise ValueError(
                f"{file}: duplicate baseline fingerprint {item['fingerprint']!r}"
            )
        entries[item["fingerprint"]] = item["justification"]
    return entries


def split_findings(
    fingerprints: list[str], baseline: dict[str, str]
) -> tuple[list[int], list[str], list[str]]:
    """Partition findings against a baseline.

    Returns ``(new_indices, baselined, stale)``: positions of findings
    not covered by the baseline, the sorted covered fingerprints, and
    the sorted baseline entries that matched nothing.
    """
    present = set(fingerprints)
    new_indices = [
        index for index, item in enumerate(fingerprints) if item not in baseline
    ]
    baselined = sorted(present & baseline.keys())
    stale = sorted(set(baseline) - present)
    return new_indices, baselined, stale


def render_baseline(
    fingerprints: list[str], previous: dict[str, str]
) -> str:
    """The baseline file content covering exactly ``fingerprints``.

    Justifications from ``previous`` are preserved; new entries get the
    :data:`UNREVIEWED` placeholder. Output is byte-deterministic.
    """
    entries = [
        {"fingerprint": item, "justification": previous.get(item, UNREVIEWED)}
        for item in sorted(set(fingerprints))
    ]
    data = {
        "version": BASELINE_VERSION,
        "description": (
            "Enumerated pre-existing flow-analysis findings. The CI gate "
            "ratchets against this file: new findings and stale entries "
            "both fail. Regenerate with: repro-lint src/repro --flow "
            "--update-baseline"
        ),
        "entries": entries,
    }
    return json.dumps(data, indent=2, sort_keys=True) + "\n"
