"""Whole-program effect inference over the repro source tree.

The flow layer proves two properties the per-module lint rules cannot
see: that every explore ``Action``'s *declared* footprint is a sound
superset of the effects its generator transitively performs (EFF01),
and that no unseeded nondeterminism reaches the deterministic core
(PUR01) — plus a commutativity audit of the interleaving oracle's
independence assumption (EFF02).

Pipeline::

    contexts --Project--> call graph --fixpoint--> summaries
                    \\--> ActionIndex (sites + declared footprints)
                                  \\--> project rules -> findings

Everything downstream of ``analyze`` is pure and deterministically
ordered, so the JSON report and the baseline file are byte-stable
across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.flow.actions import ActionIndex, extract_actions
from repro.analysis.flow.callgraph import FunctionFacts, build_call_graph
from repro.analysis.flow.project import Project
from repro.analysis.flow.summaries import Summary, solve
from repro.analysis.registry import all_project_rules


@dataclass
class FlowAnalysis:
    """The complete whole-program analysis state."""

    project: Project
    facts: dict[str, FunctionFacts]
    summaries: dict[str, Summary]
    actions: ActionIndex


@dataclass(frozen=True)
class FlowFinding:
    """One project-rule finding with its ratchet fingerprint."""

    diagnostic: Diagnostic
    fingerprint: str


def analyze(contexts: list[ModuleContext]) -> FlowAnalysis:
    """Run the full pipeline over already-parsed module contexts."""
    project = Project(contexts)
    facts = build_call_graph(project)
    summaries = solve(facts)
    actions = extract_actions(project)
    return FlowAnalysis(
        project=project, facts=facts, summaries=summaries, actions=actions
    )


def run_project_rules(
    analysis: FlowAnalysis, select: frozenset[str] | None = None
) -> list[FlowFinding]:
    """Run every (selected) registered project rule, sorted output."""
    import repro.analysis.flow.checkers  # noqa: F401  (registers the rules)

    findings: list[FlowFinding] = []
    for rule in all_project_rules():
        if select is not None and rule.code not in select:
            continue
        for diagnostic, fp in rule.checker(analysis):
            findings.append(FlowFinding(diagnostic=diagnostic, fingerprint=fp))
    findings.sort(
        key=lambda f: (
            f.diagnostic.path,
            f.diagnostic.line,
            f.diagnostic.col,
            f.diagnostic.code,
            f.fingerprint,
        )
    )
    return findings


def action_report(analysis: FlowAnalysis) -> list[dict[str, object]]:
    """Per-action inferred vs declared effects (the report artifact)."""
    rows: list[dict[str, object]] = []
    for site in analysis.actions.sites:
        summary = (
            analysis.summaries.get(site.gen_fn) if site.gen_fn is not None else None
        )
        declared = analysis.actions.declared_for(site)
        rows.append(
            {
                "kind": site.kind,
                "module": site.module,
                "generator": site.gen_fn,
                "resources": site.resources_kind,
                "stamped": site.has_stamp,
                "declared": sorted(declared) if declared is not None else None,
                "inferred": sorted(summary.effects) if summary is not None else None,
                "taints": sorted(summary.taints) if summary is not None else None,
            }
        )
    return rows
