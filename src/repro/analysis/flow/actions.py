"""Extraction of explore-``Action`` registrations and declared footprints.

Two statically recognised shapes tie the flow analysis to the runtime
exploration layer:

* **Action sites** — every call to
  :class:`repro.explore.hooks.Action` (resolved through the import
  alias map, so renamed imports still count). The site records the
  action ``kind``, the generator function the ``gen=`` argument calls,
  and the *shape* of the runtime ``resources`` footprint:

  - ``all``            — contains :data:`ALL_RESOURCES` (``"*"``):
                         commutes with nothing, exempt from EFF02;
  - ``parameterized``  — f-string entries (``f"idx:{name}"``): two
                         instances *can* have disjoint footprints;
  - ``fixed``          — constant strings only;
  - ``opaque``         — anything else (conservatively treated as
                         parameterized, i.e. auditable).

* **Declared footprints** — a module-level ``ACTION_EFFECTS`` mapping
  of action kind to effect strings (``"catalog:w"``). Values may be
  literal sets/tuples or a validating call such as
  :func:`repro.explore.hooks.declared_effects` — any constant strings
  inside the value expression are collected. EFF01 checks each kind's
  declaration against the inferred transitive effects of its
  generator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.context import ModuleContext
from repro.analysis.flow.callgraph import CallGraphBuilder
from repro.analysis.flow.effects import parse_effect
from repro.analysis.flow.project import FunctionInfo, Project, walk_own_body

ACTION_CLASS = "repro.explore.hooks.Action"
ALL_RESOURCES_NAME = "repro.explore.hooks.ALL_RESOURCES"

#: The magic module-level declaration name EFF01 looks for.
DECLARATION_NAME = "ACTION_EFFECTS"


@dataclass(frozen=True)
class ActionSite:
    """One ``Action(...)`` construction site."""

    module: str
    path: str
    line: int
    col: int
    kind: str
    gen_fn: str | None  #: resolved generator function id, if any
    resources_kind: str  #: all | parameterized | fixed | opaque
    has_stamp: bool
    enclosing: str  #: qualified id of the function containing the site


@dataclass
class DeclarationError:
    """A malformed entry inside an ``ACTION_EFFECTS`` declaration."""

    module: str
    path: str
    line: int
    message: str


@dataclass
class ModuleDeclarations:
    """Declared footprints of one module (kind -> effect set)."""

    module: str
    path: str
    line: int
    by_kind: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass
class ActionIndex:
    """All action sites and declarations in a project."""

    sites: list[ActionSite] = field(default_factory=list)
    declarations: dict[str, ModuleDeclarations] = field(default_factory=dict)
    errors: list[DeclarationError] = field(default_factory=list)

    def declared_for(self, site: ActionSite) -> frozenset[str] | None:
        """The declared footprint covering a site (same-module lookup)."""
        decl = self.declarations.get(site.module)
        if decl is None:
            return None
        return decl.by_kind.get(site.kind)


def extract_actions(project: Project) -> ActionIndex:
    """Find every Action site and ACTION_EFFECTS declaration."""
    index = ActionIndex()
    builder = CallGraphBuilder(project)
    for module in sorted(project.modules):
        ctx = project.modules[module]
        _extract_declarations(ctx, index)
    for fn_id in sorted(project.functions):
        fn = project.functions[fn_id]
        for node in walk_own_body(fn.node):
            if isinstance(node, ast.Call) and _is_action_call(fn.ctx, node):
                index.sites.append(_site_from_call(builder, fn, node))
    index.sites.sort(key=lambda s: (s.module, s.line, s.col))
    return index


def _is_action_call(ctx: ModuleContext, node: ast.Call) -> bool:
    return ctx.call_target(node) == ACTION_CLASS


_POSITIONAL = ("key", "kind", "gen", "resources", "entry", "stamp")


def _arg(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    position = _POSITIONAL.index(name)
    if position < len(node.args):
        return node.args[position]
    return None


def _site_from_call(
    builder: CallGraphBuilder, fn: FunctionInfo, node: ast.Call
) -> ActionSite:
    kind_expr = _arg(node, "kind")
    kind = (
        kind_expr.value
        if isinstance(kind_expr, ast.Constant) and isinstance(kind_expr.value, str)
        else "<unknown>"
    )
    gen_fn: str | None = None
    gen_expr = _arg(node, "gen")
    if isinstance(gen_expr, ast.Call):
        local_types = builder.project.parameter_types(fn)
        gen_fn = builder._resolve_callee(fn, gen_expr, local_types)
    stamp_expr = _arg(node, "stamp")
    has_stamp = stamp_expr is not None and not (
        isinstance(stamp_expr, ast.Constant) and stamp_expr.value is None
    )
    return ActionSite(
        module=fn.module,
        path=str(fn.ctx.path),
        line=node.lineno,
        col=node.col_offset + 1,
        kind=kind,
        gen_fn=gen_fn,
        resources_kind=_classify_resources(fn.ctx, _arg(node, "resources")),
        has_stamp=has_stamp,
        enclosing=fn.fn_id,
    )


def _classify_resources(ctx: ModuleContext, expr: ast.expr | None) -> str:
    if expr is None:
        return "opaque"
    all_constants = True
    saw_joined = False
    for sub in ast.walk(expr):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            if ctx.canonical_name(sub) == ALL_RESOURCES_NAME:
                return "all"
        if isinstance(sub, ast.JoinedStr):
            saw_joined = True
        if isinstance(
            sub, (ast.Name, ast.Attribute, ast.comprehension, ast.GeneratorExp)
        ):
            all_constants = False
    if saw_joined:
        return "parameterized"
    if all_constants:
        return "fixed"
    return "opaque"


def _extract_declarations(ctx: ModuleContext, index: ActionIndex) -> None:
    assert ctx.module is not None
    for node in ctx.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            not isinstance(target, ast.Name)
            or target.id != DECLARATION_NAME
            or value is None
        ):
            continue
        if not isinstance(value, ast.Dict):
            index.errors.append(
                DeclarationError(
                    module=ctx.module,
                    path=str(ctx.path),
                    line=node.lineno,
                    message=f"{DECLARATION_NAME} must be a literal dict",
                )
            )
            continue
        decl = ModuleDeclarations(
            module=ctx.module, path=str(ctx.path), line=node.lineno
        )
        for key_expr, value_expr in zip(value.keys, value.values):
            if not isinstance(key_expr, ast.Constant) or not isinstance(
                key_expr.value, str
            ):
                index.errors.append(
                    DeclarationError(
                        module=ctx.module,
                        path=str(ctx.path),
                        line=getattr(key_expr, "lineno", node.lineno),
                        message=f"{DECLARATION_NAME} keys must be string literals",
                    )
                )
                continue
            kind = key_expr.value
            effects: set[str] = set()
            bad: list[str] = []
            for sub in ast.walk(value_expr):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    try:
                        parse_effect(sub.value)
                    except ValueError:
                        bad.append(sub.value)
                    else:
                        effects.add(sub.value)
            for item in sorted(bad):
                index.errors.append(
                    DeclarationError(
                        module=ctx.module,
                        path=str(ctx.path),
                        line=getattr(value_expr, "lineno", node.lineno),
                        message=(
                            f"{DECLARATION_NAME}[{kind!r}] contains invalid "
                            f"effect {item!r} (expected <resource>:<r|w>)"
                        ),
                    )
                )
            decl.by_kind[kind] = frozenset(effects)
        index.declarations[ctx.module] = decl
