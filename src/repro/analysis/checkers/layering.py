"""LAY01 — package layering stays an acyclic DAG.

The package layers, bottom to top::

    cloud, data          (substrate: pricing, tables, indexes)
    dataflow, engine     (workload + measurement)
    scheduling, interleave
    tuning
    core                 (service, simulator — the composition root)

Lower layers must never import upper ones: ``data``/``cloud`` must not
import ``scheduling``/``tuning``/``core``, and ``engine`` (the real
B-tree/heap measurement layer) must not import ``core``. An upward
import closes a package cycle, and Python package cycles fail at import
time in whichever module loads second — typically in production, not in
the test that imported things in the lucky order.

Carve-outs — dependency-free leaves that any layer may import because
they cannot participate in a cycle:

* :mod:`repro.core.numeric` (pure ``math``), the shared home of the
  NUM01 tolerance helpers;
* :mod:`repro.obs` (pure stdlib), the observability sinks — tracer,
  metrics registry, journal. It sits *below* every instrumented layer,
  and its own imports are checked in the reverse direction: ``repro.obs``
  must not import any other ``repro`` package, which is what keeps the
  carve-out sound.
* :mod:`repro.recovery.hooks` (pure stdlib), the crash-point barriers
  and the no-op :class:`RecoveryLog` interface the instrumented layers
  call. Only the *hooks* module is a leaf: the rest of
  :mod:`repro.recovery` (WAL, snapshots, resume driver, chaos harness)
  sits *above* ``repro.core`` — it may import core/obs but is banned
  from the lower layers' import lists like any other upper layer.
* :mod:`repro.explore.hooks` (pure stdlib), the interleaving yield
  points and the :class:`Epoch` offer protocol. Exactly like
  ``repro.recovery.hooks``: only the hooks module is a leaf; the rest
  of :mod:`repro.explore` (controller, strategies, engine, replay) sits
  above ``repro.core``.

The leaves are additionally checked against *each other*: a pure leaf
must not import another leaf — and in particular no leaf may import
``repro.explore`` (not even its hooks module). Yield points are markers
*inside* instrumented upper-layer code; a leaf that acquired one would
re-enter the scheduler from below the layers it synchronises, so the
leaf-ban check bypasses the ``ALLOWED_LEAVES`` exemption entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

#: Package prefix -> package prefixes it must not import. Order matters:
#: a module is checked against its *first* matching prefix, so the
#: ``repro.recovery.hooks`` entry must precede ``repro.recovery``.
FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro.data": ("repro.scheduling", "repro.tuning", "repro.core",
                   "repro.recovery", "repro.explore"),
    "repro.cloud": ("repro.scheduling", "repro.tuning", "repro.core",
                    "repro.recovery", "repro.explore"),
    "repro.engine": ("repro.core", "repro.scheduling", "repro.tuning",
                     "repro.recovery", "repro.explore"),
    # repro.recovery.hooks is importable from everywhere (ALLOWED_LEAVES),
    # so like repro.obs it must itself stay a pure-stdlib leaf.
    "repro.recovery.hooks": (
        "repro.analysis",
        "repro.cloud",
        "repro.core",
        "repro.data",
        "repro.dataflow",
        "repro.engine",
        "repro.explore",
        "repro.faults",
        "repro.interleave",
        "repro.obs",
        "repro.perf",
        "repro.scheduling",
        "repro.tuning",
    ),
    # The heavy recovery machinery sits at the top of the DAG (it may
    # import core/obs/interleave), but never the analysis gate or the
    # measurement engine.
    "repro.recovery": ("repro.analysis", "repro.engine"),
    # repro.explore.hooks is importable from everywhere (ALLOWED_LEAVES),
    # so like repro.obs it must itself stay a pure-stdlib leaf.
    "repro.explore.hooks": (
        "repro.analysis",
        "repro.cloud",
        "repro.core",
        "repro.data",
        "repro.dataflow",
        "repro.engine",
        "repro.faults",
        "repro.interleave",
        "repro.obs",
        "repro.perf",
        "repro.recovery",
        "repro.scheduling",
        "repro.tuning",
    ),
    # The exploration machinery (controller, strategies, engine, replay)
    # sits at the top of the DAG next to repro.recovery: it may import
    # core/recovery/obs, but never the analysis gate or the measurement
    # engine.
    "repro.explore": ("repro.analysis", "repro.engine"),
    # The multi-tenant front end sits at the top of the DAG next to
    # repro.recovery/repro.explore: it builds services and guards over
    # core/faults/obs, but never the analysis gate or the measurement
    # engine.
    "repro.tenancy": ("repro.analysis", "repro.engine"),
    # repro.obs is importable from everywhere (ALLOWED_LEAVES), so it
    # must itself import nothing above it — otherwise the carve-out
    # would smuggle a cycle back in.
    "repro.obs": (
        "repro.analysis",
        "repro.cloud",
        "repro.core",
        "repro.data",
        "repro.dataflow",
        "repro.engine",
        "repro.explore",
        "repro.faults",
        "repro.interleave",
        "repro.recovery",
        "repro.scheduling",
        "repro.tuning",
    ),
    # repro.perf (memo tables + cache stats) is likewise importable from
    # every hot-path layer, so it too must stay a pure-stdlib leaf.
    "repro.perf": (
        "repro.analysis",
        "repro.cloud",
        "repro.core",
        "repro.data",
        "repro.dataflow",
        "repro.engine",
        "repro.explore",
        "repro.faults",
        "repro.interleave",
        "repro.obs",
        "repro.recovery",
        "repro.scheduling",
        "repro.tuning",
    ),
}

#: Dependency-free leaf modules importable from any layer.
ALLOWED_LEAVES: tuple[str, ...] = (
    "repro.core.numeric",
    "repro.explore.hooks",
    "repro.obs",
    "repro.perf",
    "repro.recovery.hooks",
)


def _within(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _is_allowed(target: str) -> bool:
    return any(_within(target, leaf) for leaf in ALLOWED_LEAVES)


def _violated_prefix(target: str, forbidden: tuple[str, ...]) -> str | None:
    if _is_allowed(target):
        return None
    for prefix in forbidden:
        if _within(target, prefix):
            return prefix
    return None


def _import_targets(node: ast.Import | ast.ImportFrom, ctx: ModuleContext) -> list[str]:
    """Most-specific module paths an import statement pulls in."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    base = ctx._resolve_from_base(node)
    if base is None:
        return []
    # ``from repro.core import numeric`` imports repro.core.numeric, not
    # repro.core itself — resolve to the most specific path so the
    # ALLOWED_LEAVES carve-out sees it.
    return [f"{base}.{alias.name}" if alias.name != "*" else base for alias in node.names]


def _leaf_of(module: str) -> str | None:
    for leaf in ALLOWED_LEAVES:
        if _within(module, leaf):
            return leaf
    return None


def _leaf_ban_target(module_leaf: str, target: str) -> str | None:
    """A leaf module's import target that breaks the leaf contract.

    Runs *before* the ``ALLOWED_LEAVES`` exemption: a pure leaf must not
    import another leaf (leaf-to-leaf edges would let the carve-out
    smuggle a cycle back in), and no leaf may import ``repro.explore``
    at all — yield points belong to instrumented upper-layer code, never
    to the substrate the scheduler synchronises over.
    """
    if _within(target, "repro.explore") and module_leaf != "repro.explore.hooks":
        return "repro.explore"
    target_leaf = _leaf_of(target)
    if target_leaf is not None and target_leaf != module_leaf:
        return target_leaf
    return None


@register("LAY01", "package layering: no upward imports (data/cloud/engine)")
def check_layering(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag upward imports from the data/cloud/engine layers."""
    module = ctx.module
    if module is None:
        return
    module_leaf = _leaf_of(module)
    if module_leaf is not None:
        yield from _check_leaf_bans(ctx, module, module_leaf)
    forbidden: tuple[str, ...] | None = None
    for prefix, banned in FORBIDDEN.items():
        if _within(module, prefix):
            forbidden = banned
            break
    if forbidden is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in _import_targets(node, ctx):
            hit = _violated_prefix(target, forbidden)
            if hit is None and isinstance(node, ast.ImportFrom):
                # The names may not be submodules (`from repro.core import
                # QaaSService` still imports repro.core) — check the base too.
                base = ctx._resolve_from_base(node)
                if base is not None and not _is_allowed(target):
                    hit = _violated_prefix(base, forbidden)
            if hit is not None:
                yield Diagnostic(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code="LAY01",
                    message=(
                        f"`{module}` (layer `{_layer_of(module)}`) must not import "
                        f"`{target}`: `{_layer_of(module)}` -> `{hit}` is an upward "
                        "edge that makes the package DAG cyclic"
                    ),
                )
                break  # one diagnostic per import statement


def _check_leaf_bans(
    ctx: ModuleContext, module: str, module_leaf: str
) -> Iterator[Diagnostic]:
    """The leaf-to-leaf pass (bypasses the ``ALLOWED_LEAVES`` exemption)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        targets = list(_import_targets(node, ctx))
        if isinstance(node, ast.ImportFrom):
            base = ctx._resolve_from_base(node)
            if base is not None:
                targets.append(base)
        for target in targets:
            hit = _leaf_ban_target(module_leaf, target)
            if hit is not None:
                yield Diagnostic(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code="LAY01",
                    message=(
                        f"`{module}` is a pure leaf (`{module_leaf}`) and "
                        f"must not import `{target}`: leaf modules may not "
                        f"import `{hit}` — yield points and other leaf "
                        "facilities are reserved for the instrumented "
                        "layers above"
                    ),
                )
                break  # one diagnostic per import statement


def _layer_of(module: str) -> str:
    for prefix in FORBIDDEN:
        if _within(module, prefix):
            return prefix
    return module
