"""SIM01 — dataclasses used as dict keys or set members must be frozen.

``@dataclass`` with ``eq=True`` (the default) sets ``__hash__ = None``:
instances are *unhashable*, and using one as a dict key or set member
raises ``TypeError`` at runtime — but only on the code path that
actually does it, which in this repo tends to be a rarely-exercised
branch of the simulator (e.g. deduplicating ``_Interval`` gaps). Passing
``frozen=True`` restores a value-based hash *and* makes the instance
immutable, which the simulator additionally relies on: a schedule
assignment that mutates after being recorded corrupts replay.

Detection is per-module and syntactic: a non-frozen dataclass defined
here is flagged wherever this module uses it as a ``dict[K, ...]`` key
annotation, inside ``set[...]``/``frozenset[...]``, as a dict-literal
key, in a set literal, or via ``some_set.add(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

_SET_TYPES = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})
_DICT_TYPES = frozenset({"dict", "Dict", "defaultdict", "DefaultDict", "Counter", "OrderedDict"})


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _nonfrozen_dataclasses(tree: ast.Module) -> dict[str, int]:
    """Names of ``@dataclass`` classes in this module without frozen=True."""
    found: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            if _decorator_name(deco) != "dataclass":
                continue
            frozen = False
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                        frozen = bool(kw.value.value)
            if not frozen:
                found[node.name] = node.lineno
            break
    return found


def _type_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the outermost identifier.
        return node.value.split("[", 1)[0].strip()
    return None


def _key_positions(node: ast.Subscript) -> list[ast.expr]:
    """Type expressions used in hashed positions of a subscript annotation."""
    container = _type_name(node.value)
    slice_node = node.slice
    if container in _SET_TYPES:
        return [slice_node]
    if container in _DICT_TYPES:
        if isinstance(slice_node, ast.Tuple) and slice_node.elts:
            return [slice_node.elts[0]]
        return [slice_node]
    return []


def _constructed_class(node: ast.expr) -> str | None:
    """Class name if the expression constructs ``ClassName(...)``."""
    if isinstance(node, ast.Call):
        return _type_name(node.func)
    return None


@register("SIM01", "dataclasses used as dict keys / set members must be frozen")
def check_frozen_dataclasses(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag non-frozen local dataclasses used in hashed positions."""
    suspects = _nonfrozen_dataclasses(ctx.tree)
    if not suspects:
        return

    def diag(node: ast.AST, name: str, how: str) -> Diagnostic:
        return Diagnostic(
            path=str(ctx.path),
            line=node.lineno,
            col=node.col_offset + 1,
            code="SIM01",
            message=(
                f"non-frozen @dataclass `{name}` (defined at line "
                f"{suspects[name]}) is {how}; declare it "
                "@dataclass(frozen=True) or it is unhashable/mutable"
            ),
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Subscript):
            for key_expr in _key_positions(node):
                name = _type_name(key_expr)
                if name in suspects:
                    yield diag(node, name, "annotated as a dict key / set element")
        elif isinstance(node, ast.Set):
            for elt in node.elts:
                name = _constructed_class(elt)
                if name in suspects:
                    yield diag(elt, name, "placed in a set literal")
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:
                    continue
                name = _constructed_class(key)
                if name in suspects:
                    yield diag(key, name, "used as a dict-literal key")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "add" and node.args:
                name = _constructed_class(node.args[0])
                if name in suspects:
                    yield diag(node, name, "added to a set")
