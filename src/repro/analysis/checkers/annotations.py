"""TYP01 — public API of core/cloud/tuning is fully annotated.

``mypy --strict`` is wired into the same gate (see
:mod:`repro.analysis.typecheck`), but mypy is an optional dev
dependency — this rule enforces the load-bearing part (complete public
signatures in the billing-critical packages) with zero dependencies, so
the gate never silently weakens on a machine without mypy.

Scope: module-level and class-level ``def``s in ``repro.core``,
``repro.cloud`` and ``repro.tuning`` whose names are public (no leading
underscore; dunders included). Every parameter except ``self``/``cls``
and the return type must be annotated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

GATED_PACKAGES: tuple[str, ...] = ("repro.core", "repro.cloud", "repro.tuning")


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _missing_annotations(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    ordered = [*args.posonlyargs, *args.args]
    missing = [
        a.arg
        for i, a in enumerate(ordered)
        if a.annotation is None and not (i == 0 and a.arg in ("self", "cls"))
    ]
    missing += [a.arg for a in args.kwonlyargs if a.annotation is None]
    if args.vararg and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


def _functions_of(body: list[ast.stmt]) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module- and class-level functions (nested closures are exempt)."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield member


@register("TYP01", "public functions in core/cloud/tuning are fully annotated")
def check_annotations(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag incompletely-annotated public defs in strict packages."""
    module = ctx.module
    if module is None or not any(
        module == pkg or module.startswith(pkg + ".") for pkg in GATED_PACKAGES
    ):
        return
    for fn in _functions_of(ctx.tree.body):
        if not _is_public(fn.name):
            continue
        missing = _missing_annotations(fn)
        needs_return = fn.returns is None
        if not missing and not needs_return:
            continue
        parts = []
        if missing:
            parts.append(f"unannotated parameter(s): {', '.join(missing)}")
        if needs_return:
            parts.append("missing return annotation")
        yield Diagnostic(
            path=str(ctx.path),
            line=fn.lineno,
            col=fn.col_offset + 1,
            code="TYP01",
            message=f"public `{fn.name}` in a strict-typed package has " + " and ".join(parts),
        )
