"""SEED01 — functions that receive rng/seed must thread it, not fork it.

The repo's determinism contract assigns every stochastic component its
own named stream derived from the experiment seed (workload = seed+0,
service = seed+1, simulator = seed+2, faults = seed+3, retry = seed+4).
A function that *accepts* an ``rng`` or ``seed`` parameter and then
quietly constructs its own generator breaks that contract twice: the
caller's carefully-threaded stream is ignored, and the fresh stream
collides with (or drifts from) the documented ones.

Flagged, inside any function with an ``rng`` parameter:

* ``default_rng()`` / ``random.Random()`` / ``RandomState()`` with no
  arguments — an unseeded fork (a *seeded* constant fallback such as
  ``rng if rng is not None else default_rng(0)`` is explicitly allowed).

Inside any function with a ``seed`` parameter (and no ``rng``):

* RNG construction whose arguments never mention ``seed`` — the
  parameter exists but the entropy comes from somewhere else.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

_RNG_CONSTRUCTORS = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _walk_own_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # the nested function is checked on its own
        stack.extend(ast.iter_child_nodes(node))


def _mentions_name(node: ast.Call, name: str) -> bool:
    for arg in (*node.args, *(kw.value for kw in node.keywords)):
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == name:
                return True
    return False


@register("SEED01", "rng/seed parameters must be threaded to callees, not replaced")
def check_seed_threading(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag functions that take rng/seed but construct their own RNG."""
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _param_names(fn)
        has_rng = "rng" in params
        has_seed = "seed" in params
        if not has_rng and not has_seed:
            continue
        for node in _walk_own_body(fn):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.call_target(node)
            if target not in _RNG_CONSTRUCTORS:
                continue
            short = target.rsplit(".", 1)[-1]
            if has_rng:
                if not node.args and not node.keywords:
                    yield Diagnostic(
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset + 1,
                        code="SEED01",
                        message=(
                            f"`{fn.name}` receives `rng` but constructs an unseeded "
                            f"`{short}()`; thread the rng parameter (a seeded "
                            "constant fallback is fine)"
                        ),
                    )
            elif has_seed and not _mentions_name(node, "seed"):
                yield Diagnostic(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code="SEED01",
                    message=(
                        f"`{fn.name}` receives `seed` but `{short}(...)` does not "
                        "use it; derive the generator from the seed parameter"
                    ),
                )
