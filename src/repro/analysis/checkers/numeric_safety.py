"""NUM01 — no exact float equality on money or time expressions.

Costs and durations in this codebase are accumulated floats: summed
per-operator runtimes, faded gain contributions (Eqs. 3-5), storage
integrals, quantum bills. ``==``/``!=`` between two such values
compares the last ulp of two different summation orders — it holds in
the test you wrote and fails in the one you didn't. All tolerant
comparisons live in :mod:`repro.core.numeric` (``money_eq``,
``time_eq``, ``ge_tol``, ``le_tol``); this rule rejects exact equality
anywhere a money/time expression is recognisable.

Recognition is lexical (this is a linter, not a type checker): an
operand is money/time-flavoured if it is a float literal, or a name /
attribute / call whose terminal identifier contains one of the billing
vocabulary tokens (``cost``, ``price``, ``dollars``, ``seconds``,
``quanta``, ``gain``, ``makespan``, ``budget``, ``money``) or ends in
a unit suffix (``_s``, ``_mb``). Integer-typed quanta counters compared
with ``==`` should be renamed or suppressed with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

_VOCAB = (
    "cost",
    "price",
    "dollar",
    "money",
    "seconds",
    "quanta",
    "gain",
    "makespan",
    "budget",
)

_UNIT_SUFFIXES = ("_s", "_mb", "_usd")


def _terminal_identifier(node: ast.expr) -> str | None:
    """The last identifier of a name/attribute/call expression."""
    if isinstance(node, ast.Call):
        return _terminal_identifier(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_money_or_time(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_money_or_time(node.operand)
    ident = _terminal_identifier(node)
    if ident is None:
        return False
    lowered = ident.lower()
    if lowered.endswith(_UNIT_SUFFIXES):
        return True
    return any(token in lowered for token in _VOCAB)


@register("NUM01", "no ==/!= between float cost/time expressions")
def check_numeric_safety(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag ``==``/``!=`` where an operand is money/time-flavoured."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        flagged = next((o for o in operands if _is_money_or_time(o)), None)
        if flagged is None:
            continue
        ident = _terminal_identifier(flagged)
        subject = f"`{ident}`" if ident else "a float literal"
        yield Diagnostic(
            path=str(ctx.path),
            line=node.lineno,
            col=node.col_offset + 1,
            code="NUM01",
            message=(
                f"exact float equality involving {subject} — accumulated "
                "cost/time values must use repro.core.numeric "
                "(money_eq/time_eq/ge_tol/le_tol)"
            ),
        )
