"""Built-in checkers. Importing this package registers every rule.

Adding a rule: create a module here, decorate one generator function
with :func:`repro.analysis.registry.register`, and import the module
below. The runner and the fixture self-tests pick it up automatically.
"""

from repro.analysis.checkers import (  # noqa: F401  (imported for registration)
    annotations,
    determinism,
    frozen_dataclasses,
    layering,
    numeric_safety,
    seed_threading,
)

__all__ = [
    "annotations",
    "determinism",
    "frozen_dataclasses",
    "layering",
    "numeric_safety",
    "seed_threading",
]
