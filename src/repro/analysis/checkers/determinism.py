"""DET01 — no unseeded randomness, no wall-clock reads.

The paper's gain model (Eqs. 3-5) and the quantum-billing experiments
are validated by *bit-deterministic* replay: the same seed must produce
byte-identical metrics (PR 1's zero-rate fault runs were verified that
way by hand). A single ``random.random()``, module-level
``numpy.random.*`` draw, unseeded ``default_rng()`` or wall-clock read
(``time.time``, ``datetime.now``) silently couples a run to global
state or to the host clock and makes every downstream number
unreproducible.

Exempt: ``repro.cli`` (the operator-facing entry point may timestamp
its own output). Anywhere else, a legitimate wall-clock use (e.g. a
real microbenchmark) must carry an inline justification::

    t0 = time.perf_counter()  # repro-lint: disable=DET01 -- measures real work
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

#: Modules allowed to read the wall clock / host entropy.
_EXEMPT_MODULES = frozenset({"repro.cli"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

_DATETIME_NOW = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that construct explicit, seedable state
#: (fine when given a seed; the no-argument forms are flagged below).
_NP_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


def _has_arguments(node: ast.Call) -> bool:
    return bool(node.args or node.keywords)


@register("DET01", "no unseeded randomness or wall-clock reads in the simulator")
def check_determinism(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag wall-clock reads and unseeded/global-state randomness."""
    if ctx.module in _EXEMPT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target is None:
            continue
        message: str | None = None
        if target in _WALL_CLOCK or target in _DATETIME_NOW:
            message = (
                f"wall-clock read `{target}()` — simulated time must come from "
                "the event clock, not the host"
            )
        elif target == "random.Random":
            if not _has_arguments(node):
                message = (
                    "`random.Random()` without a seed draws entropy from the OS; "
                    "pass an explicit seed"
                )
        elif target == "random.SystemRandom":
            message = "`random.SystemRandom` is OS entropy and can never be seeded"
        elif target.startswith("random."):
            message = (
                f"module-level `{target}()` uses the global random state; "
                "thread a seeded `random.Random`/`numpy` Generator instead"
            )
        elif target.startswith("numpy.random."):
            tail = target.removeprefix("numpy.random.")
            if tail in ("default_rng", "RandomState"):
                if not _has_arguments(node):
                    message = (
                        f"`numpy.random.{tail}()` without a seed draws OS entropy; "
                        "pass an explicit seed"
                    )
            elif tail not in _NP_CONSTRUCTORS:
                message = (
                    f"module-level `{target}()` uses numpy's global random state; "
                    "use a seeded `numpy.random.default_rng(seed)` generator"
                )
        if message is not None:
            yield Diagnostic(
                path=str(ctx.path),
                line=node.lineno,
                col=node.col_offset + 1,
                code="DET01",
                message=message,
            )
