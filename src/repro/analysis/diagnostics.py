"""Diagnostic records emitted by the lint checkers.

A diagnostic anchors one rule violation to a ``file:line:col`` location.
The runner renders them as human-readable lines and as a machine-readable
JSON report (see :mod:`repro.analysis.runner`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """Human-readable ``file:line:col: CODE message`` anchor."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return asdict(self)
