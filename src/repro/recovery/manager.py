"""The recovery manager: durable WAL + snapshots + deterministic resume.

One :class:`RecoveryManager` is attached to a :class:`QaaSService` as its
``recovery`` log. During a run it journals every state mutation into the
write-ahead log and, at commit boundaries (the end of each service
iteration), appends a commit record carrying digests of the tuning state
and periodically pickles the *entire* run — service, loop state and the
process-global knapsack memo — into an atomic snapshot.

Resume is **replay by re-execution**: the simulator is fully
deterministic under a fixed seed, so instead of interpreting WAL records
to mutate state, :meth:`RecoveryManager.resume` restores the newest
usable snapshot and simply re-runs :meth:`QaaSService.step` — while
*verifying*, byte for byte, that each record the re-execution emits
matches the logged suffix. Any divergence (state corruption, a config
drift, a non-deterministic code path) raises :class:`RecoveryError`
instead of silently producing a different run. Once the logged suffix is
exhausted the manager switches back to appending and the run continues
past the crash point as if it never happened — the final report and obs
artifacts are byte-identical to an uninterrupted run.

Determinism bookkeeping: counters that are identical between the
interrupted and uninterrupted runs (``recovery/wal_records``,
``recovery/snapshots_written``) go into the run's observability
artifacts; counters that only exist because a resume happened (replays,
truncated-tail detections, records verified) would break artifact
byte-equality and therefore live in a sidecar ``recovery-state.json``.
"""

from __future__ import annotations

import json
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.recovery.hooks import NOOP_RECOVERY, RecoveryLog
from repro.recovery.snapshot import (
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.recovery.wal import WalRecord, WriteAheadLog, encode_body

FORMAT_VERSION = 1

#: Snapshots retained per run directory (older ones are pruned).
SNAPSHOT_KEEP = 3

#: Default commit interval between snapshots, in service iterations.
DEFAULT_SNAPSHOT_EVERY = 8

MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.pkl"
WAL_NAME = "wal.jsonl"
SIDECAR_NAME = "recovery-state.json"


class RecoveryError(RuntimeError):
    """Resume cannot reproduce the logged run (divergence or corruption)."""


@dataclass
class ResumedRun:
    """What :meth:`RecoveryManager.resume` restored.

    ``service``/``state`` are the unpickled pair when a usable snapshot
    existed (warm resume), else ``None`` — the caller rebuilds the run
    from ``manifest`` + ``config`` and replays the whole WAL (cold
    resume). Either way ``manager`` is already positioned on the logged
    suffix and ready to be attached.
    """

    manager: "RecoveryManager"
    manifest: dict[str, Any]
    config: Any
    service: Any = None
    state: Any = None
    snapshot_iteration: int | None = None


@dataclass
class RecoveryStats:
    """Resume-side counters (sidecar only; never in obs artifacts)."""

    replays: int = 0
    truncated_tails: int = 0
    records_verified: int = 0
    snapshots_restored: int = 0
    cold_resumes: int = 0
    finished: bool = False

    def to_dict(self) -> dict[str, object]:
        """JSON form, written to the sidecar."""
        return {
            "replays": self.replays,
            "truncated_tails": self.truncated_tails,
            "records_verified": self.records_verified,
            "snapshots_restored": self.snapshots_restored,
            "cold_resumes": self.cold_resumes,
            "finished": self.finished,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RecoveryStats":
        """Inverse of :meth:`to_dict` (missing keys default)."""
        stats = cls()
        for name in (
            "replays",
            "truncated_tails",
            "records_verified",
            "snapshots_restored",
            "cold_resumes",
        ):
            setattr(stats, name, int(data.get(name, 0)))  # type: ignore[arg-type]
        stats.finished = bool(data.get("finished", False))
        return stats


class RecoveryManager(RecoveryLog):
    """Durable write-ahead journal + snapshot store for one run directory.

    Use :meth:`start` for a fresh run and :meth:`resume` after a crash;
    the instance is then passed (or re-attached) as the service's
    ``recovery`` log.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        wal: WriteAheadLog,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        position: int = 0,
        replay_suffix: list[WalRecord] | None = None,
        stats: RecoveryStats | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.directory = Path(directory)
        self.wal = wal
        self.snapshot_every = snapshot_every
        #: Logical records emitted by the run so far (restored from the
        #: snapshot on resume). Deterministic: equal at every commit to
        #: the uninterrupted run's value.
        self._position = position
        #: Logged records the re-execution still has to reproduce.
        self._suffix: list[WalRecord] = replay_suffix or []
        self._cursor = 0
        self.stats = stats if stats is not None else RecoveryStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        directory: str | Path,
        config: Any,
        *,
        strategy: str,
        generator: str,
        interleaver: str,
        obs_enabled: bool,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = False,
    ) -> "RecoveryManager":
        """Initialise a fresh recovery directory for one run.

        Refuses a directory that already holds a WAL: a crashed run must
        be *resumed*, not silently overwritten.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        if (root / WAL_NAME).exists():
            raise RecoveryError(
                f"{root / WAL_NAME} already exists; resume it instead of "
                "starting a new run over it"
            )
        manifest = {
            "format": FORMAT_VERSION,
            "strategy": strategy,
            "generator": generator,
            "interleaver": interleaver,
            "obs": obs_enabled,
            "snapshot_every": snapshot_every,
            "fsync": fsync,
        }
        (root / MANIFEST_NAME).write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        )
        (root / CONFIG_NAME).write_bytes(
            pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)
        )
        wal = WriteAheadLog(root / WAL_NAME, fsync=fsync)
        return cls(root, wal, snapshot_every=snapshot_every)

    @classmethod
    def resume(cls, directory: str | Path) -> ResumedRun:
        """Restore a crashed run directory to a continuable state.

        Opens the WAL (truncating any torn tail), restores the newest
        snapshot whose logical position is covered by the valid log, and
        positions the manager on the remaining record suffix for
        verified re-execution. With no usable snapshot the caller gets a
        cold resume: rebuild the run from the manifest and replay the
        whole log.
        """
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise RecoveryError(f"no {MANIFEST_NAME} in {root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != FORMAT_VERSION:
            raise RecoveryError(
                f"unsupported recovery format {manifest.get('format')!r}"
            )
        config = pickle.loads((root / CONFIG_NAME).read_bytes())
        stats = cls._load_sidecar(root)
        if stats.finished:
            raise RecoveryError(f"run in {root} already finished; nothing to resume")
        wal = WriteAheadLog(root / WAL_NAME, fsync=bool(manifest.get("fsync", False)))
        stats.replays += 1
        if wal.truncated_tail:
            stats.truncated_tails += 1
        service = None
        state = None
        snapshot_iteration = None
        position = 0
        for iteration, path in list_snapshots(root):
            payload = read_snapshot(path)
            if payload is None:
                continue  # corrupt snapshot: fall back to an older one
            blob = pickle.loads(payload)
            if blob.get("format") != FORMAT_VERSION:
                continue
            if blob["wal_position"] > wal.count:
                # Snapshot claims records the (truncated) log no longer
                # holds — cannot verify a replay against it; skip.
                continue
            from repro.interleave.knapsack import restore_knapsack_cache

            restore_knapsack_cache(blob["knapsack"])
            service = blob["service"]
            state = blob["state"]
            position = int(blob["wal_position"])
            snapshot_iteration = iteration
            stats.snapshots_restored += 1
            break
        if service is None:
            stats.cold_resumes += 1
        manager = cls(
            root,
            wal,
            snapshot_every=int(manifest.get("snapshot_every", DEFAULT_SNAPSHOT_EVERY)),
            position=position,
            replay_suffix=wal.existing[position:],
            stats=stats,
        )
        manager._save_sidecar()
        if service is not None:
            service.recovery = manager
        return ResumedRun(
            manager=manager,
            manifest=manifest,
            config=config,
            service=service,
            state=state,
            snapshot_iteration=snapshot_iteration,
        )

    # ------------------------------------------------------------------
    # RecoveryLog interface
    # ------------------------------------------------------------------
    def record(self, kind: str, t: float, **fields: object) -> None:
        """Journal one state mutation at simulated time ``t``."""
        payload: dict[str, object] = {"kind": kind, "t": t}
        payload.update(fields)
        self._write(encode_body(payload))

    def _write(self, body: str) -> None:
        """Append ``body`` — or, mid-replay, verify it against the log."""
        if self._cursor < len(self._suffix):
            expected = self._suffix[self._cursor]
            if body != expected.body:
                raise RecoveryError(
                    "replay diverged from the write-ahead log at record "
                    f"{expected.position}: regenerated {body!r} but the "
                    f"log holds {expected.body!r}"
                )
            self._cursor += 1
            self._position += 1
            self.stats.records_verified += 1
            return
        self.wal.append_body(body)
        self._position += 1

    def on_run_begin(self, service: Any, state: Any) -> None:
        """Journal the run header and take the base (iteration-0) snapshot."""
        self.record(
            "run_started",
            0.0,
            seed=service.config.seed,
            strategy=service.strategy.value,
            events=len(state.ordered),
            horizon_s=service.config.total_time_s,
        )
        self._snapshot(service, state, 0.0)

    def commit(self, service: Any, state: Any, t: float) -> None:
        """Seal one service iteration: digest record, maybe snapshot."""
        self.record(
            "commit",
            t,
            iteration=state.i,
            history=service.tuner.history.window_digest(),
            catalog=self._catalog_digest(service),
            live_mb=service.storage.live_mb,
        )
        if service.obs.enabled:
            service.obs.metrics.counter("recovery/wal_records").set(
                float(self._position)
            )
        if state.i % self.snapshot_every == 0:
            self._snapshot(service, state, t)

    def on_run_finished(self, service: Any, state: Any, t: float) -> None:
        """Seal the WAL; further resumes of this directory are refused."""
        self.record("run_finished", t, iteration=state.i)
        if service.obs.enabled:
            service.obs.metrics.counter("recovery/wal_records").set(
                float(self._position)
            )
        self.stats.finished = True
        self._save_sidecar()
        self.wal.close()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _snapshot(self, service: Any, state: Any, t: float) -> None:
        # Obs bookkeeping goes FIRST so the pickled snapshot contains its
        # own event and counter increment — replaying from it re-emits
        # only the *later* boundaries, keeping artifacts byte-identical.
        if service.obs.enabled:
            service.obs.metrics.counter("recovery/snapshots_written").inc()
            service.obs.journal.emit(
                "recovery_snapshot",
                t=t,
                iteration=state.i,
                wal_position=self._position,
            )
        from repro.interleave.knapsack import export_knapsack_cache

        blob = {
            "format": FORMAT_VERSION,
            "iteration": state.i,
            "wal_position": self._position,
            "knapsack": export_knapsack_cache(),
            "service": service,
            "state": state,
        }
        # The manager holds an open WAL handle; detach it from the
        # service while pickling (a restored service is re-attached by
        # resume()). A single dumps() call keeps identity sharing — e.g.
        # state.metrics.registry IS service.obs.metrics — intact.
        previous = service.recovery
        service.recovery = NOOP_RECOVERY
        try:
            payload = pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            service.recovery = previous
        write_snapshot(self.directory, state.i, payload)
        prune_snapshots(self.directory, SNAPSHOT_KEEP)
        self._save_sidecar()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _catalog_digest(service: Any) -> str:
        """8-hex digest over every index's build-state digest."""
        parts = [
            service.catalog.indexes[name].state_digest()
            for name in sorted(service.catalog.indexes)
        ]
        return f"{zlib.crc32('|'.join(parts).encode('ascii')):08x}"

    @property
    def replaying(self) -> bool:
        """Whether the manager is still verifying the logged suffix."""
        return self._cursor < len(self._suffix)

    @property
    def position(self) -> int:
        """Logical records emitted (appended or verified) so far."""
        return self._position

    def _save_sidecar(self) -> None:
        (self.directory / SIDECAR_NAME).write_text(
            json.dumps(self.stats.to_dict(), sort_keys=True, indent=2) + "\n"
        )

    @staticmethod
    def _load_sidecar(root: Path) -> RecoveryStats:
        path = root / SIDECAR_NAME
        if not path.exists():
            return RecoveryStats()
        try:
            return RecoveryStats.from_dict(json.loads(path.read_text()))
        except (ValueError, TypeError):
            return RecoveryStats()

    def close(self) -> None:
        """Release the WAL file handle (idempotent)."""
        self.wal.close()
