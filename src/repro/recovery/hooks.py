"""Recovery hooks: the pure-stdlib leaf of :mod:`repro.recovery`.

Everything the *instrumented* layers (service, tuner, simulator,
storage) need from the recovery subsystem lives here, so that — exactly
like :mod:`repro.obs` and :mod:`repro.perf` — any layer may import it
without closing a package cycle (LAY01 lists it as an allowed leaf).
The heavyweight machinery (WAL, snapshots, the resume driver) sits in
the sibling modules *above* ``repro.core`` and is never imported from
below.

Two facilities:

* :class:`RecoveryLog` — the no-op write-ahead-log interface the
  service calls at every durable state mutation. The shared
  :data:`NOOP_RECOVERY` instance makes recovery-disabled runs
  behaviour-identical (and byte-identical) to a build without recovery:
  every call site is gated on ``recovery.enabled`` and the log draws no
  randomness and reads no clock.
* **Crash points** — named barriers (:func:`crash_point`) threaded
  through the hot paths. With no :class:`CrashPlan` installed a barrier
  is a single global read; the chaos harness installs a plan that kills
  the process (or raises :class:`SimulatedCrash` for in-process tests)
  at one deterministic barrier hit or WAL record boundary, which is how
  the crash-recovery sweep visits *every* interleaving systematically
  instead of hoping random kills cover them.
"""

from __future__ import annotations

import os
import sys
from typing import Mapping

#: Exit code of a planned crash; the sweep driver asserts it to verify
#: the kill actually happened (vs. the run completing untouched).
CRASH_EXIT_CODE = 43

#: Every named crash barrier in the codebase, in rough execution order.
#: The sweep driver iterates this registry; :func:`crash_point` rejects
#: unknown names when a plan is active so the registry can never rot.
CRASH_POINTS: tuple[str, ...] = (
    "service.step",
    "service.pre_decide",
    "service.post_decide",
    "service.post_execute",
    "service.post_commit",
    "service.pre_finish",
    "tuner.pre_rank",
    "tuner.post_interleave",
    "simulator.pre_execute",
    "storage.pre_put",
    "storage.post_put",
    "storage.pre_delete",
    "recovery.pre_snapshot",
    "recovery.post_snapshot",
)

_CRASH_POINT_SET = frozenset(CRASH_POINTS)

#: Synthetic barrier labels used by WAL-boundary and torn-record kills.
WAL_RECORD_BARRIER = "wal.record"
WAL_TORN_BARRIER = "wal.torn"


class SimulatedCrash(BaseException):
    """An in-process planned crash (subclass of ``BaseException`` so it
    sails through ``except Exception`` handlers exactly like a kill)."""

    def __init__(self, barrier: str) -> None:
        super().__init__(f"simulated crash at {barrier!r}")
        self.barrier = barrier


class CrashPlan:
    """One deterministic kill: at a named barrier hit or WAL boundary.

    Attributes:
        point: Crash-point name to die at (``None`` = no barrier kill).
        hit: 1-based occurrence of ``point`` that triggers the kill
            (the same barrier fires once per service iteration).
        after_wal_record: Die immediately after the WAL record with this
            1-based ordinal has been durably appended.
        torn_wal_record: Die *midway* through writing this record,
            leaving a torn tail for recovery to truncate.
        hard: ``True`` kills the process via ``os._exit`` (subprocess
            sweeps); ``False`` raises :class:`SimulatedCrash` instead
            (fast in-process tests).
    """

    def __init__(
        self,
        point: str | None = None,
        hit: int = 1,
        after_wal_record: int | None = None,
        torn_wal_record: int | None = None,
        hard: bool = True,
    ) -> None:
        if point is not None and point not in _CRASH_POINT_SET:
            raise ValueError(
                f"unknown crash point {point!r}; valid names: "
                f"{', '.join(CRASH_POINTS)}"
            )
        if hit < 1:
            raise ValueError("hit must be >= 1")
        for name, value in (
            ("after_wal_record", after_wal_record),
            ("torn_wal_record", torn_wal_record),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1")
        self.point = point
        self.hit = hit
        self.after_wal_record = after_wal_record
        self.torn_wal_record = torn_wal_record
        self.hard = hard
        self._hits = 0

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "CrashPlan | None":
        """The plan described by ``REPRO_CRASH_*`` variables, if any.

        * ``REPRO_CRASH_POINT`` — barrier name (with optional
          ``REPRO_CRASH_HIT``, default 1);
        * ``REPRO_CRASH_WAL_RECORD`` — die after appending record N;
        * ``REPRO_CRASH_WAL_TORN`` — die midway through record N.
        """
        env = environ if environ is not None else os.environ
        point = env.get("REPRO_CRASH_POINT") or None
        after = env.get("REPRO_CRASH_WAL_RECORD") or None
        torn = env.get("REPRO_CRASH_WAL_TORN") or None
        if point is None and after is None and torn is None:
            return None
        return cls(
            point=point,
            hit=int(env.get("REPRO_CRASH_HIT", "1")),
            after_wal_record=int(after) if after is not None else None,
            torn_wal_record=int(torn) if torn is not None else None,
        )

    # ------------------------------------------------------------------
    def trigger(self, barrier: str) -> None:
        """Carry out the kill (hard exit or simulated raise)."""
        if self.hard:
            sys.stderr.write(f"repro: planned crash at {barrier}\n")
            sys.stderr.flush()
            sys.stdout.flush()
            os._exit(CRASH_EXIT_CODE)
        raise SimulatedCrash(barrier)

    def on_crash_point(self, name: str) -> None:
        if name != self.point:
            return
        self._hits += 1
        if self._hits == self.hit:
            self.trigger(f"{name}#{self.hit}")

    def on_wal_record(self, ordinal: int) -> None:
        """Called after record ``ordinal`` (1-based) is durably appended."""
        if ordinal == self.after_wal_record:
            self.trigger(f"{WAL_RECORD_BARRIER}#{ordinal}")

    def tears_record(self, ordinal: int) -> bool:
        """Whether record ``ordinal`` should be torn mid-write."""
        return ordinal == self.torn_wal_record


_ACTIVE_PLAN: CrashPlan | None = None


def install_crash_plan(plan: CrashPlan | None) -> CrashPlan | None:
    """Install (or clear, with ``None``) the process crash plan.

    Returns the previously installed plan so tests can restore it.
    """
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return previous


def active_crash_plan() -> CrashPlan | None:
    """The currently installed crash plan, or ``None``."""
    return _ACTIVE_PLAN


def crash_point(name: str) -> None:
    """A named crash barrier: free when no plan is installed.

    The name check runs only on the (cold) planned path, so the hot
    path costs one global load and one ``is None`` test.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    if name not in _CRASH_POINT_SET:
        raise ValueError(
            f"crash_point({name!r}) is not in CRASH_POINTS; valid names: "
            f"{', '.join(CRASH_POINTS)}"
        )
    plan.on_crash_point(name)


# ----------------------------------------------------------------------
# The write-ahead-log interface the instrumented layers call
# ----------------------------------------------------------------------
class RecoveryLog:
    """No-op recovery log: the default sink wired into every service.

    Mirrors the :class:`repro.obs.journal.Journal` pattern: call sites
    gate payload construction on :attr:`enabled`, and the no-op draws
    no randomness, reads no clock and allocates nothing, so a
    recovery-disabled run is byte-identical to one without recovery
    compiled in at all.
    """

    __slots__ = ()

    #: Whether mutations are durably journalled; gate payloads on it.
    enabled: bool = False

    def record(self, kind: str, t: float, **fields: object) -> None:
        """Append one state-mutation record at simulated time ``t``."""

    def on_run_begin(self, service: object, state: object) -> None:
        """The run loop is about to start (WAL header + base snapshot)."""

    def commit(self, service: object, state: object, t: float) -> None:
        """One service iteration completed; maybe snapshot."""

    def on_run_finished(self, service: object, state: object, t: float) -> None:
        """The run completed; seal the WAL."""

    def close(self) -> None:
        """Release any durable resources (no-op here)."""


#: Shared no-op instance (cf. ``repro.obs.NOOP_OBS``).
NOOP_RECOVERY = RecoveryLog()
