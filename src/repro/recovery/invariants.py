"""Conservation-property monitors for the chaos soak.

The chaos harness composes crash points with the fault injector and
re-checks these invariants after every service iteration (and across
every crash/resume cycle):

* **Billing conservation** — the storage service's incrementally
  maintained MB·seconds integral equals a from-scratch re-integration
  of its object history, and never decreases; money spent on compute is
  exactly leased quanta × the quantum price.
* **Catalog/storage agreement** — no index partition is both built
  (live in the catalog) and deleted in storage: every built partition
  has a live object, and every live index object belongs to a built
  partition or is a tracked orphan awaiting delete-retry.
* **History monotonicity** — the fading window only moves forward:
  head position and mutation version never decrease, the window never
  exceeds its bound.
* **Schedule sanity** — no container runs two dataflow operators at
  once in any pending schedule (idle-slot interleaving must never
  double-book a slot).

Monitors are strictly read-only (they never advance the billing clock
or touch any RNG), so an invariant-checked run stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

_REL_TOL = 1e-6
_ABS_TOL = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One broken conservation property at simulated time ``t``."""

    name: str
    t: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.name}] t={self.t:.1f}: {self.detail}"


class InvariantError(RuntimeError):
    """Raised by the soak/explore harnesses on any monitor violation.

    ``context`` is a machine-readable reproduction recipe (seed, step
    index, strategy, schedule prefix, ...): enough to re-run the exact
    failing configuration from the error alone. The chaos failure
    report prints it as JSON next to the violations.
    """

    def __init__(
        self,
        violations: list[InvariantViolation],
        context: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(
            "; ".join(str(v) for v in violations) or "invariant violation"
        )
        self.violations = violations
        self.context: dict[str, Any] = dict(context or {})


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _ABS_TOL + _REL_TOL * max(abs(a), abs(b))


class InvariantMonitor:
    """Stateful monitor bound to one service run.

    Statefulness tracks the *monotone* invariants (history head, billing
    integral) across checks — including across a crash/resume boundary,
    where the caller re-binds the monitor to the restored service and
    the monotone watermarks must still hold.
    """

    def __init__(self, service: Any) -> None:
        self.service = service
        self._last_head = 0
        self._last_version = 0
        self._last_mb_seconds = 0.0

    def rebind(self, service: Any) -> None:
        """Point the monitor at a restored service (after a resume).

        Watermarks are *kept*: recovery may rewind state at most to the
        last durable commit, never behind what a previous check already
        observed as settled... except that a crash legitimately rolls
        back to the last snapshot/commit, so the watermarks reset to the
        restored service's current values rather than asserting against
        pre-crash ones.
        """
        self.service = service
        self._last_head = service.tuner.history.head_position
        self._last_version = service.tuner.history.mutation_version
        self._last_mb_seconds = service.storage.accounted_mb_seconds

    def check(self, state: Any, t: float) -> list[InvariantViolation]:
        """Run every monitor; returns the (hopefully empty) violations."""
        violations: list[InvariantViolation] = []
        self._check_billing(t, violations)
        self._check_catalog_storage(t, violations)
        self._check_history(t, violations)
        self._check_schedules(state, t, violations)
        self._check_money(state, t, violations)
        return violations

    # ------------------------------------------------------------------
    def _check_billing(self, t: float, out: list[InvariantViolation]) -> None:
        storage = self.service.storage
        maintained = storage.accounted_mb_seconds
        recomputed = storage.recompute_mb_seconds()
        if not _close(maintained, recomputed):
            out.append(
                InvariantViolation(
                    "billing-conservation",
                    t,
                    f"maintained integral {maintained!r} != recomputed "
                    f"{recomputed!r}",
                )
            )
        if maintained < self._last_mb_seconds - _ABS_TOL:
            out.append(
                InvariantViolation(
                    "billing-monotone",
                    t,
                    f"billing integral went backwards: {maintained!r} < "
                    f"{self._last_mb_seconds!r}",
                )
            )
        self._last_mb_seconds = max(self._last_mb_seconds, maintained)

    def _check_catalog_storage(
        self, t: float, out: list[InvariantViolation]
    ) -> None:
        service = self.service
        storage = service.storage
        built_paths: set[str] = set()
        all_index_paths: set[str] = set()
        for name in sorted(service.catalog.indexes):
            index = service.catalog.indexes[name]
            for pid in index.partitions:
                path = index.spec.path(pid)
                all_index_paths.add(path)
                if index.partitions[pid].built:
                    built_paths.add(path)
                    if not storage.exists(path):
                        out.append(
                            InvariantViolation(
                                "catalog-storage",
                                t,
                                f"partition {name}[{pid}] is built but its "
                                f"object {path} is deleted in storage",
                            )
                        )
        orphans = set(service._orphan_paths)
        for path in storage.live_paths():
            if path in all_index_paths and path not in built_paths:
                if path not in orphans:
                    out.append(
                        InvariantViolation(
                            "catalog-storage",
                            t,
                            f"live index object {path} has no built partition "
                            "and is not a tracked orphan",
                        )
                    )

    def _check_history(self, t: float, out: list[InvariantViolation]) -> None:
        history = self.service.tuner.history
        if history.head_position < self._last_head:
            out.append(
                InvariantViolation(
                    "history-monotone",
                    t,
                    f"head position went backwards: {history.head_position} "
                    f"< {self._last_head}",
                )
            )
        if history.mutation_version < self._last_version:
            out.append(
                InvariantViolation(
                    "history-monotone",
                    t,
                    f"mutation version went backwards: "
                    f"{history.mutation_version} < {self._last_version}",
                )
            )
        if history.end_position < history.head_position:
            out.append(
                InvariantViolation(
                    "history-window",
                    t,
                    f"end {history.end_position} < head {history.head_position}",
                )
            )
        if (
            history.max_records is not None
            and len(history) > history.max_records
        ):
            out.append(
                InvariantViolation(
                    "history-window",
                    t,
                    f"window holds {len(history)} records, bound is "
                    f"{history.max_records}",
                )
            )
        self._last_head = max(self._last_head, history.head_position)
        self._last_version = max(self._last_version, history.mutation_version)

    def _check_schedules(
        self, state: Any, t: float, out: list[InvariantViolation]
    ) -> None:
        for _finish, _result, decision, _app in state.pending:
            schedule = decision.interleaved.schedule
            by_container: dict[int, list[Any]] = {}
            for assignment in schedule.dataflow_assignments():
                by_container.setdefault(assignment.container_id, []).append(
                    assignment
                )
            for cid, assignments in sorted(by_container.items()):
                assignments.sort(key=lambda a: (a.start, a.end))
                for prev, cur in zip(assignments, assignments[1:]):
                    if cur.start < prev.end - _ABS_TOL:
                        out.append(
                            InvariantViolation(
                                "schedule-overlap",
                                t,
                                f"container {cid} double-booked: "
                                f"{prev.op_name}[{prev.start:.1f},{prev.end:.1f}] "
                                f"overlaps {cur.op_name}[{cur.start:.1f},"
                                f"{cur.end:.1f}]",
                            )
                        )

    def _check_money(
        self, state: Any, t: float, out: list[InvariantViolation]
    ) -> None:
        metrics = state.metrics
        quanta = sum(o.money_quanta for o in metrics.finished())
        if quanta < 0:
            out.append(
                InvariantViolation(
                    "money-conservation", t, f"negative leased quanta {quanta}"
                )
            )
        # compute_dollars is defined as leased quanta × the $0.10 quantum
        # price — re-derive it independently from the outcomes.
        expected = quanta * 0.1
        if not _close(metrics.compute_dollars, expected):
            out.append(
                InvariantViolation(
                    "money-conservation",
                    t,
                    f"compute dollars {metrics.compute_dollars!r} != "
                    f"leased quanta × price {expected!r}",
                )
            )
        mb_seconds = self.service.storage.accounted_mb_seconds
        if mb_seconds < -_ABS_TOL:
            out.append(
                InvariantViolation(
                    "money-conservation",
                    t,
                    f"negative storage integral {mb_seconds!r}",
                )
            )
