"""Checksummed snapshots with atomic rename.

A snapshot is the pickled full tuning state of a run at one iteration
boundary (service + loop state + the process-global knapsack memo),
prefixed with a magic marker and a CRC32 of the payload. Writes go to a
``.tmp`` sibling first and are published with ``os.replace``: a crash
mid-write leaves at worst a stale temp file, never a half-written
snapshot under the real name. Readers validate magic + checksum and
report corruption as "snapshot unusable" rather than an exception, so
the resume path can fall back to an older snapshot (or a cold replay).
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from pathlib import Path

from repro.recovery.hooks import crash_point

_MAGIC = b"RPSN1\n"
_NAME_RE = re.compile(r"^snapshot-(\d{8})\.ckpt$")


def snapshot_path(directory: str | Path, iteration: int) -> Path:
    """Canonical file name of the snapshot taken at ``iteration``."""
    return Path(directory) / f"snapshot-{iteration:08d}.ckpt"


def write_snapshot(directory: str | Path, iteration: int, payload: bytes) -> Path:
    """Atomically publish ``payload`` as the snapshot of ``iteration``."""
    final = snapshot_path(directory, iteration)
    tmp = final.with_suffix(".tmp")
    crash_point("recovery.pre_snapshot")
    blob = _MAGIC + struct.pack(">I", zlib.crc32(payload)) + payload
    with open(tmp, "wb") as file:
        file.write(blob)
        file.flush()
        os.fsync(file.fileno())
    os.replace(tmp, final)
    crash_point("recovery.post_snapshot")
    return final


def read_snapshot(path: str | Path) -> bytes | None:
    """The validated payload, or ``None`` if the file is unusable."""
    file = Path(path)
    try:
        blob = file.read_bytes()
    except OSError:
        return None
    header = len(_MAGIC) + 4
    if len(blob) < header or not blob.startswith(_MAGIC):
        return None
    (crc,) = struct.unpack(">I", blob[len(_MAGIC):header])
    payload = blob[header:]
    if zlib.crc32(payload) != crc:
        return None
    return payload


def list_snapshots(directory: str | Path) -> list[tuple[int, Path]]:
    """(iteration, path) of every snapshot file, newest first."""
    found: list[tuple[int, Path]] = []
    root = Path(directory)
    if not root.is_dir():
        return found
    for entry in root.iterdir():
        match = _NAME_RE.match(entry.name)
        if match is not None:
            found.append((int(match.group(1)), entry))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found


def prune_snapshots(directory: str | Path, keep: int) -> int:
    """Remove all but the ``keep`` newest snapshots; returns removals."""
    if keep < 1:
        raise ValueError("keep must be >= 1")
    removed = 0
    for _, path in list_snapshots(directory)[keep:]:
        path.unlink(missing_ok=True)
        removed += 1
    return removed
