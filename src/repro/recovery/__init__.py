"""repro.recovery: crash-safe tuning state and deterministic chaos.

The service's tuning state — query history window, index catalog, build
checkpoints, storage billing position — lives in process memory; this
package makes it durable and resumable:

* :mod:`repro.recovery.hooks` — the pure-stdlib leaf the instrumented
  layers import: the :class:`RecoveryLog` no-op interface and the named
  :func:`crash_point` barriers (LAY01 allows it from any layer, like
  ``repro.obs``).
* :mod:`repro.recovery.wal` — the append-only write-ahead journal
  (checksummed JSONL framing, torn-tail truncation on open).
* :mod:`repro.recovery.snapshot` — atomic checksummed full-state
  snapshots.
* :mod:`repro.recovery.manager` — :class:`RecoveryManager`: journals
  every state mutation, snapshots periodically, and resumes a killed
  run by verified deterministic re-execution, byte-identical to the
  uninterrupted run.
* :mod:`repro.recovery.invariants` — conservation-property monitors
  (billing integral, catalog/storage agreement, history monotonicity,
  schedule non-overlap) for the chaos soak.
* :mod:`repro.recovery.chaos` — the deterministic crash harness:
  crash-at-every-barrier / every-WAL-record subprocess sweeps and an
  in-process fault-storm soak.
"""

from __future__ import annotations

from repro.recovery.hooks import (
    CRASH_EXIT_CODE,
    CRASH_POINTS,
    CrashPlan,
    NOOP_RECOVERY,
    RecoveryLog,
    SimulatedCrash,
    active_crash_plan,
    crash_point,
    install_crash_plan,
)
from repro.recovery.manager import (
    DEFAULT_SNAPSHOT_EVERY,
    RecoveryError,
    RecoveryManager,
    RecoveryStats,
    ResumedRun,
)
from repro.recovery.snapshot import (
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.recovery.wal import (
    WalRecord,
    WalScan,
    WriteAheadLog,
    encode_body,
    frame_record,
    scan_wal,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "CRASH_POINTS",
    "CrashPlan",
    "DEFAULT_SNAPSHOT_EVERY",
    "NOOP_RECOVERY",
    "RecoveryError",
    "RecoveryLog",
    "RecoveryManager",
    "RecoveryStats",
    "ResumedRun",
    "SimulatedCrash",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "active_crash_plan",
    "crash_point",
    "encode_body",
    "frame_record",
    "install_crash_plan",
    "list_snapshots",
    "prune_snapshots",
    "read_snapshot",
    "scan_wal",
    "write_snapshot",
]
