"""The write-ahead journal: checksummed JSONL with torn-tail recovery.

Every durable state mutation of a recovery-enabled run is one framed
record::

    <length:08x> <crc32:08x> <json>\\n

where ``length`` is the byte length of the UTF-8 JSON body and ``crc32``
its checksum. The body is serialised exactly like the obs journal
(sorted keys, fixed separators), so a record's bytes are a pure function
of its payload — which is what lets resume *verify* replayed mutations
against the log byte for byte.

Opening a log re-scans it record by record: the first frame that is
incomplete (a torn tail from a mid-write crash), fails its checksum, or
does not parse marks the end of the valid prefix, and everything after
it is truncated. Timestamps inside records are **simulated seconds**
supplied by callers — the WAL itself never reads the wall clock (DET01).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.recovery.hooks import active_crash_plan


def encode_body(payload: dict[str, object]) -> str:
    """Canonical JSON body of one record (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def frame_record(body: str) -> bytes:
    """The full framed line (length + crc32 + body + newline)."""
    data = body.encode("utf-8")
    return f"{len(data):08x} {zlib.crc32(data):08x} ".encode("ascii") + data + b"\n"


@dataclass(frozen=True)
class WalRecord:
    """One validated record: its 0-based position, body text and payload."""

    position: int
    body: str
    payload: dict[str, object]

    @property
    def kind(self) -> str:
        return str(self.payload.get("kind", ""))


@dataclass(frozen=True)
class WalScan:
    """Result of validating a journal file front to back."""

    records: list[WalRecord]
    valid_bytes: int
    #: Bytes existed past the valid prefix (torn tail or corruption).
    truncated: bool


def scan_wal(path: str | Path) -> WalScan:
    """Validate ``path`` and return its longest valid record prefix."""
    file = Path(path)
    if not file.exists():
        return WalScan(records=[], valid_bytes=0, truncated=False)
    raw = file.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        if end < 0:
            break  # torn tail: no newline
        line = raw[offset:end]
        record = _parse_line(line, len(records))
        if record is None:
            break  # corrupt frame: stop at the last good record
        records.append(record)
        offset = end + 1
    return WalScan(records=records, valid_bytes=offset, truncated=offset < len(raw))


def _parse_line(line: bytes, position: int) -> WalRecord | None:
    # Frame: 8 hex chars, space, 8 hex chars, space, body.
    if len(line) < 18 or line[8:9] != b" " or line[17:18] != b" ":
        return None
    try:
        length = int(line[:8], 16)
        crc = int(line[9:17], 16)
    except ValueError:
        return None
    data = line[18:]
    if len(data) != length or zlib.crc32(data) != crc:
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return WalRecord(position=position, body=data.decode("utf-8"), payload=payload)


class WriteAheadLog:
    """Append-only framed journal with crash-plan barriers.

    Opening validates the existing file, truncates any torn/corrupt
    tail, and appends after the last good record. Each append flushes
    to the OS (surviving a killed *process* needs no fsync; surviving a
    killed *host* does, hence the opt-in ``fsync`` flag).
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        scan = scan_wal(self.path)
        #: Records that were already durable when the log was opened —
        #: the resume path replays (and verifies) against these.
        self.existing: list[WalRecord] = scan.records
        #: Whether opening had to truncate a torn or corrupt tail.
        self.truncated_tail = scan.truncated
        if scan.truncated:
            with open(self.path, "r+b") as file:
                file.truncate(scan.valid_bytes)
        self._count = len(scan.records)
        self._file = open(self.path, "ab")

    @property
    def count(self) -> int:
        """Total records durably in the file (existing + appended)."""
        return self._count

    def append(self, payload: dict[str, object]) -> int:
        """Durably append one record; returns its 0-based position."""
        return self.append_body(encode_body(payload))

    def append_body(self, body: str) -> int:
        data = frame_record(body)
        ordinal = self._count + 1  # 1-based, for crash-plan boundaries
        plan = active_crash_plan()
        if plan is not None and plan.tears_record(ordinal):
            # Write a torn frame (half the bytes), make it durable, die.
            self._file.write(data[: max(1, len(data) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            plan.trigger(f"wal.torn#{ordinal}")
        self._file.write(data)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        position = self._count
        self._count = ordinal
        if plan is not None:
            plan.on_wal_record(ordinal)
        return position

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
