"""Deterministic crash-point chaos harness.

Two verification modes, both seeded and fully deterministic:

* :func:`run_crash_sweep` — the systematic mode. Runs a recovery-enabled
  baseline in a subprocess, then re-runs it once per named crash barrier
  and once per WAL record boundary (plus torn-record samples), each time
  killing the process at exactly that point via the ``REPRO_CRASH_*``
  environment contract, resuming with ``repro run --resume``, and
  asserting the resumed stdout and obs artifacts are **byte-identical**
  to the uninterrupted baseline. Enumerating every barrier is the
  ``simsched`` lesson: hoping random kills cover the interesting
  interleavings does not verify anything.
* :func:`run_chaos_soak` — the compositional mode. Drives one in-process
  run under an elevated fault-injection profile while a seeded schedule
  of :class:`SimulatedCrash` kills fires at random barriers; after every
  iteration (and across every crash/resume cycle) the
  :class:`~repro.recovery.invariants.InvariantMonitor` conservation
  checks must hold, and the final metrics must equal a crash-free
  reference run of the same seed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.obs import artifact_divergence
from repro.recovery.hooks import (
    CRASH_EXIT_CODE,
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    install_crash_plan,
)
from repro.recovery.invariants import InvariantError, InvariantMonitor
from repro.recovery.manager import RecoveryManager
from repro.recovery.wal import scan_wal

#: Relative obs artifact names used by every sweep case (relative paths
#: + per-case cwd keep stdout byte-comparable across cases).
ARTIFACTS = ("trace.json", "events.jsonl", "metrics.json")

RECOVER_DIR = "rec"

_CASE_TIMEOUT_S = 600


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one sweep case (one planned kill + one resume)."""

    label: str
    #: Whether the planned kill actually fired (a barrier that never
    #: executes under this workload completes with exit code 0).
    crashed: bool
    ok: bool
    detail: str = ""


@dataclass
class SweepReport:
    """Everything the crash-at-every-point sweep verified."""

    seed: int
    wal_records: int
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseResult]:
        """Cases whose resumed run was not byte-identical."""
        return [c for c in self.cases if not c.ok]

    @property
    def crashes(self) -> int:
        """Cases whose planned kill actually fired."""
        return sum(1 for c in self.cases if c.crashed)

    @property
    def ok(self) -> bool:
        """Whether every case recovered byte-identically."""
        return not self.failures


@dataclass
class SoakReport:
    """Outcome of one fault-storm soak run."""

    seed: int
    crashes_planned: int
    crashes_hit: int = 0
    resumes: int = 0
    cold_resumes: int = 0
    checks: int = 0
    identical: bool = False


def _src_root() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def _cli(args: list[str], cwd: Path, env_extra: dict[str, str] | None = None):
    """Run ``repro <args>`` in a subprocess rooted at ``cwd``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        timeout=_CASE_TIMEOUT_S,
    )


def _run_args(
    strategy: str,
    generator: str,
    seed: int,
    horizon_quanta: int | None,
    snapshot_every: int,
) -> list[str]:
    args = [
        "run",
        "--strategy", strategy,
        "--generator", generator,
        "--seed", str(seed),
        "--recover-dir", RECOVER_DIR,
        "--snapshot-every", str(snapshot_every),
        "--trace-out", ARTIFACTS[0],
        "--events-out", ARTIFACTS[1],
        "--metrics-out", ARTIFACTS[2],
    ]
    if horizon_quanta is not None:
        args += ["--horizon-quanta", str(horizon_quanta)]
    return args


def _resume_args() -> list[str]:
    return [
        "run",
        "--resume", RECOVER_DIR,
        "--trace-out", ARTIFACTS[0],
        "--events-out", ARTIFACTS[1],
        "--metrics-out", ARTIFACTS[2],
    ]


def _read_artifacts(directory: Path) -> dict[str, bytes]:
    return {
        name: (directory / name).read_bytes()
        for name in ARTIFACTS
        if (directory / name).exists()
    }


def run_crash_sweep(
    workdir: str | Path,
    *,
    seed: int = 0,
    strategy: str = "gain",
    generator: str = "phase",
    horizon_quanta: int | None = None,
    snapshot_every: int = 4,
    wal_stride: int = 1,
    torn_samples: int = 3,
) -> SweepReport:
    """Kill a seeded run at every barrier and WAL boundary; verify resume.

    ``wal_stride`` thins the per-record boundary cases (stride 1 =
    every record); torn-record kills sample ``torn_samples`` ordinals
    spread across the log. Returns a report whose :attr:`SweepReport.ok`
    asserts byte-identical recovery for every case that crashed.
    """
    if wal_stride < 1:
        raise ValueError("wal_stride must be >= 1")
    root = Path(workdir)
    base_dir = root / "baseline"
    base_dir.mkdir(parents=True, exist_ok=True)
    run_args = _run_args(strategy, generator, seed, horizon_quanta, snapshot_every)
    baseline = _cli(run_args, base_dir)
    if baseline.returncode != 0:
        raise RuntimeError(
            f"baseline run failed rc={baseline.returncode}: "
            f"{baseline.stderr.decode(errors='replace')[-2000:]}"
        )
    base_stdout = baseline.stdout
    base_artifacts = _read_artifacts(base_dir)
    wal_records = len(scan_wal(base_dir / RECOVER_DIR / "wal.jsonl").records)
    report = SweepReport(seed=seed, wal_records=wal_records)

    cases: list[tuple[str, dict[str, str]]] = []
    for point in CRASH_POINTS:
        cases.append(
            (f"point-{point.replace('.', '-')}", {"REPRO_CRASH_POINT": point})
        )
    # A mid-run occurrence of the per-iteration barriers, not just the first.
    for point in ("service.step", "service.post_commit"):
        cases.append(
            (
                f"point-{point.replace('.', '-')}-hit3",
                {"REPRO_CRASH_POINT": point, "REPRO_CRASH_HIT": "3"},
            )
        )
    for ordinal in range(1, wal_records + 1, wal_stride):
        cases.append(
            (f"wal-record-{ordinal:04d}", {"REPRO_CRASH_WAL_RECORD": str(ordinal)})
        )
    if wal_records and torn_samples:
        count = min(torn_samples, wal_records)
        picks = sorted(
            {
                1 + round(i * (wal_records - 1) / max(1, count - 1))
                for i in range(count)
            }
        )
        for ordinal in picks:
            cases.append(
                (f"wal-torn-{ordinal:04d}", {"REPRO_CRASH_WAL_TORN": str(ordinal)})
            )

    for label, env_extra in cases:
        case_dir = root / "cases" / label
        case_dir.mkdir(parents=True, exist_ok=True)
        crashed_proc = _cli(run_args, case_dir, env_extra=env_extra)
        if crashed_proc.returncode == 0:
            # The barrier never fired under this workload; the untouched
            # run must still match the baseline.
            same = (
                crashed_proc.stdout == base_stdout
                and _read_artifacts(case_dir) == base_artifacts
            )
            report.cases.append(
                CaseResult(
                    label,
                    crashed=False,
                    ok=same,
                    detail="" if same else "uncrashed run diverged from baseline",
                )
            )
            continue
        if crashed_proc.returncode != CRASH_EXIT_CODE:
            report.cases.append(
                CaseResult(
                    label,
                    crashed=True,
                    ok=False,
                    detail=(
                        f"crashed with rc={crashed_proc.returncode}, expected "
                        f"{CRASH_EXIT_CODE}: "
                        f"{crashed_proc.stderr.decode(errors='replace')[-500:]}"
                    ),
                )
            )
            continue
        resumed = _cli(_resume_args(), case_dir)
        if resumed.returncode != 0:
            report.cases.append(
                CaseResult(
                    label,
                    crashed=True,
                    ok=False,
                    detail=(
                        f"resume failed rc={resumed.returncode}: "
                        f"{resumed.stderr.decode(errors='replace')[-500:]}"
                    ),
                )
            )
            continue
        problems = []
        if resumed.stdout != base_stdout:
            problems.append("stdout differs from baseline")
        case_artifacts = _read_artifacts(case_dir)
        for name in ARTIFACTS:
            if case_artifacts.get(name) != base_artifacts.get(name):
                # Localize instead of a bare "differs": the first
                # divergent journal event / metrics key / trace event
                # usually names the faulty resume path directly.
                detail = artifact_divergence(
                    name,
                    base_artifacts.get(name) or b"",
                    case_artifacts.get(name) or b"",
                )
                problems.append(detail or f"{name} differs from baseline")
        report.cases.append(
            CaseResult(
                label,
                crashed=True,
                ok=not problems,
                detail="; ".join(problems),
            )
        )
    return report


# ----------------------------------------------------------------------
# Fault-storm soak
# ----------------------------------------------------------------------
#: Field names of the ``_metrics_fingerprint`` tuple, in order, so a
#: soak divergence can name the first differing field.
_FINGERPRINT_FIELDS = (
    "outcomes",
    "snapshots",
    "faults_injected",
    "indexes_created",
    "indexes_deleted",
    "operator_retries",
    "operators_recovered",
    "retries_exhausted",
    "containers_crashed",
    "stragglers",
    "builds_failed",
    "degraded_builds",
    "checkpoints_recorded",
    "checkpoint_resumes",
    "storage_put_failures",
    "storage_delete_failures",
)


def _metrics_fingerprint(metrics) -> tuple:
    """Everything that must survive crash/resume, including the
    registry-backed fault counters the dataclass ``==`` excludes."""
    return (
        metrics.outcomes,
        metrics.snapshots,
        metrics.faults_injected,
        metrics.indexes_created,
        metrics.indexes_deleted,
        metrics.operator_retries,
        metrics.operators_recovered,
        metrics.retries_exhausted,
        metrics.containers_crashed,
        metrics.stragglers,
        metrics.builds_failed,
        metrics.degraded_builds,
        metrics.checkpoints_recorded,
        metrics.checkpoint_resumes,
        metrics.storage_put_failures,
        metrics.storage_delete_failures,
    )


def run_chaos_soak(
    workdir: str | Path,
    *,
    seed: int = 0,
    strategy: str = "gain",
    generator: str = "phase",
    config=None,
    horizon_quanta: int | None = None,
    crashes: int = 5,
    snapshot_every: int = 4,
) -> SoakReport:
    """Crash/resume a faulty run ``crashes`` times under invariant checks.

    The run uses an elevated fault profile (unless ``config`` overrides
    it), a seeded schedule of soft crash plans, and in-process resume.
    Raises :class:`InvariantError` on any conservation violation and
    ``AssertionError`` if the final metrics differ from the crash-free
    reference run.
    """
    from repro import Strategy, prepare_run, run_experiment
    from repro.core.config import default_config

    root = Path(workdir)
    root.mkdir(parents=True, exist_ok=True)
    rec_dir = root / RECOVER_DIR
    if config is None:
        config = replace(
            default_config(),
            operator_failure_rate=0.05,
            container_crash_rate=0.01,
            storage_put_failure_rate=0.05,
            storage_delete_failure_rate=0.05,
            straggler_rate=0.05,
        )
        if horizon_quanta is not None:
            config = replace(config, total_time_s=horizon_quanta * 60.0)
    config = replace(config, seed=seed)
    strat = Strategy(strategy)

    reference = run_experiment(strat, generator=generator, config=config)
    ref_print = _metrics_fingerprint(reference)

    manager = RecoveryManager.start(
        rec_dir,
        config,
        strategy=strat.value,
        generator=generator,
        interleaver="lp",
        obs_enabled=False,
        snapshot_every=snapshot_every,
    )
    service, events = prepare_run(
        strat, generator=generator, config=config, recovery=manager
    )
    state = service.begin_run(events)
    monitor = InvariantMonitor(service)
    rng = np.random.default_rng(seed + 99)
    report = SoakReport(seed=seed, crashes_planned=crashes)

    def plant_crash() -> None:
        if report.crashes_hit < crashes:
            point = CRASH_POINTS[int(rng.integers(0, len(CRASH_POINTS)))]
            hit = int(rng.integers(1, 5))
            install_crash_plan(CrashPlan(point=point, hit=hit, hard=False))
        else:
            install_crash_plan(None)

    plant_crash()
    metrics = None
    try:
        while metrics is None:
            try:
                while True:
                    more = service.step(state)
                    violations = monitor.check(state, service.storage.accounted_until)
                    report.checks += 1
                    if violations:
                        raise InvariantError(
                            violations,
                            context={
                                "harness": "soak",
                                "seed": seed,
                                "strategy": strat.value,
                                "generator": generator,
                                "step_index": state.i,
                                "crashes_hit": report.crashes_hit,
                                "crashes_planned": crashes,
                                "snapshot_every": snapshot_every,
                            },
                        )
                    if not more:
                        break
                metrics = service.finish_run(state)
            except SimulatedCrash:
                report.crashes_hit += 1
                install_crash_plan(None)
                service.recovery.close()
                resumed = RecoveryManager.resume(rec_dir)
                report.resumes += 1
                if resumed.service is not None:
                    service, state = resumed.service, resumed.state
                else:
                    report.cold_resumes += 1
                    service, events = prepare_run(
                        strat,
                        generator=generator,
                        config=resumed.config,
                        recovery=resumed.manager,
                    )
                    state = service.begin_run(events)
                monitor.rebind(service)
                plant_crash()
    finally:
        install_crash_plan(None)
    soak_print = _metrics_fingerprint(metrics)
    report.identical = soak_print == ref_print
    if not report.identical:
        fields = [
            name
            for name, a, b in zip(_FINGERPRINT_FIELDS, soak_print, ref_print)
            if a != b
        ]
        raise AssertionError(
            "soak run metrics diverged from the crash-free reference "
            f"(first differing field: {fields[0] if fields else '?'}; "
            f"all: {', '.join(fields) or '?'})"
        )
    return report
