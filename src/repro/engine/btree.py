"""A from-scratch B+tree supporting insert, search, range scan, bulk load.

Used by the micro execution engine to measure the index speedups of
Table 6 with a real data structure rather than a formula. Keys are any
totally ordered Python values; every key maps to a list of row ids
(duplicates are allowed, as in a secondary index).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class _Node:
    leaf: bool
    keys: list[Any] = field(default_factory=list)
    # Internal nodes: children[i] holds keys < keys[i] (len == len(keys)+1).
    children: list["_Node"] = field(default_factory=list)
    # Leaf nodes: values[i] is the list of row ids for keys[i].
    values: list[list[int]] = field(default_factory=list)
    next_leaf: "_Node | None" = None


class BPlusTree:
    """B+tree keyed on arbitrary comparable values, mapping key -> row ids.

    Attributes:
        order: Maximum number of keys per node (fanout - 1). Small orders
            make deep trees, useful in tests; realistic orders (hundreds)
            are used in benchmarks.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self._root: _Node = _Node(leaf=True)
        self._num_keys = 0
        self._num_entries = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of (key, row id) entries in the tree."""
        return self._num_entries

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return self._num_keys

    @property
    def height(self) -> int:
        node, h = self._root, 1
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, row_id: int) -> None:
        """Insert one entry; duplicate keys accumulate row ids."""
        root = self._root
        if len(root.keys) >= self.order:
            new_root = _Node(leaf=False, children=[root])
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, row_id)
        self._num_entries += 1

    def _insert_nonfull(self, node: _Node, key: Any, row_id: int) -> None:
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, key)
            child = node.children[idx]
            if len(child.keys) >= self.order:
                self._split_child(node, idx)
                if key >= node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx].append(row_id)
        else:
            node.keys.insert(idx, key)
            node.values.insert(idx, [row_id])
            self._num_keys += 1

    def _split_child(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        mid = len(child.keys) // 2
        if child.leaf:
            right = _Node(
                leaf=True,
                keys=child.keys[mid:],
                values=child.values[mid:],
                next_leaf=child.next_leaf,
            )
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            child.next_leaf = right
            parent.keys.insert(idx, right.keys[0])
        else:
            right = _Node(
                leaf=False,
                keys=child.keys[mid + 1 :],
                children=child.children[mid + 1 :],
            )
            sep = child.keys[mid]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
            parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, right)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key: Any) -> list[int]:
        """Row ids for an exact key (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def range(self, low: Any, high: Any, inclusive: bool = False) -> Iterator[tuple[Any, int]]:
        """Yield (key, row id) with low < key < high (or <= if inclusive).

        Walks the sorted leaf chain, so the cost is O(log n + k) as in the
        paper's range-select complexity argument.
        """
        leaf = self._find_leaf(low)
        idx = bisect.bisect_left(leaf.keys, low)
        if not inclusive:
            while idx < len(leaf.keys) and leaf.keys[idx] == low:
                idx += 1
        node: _Node | None = leaf
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                past_end = key > high or (not inclusive and key == high)
                if past_end:
                    return
                for row_id in node.values[idx]:
                    yield key, row_id
                idx += 1
            node = node.next_leaf
            idx = 0

    def items(self) -> Iterator[tuple[Any, int]]:
        """All (key, row id) entries in key order (leaf chain scan)."""
        node: _Node | None = self._leftmost_leaf()
        while node is not None:
            for key, rows in zip(node.keys, node.values):
                for row_id in rows:
                    yield key, row_id
            node = node.next_leaf

    def keys(self) -> Iterator[Any]:
        """Distinct keys in sorted order."""
        node: _Node | None = self._leftmost_leaf()
        while node is not None:
            yield from node.keys
            node = node.next_leaf

    def row_ids_in_order(self) -> list[int]:
        """All row ids in key order, via a flat walk of the leaf chain.

        Equivalent to ``[rid for _, rid in self.items()]`` but avoids the
        per-entry generator overhead — this is the access path an index
        scan uses for ORDER BY.
        """
        out: list[int] = []
        node: _Node | None = self._leftmost_leaf()
        while node is not None:
            for rows in node.values:
                out.extend(rows)
            node = node.next_leaf
        return out

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, pairs: list[tuple[Any, int]], order: int = 64) -> "BPlusTree":
        """Build a tree from (key, row id) pairs bottom-up.

        Pairs are sorted once; leaves are packed to ~order entries and
        parent levels are stacked on top. This mirrors how index build
        operators create index partitions from partition data.
        """
        tree = cls(order=order)
        if not pairs:
            return tree
        pairs = sorted(pairs, key=lambda kv: kv[0])
        # Group duplicates.
        grouped_keys: list[Any] = []
        grouped_vals: list[list[int]] = []
        for key, row_id in pairs:
            if grouped_keys and grouped_keys[-1] == key:
                grouped_vals[-1].append(row_id)
            else:
                grouped_keys.append(key)
                grouped_vals.append([row_id])
        # Pack leaves.
        per_leaf = max(2, order - 1)
        leaves: list[_Node] = []
        for i in range(0, len(grouped_keys), per_leaf):
            leaves.append(
                _Node(
                    leaf=True,
                    keys=grouped_keys[i : i + per_leaf],
                    values=grouped_vals[i : i + per_leaf],
                )
            )
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right
        # Stack internal levels.
        level: list[_Node] = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            per_node = max(2, order)
            # Choose group boundaries so no group has a single child (a
            # lone child passed up unchanged would sit at a shallower
            # depth than its sibling leaves).
            starts = list(range(0, len(level), per_node))
            if len(starts) > 1 and len(level) - starts[-1] == 1:
                starts[-1] -= 1
            for i, start in enumerate(starts):
                end = starts[i + 1] if i + 1 < len(starts) else len(level)
                group = level[start:end]
                keys = [cls._subtree_min(child) for child in group[1:]]
                parents.append(_Node(leaf=False, keys=keys, children=group))
            level = parents
        tree._root = level[0]
        tree._num_keys = len(grouped_keys)
        tree._num_entries = len(pairs)
        return tree

    @staticmethod
    def _subtree_min(node: _Node) -> Any:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Invariant checking (used by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        leaf_depths: set[int] = set()

        def visit(node: _Node, depth: int, low: Any, high: Any) -> None:
            assert node.keys == sorted(node.keys), "node keys out of order"
            for key in node.keys:
                if low is not None:
                    assert key >= low, "key below subtree lower bound"
                if high is not None:
                    assert key < high or node.leaf, "key above subtree upper bound"
            if node.leaf:
                leaf_depths.add(depth)
                assert len(node.keys) == len(node.values)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [low, *node.keys, high]
                for i, child in enumerate(node.children):
                    visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self._root, 0, None, None)
        assert len(leaf_depths) <= 1, "leaves at different depths"
        chained = sum(1 for _ in self.keys())
        assert chained == self._num_keys, "leaf chain disagrees with key count"
