"""Query operators of the five paper categories, with and without indexes.

Section 1 of the paper identifies five operator categories where indexes
help: Lookup (O(n) -> O(log n)/O(1)), Range select (O(log n + k)),
Sorting (O(n log n) -> O(n)), Grouping (via sorting), and Join (e.g.
sort-merge join is O(n + m) on sorted inputs). Each function here
implements one access path so the Table 6 speedups can be *measured* on a
real engine rather than assumed.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator

from repro.engine.btree import BPlusTree
from repro.engine.hashindex import HashIndex
from repro.engine.heap import HeapFile


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------
def lookup_scan(heap: HeapFile, column: str, key: Any) -> list[int]:
    """Exact-key lookup by full scan: O(n)."""
    return heap.filter_scan(column, lambda v: v == key)


def lookup_btree(index: BPlusTree, key: Any) -> list[int]:
    """Exact-key lookup through a B+tree: O(log n)."""
    return index.search(key)


def lookup_hash(index: HashIndex, key: Any) -> list[int]:
    """Exact-key lookup through a hash index: O(1)."""
    return index.search(key)


# ----------------------------------------------------------------------
# Range select
# ----------------------------------------------------------------------
def range_select_scan(heap: HeapFile, column: str, low: Any, high: Any) -> list[int]:
    """Row ids with low < value < high by full scan: O(n)."""
    return heap.filter_scan(column, lambda v: low < v < high)


def range_select_btree(index: BPlusTree, low: Any, high: Any) -> list[int]:
    """Row ids with low < key < high via the leaf chain: O(log n + k)."""
    return [row_id for _, row_id in index.range(low, high)]


# ----------------------------------------------------------------------
# Sorting
# ----------------------------------------------------------------------
def order_by_sort(heap: HeapFile, column: str) -> list[int]:
    """Row ids ordered by column value via an explicit sort: O(n log n)."""
    values = heap.column(column)
    return sorted(range(len(heap)), key=values.__getitem__)


def order_by_btree(index: BPlusTree) -> list[int]:
    """Row ids in key order by scanning the sorted leaves: O(n)."""
    return index.row_ids_in_order()


def order_by_external_sort(heap: HeapFile, column: str, run_rows: int = 4096) -> list[int]:
    """Row ids ordered by column via an external merge sort.

    Models a dataflow engine sorting inputs that exceed memory: the input
    is cut into runs of ``run_rows`` rows, each run is sorted, and the
    sorted runs are k-way merged — the realistic no-index baseline for
    ORDER BY over large files (the paper's sorting category).
    """
    if run_rows < 2:
        raise ValueError("run_rows must be at least 2")
    values = heap.column(column)
    runs: list[list[int]] = []
    for start in range(0, len(heap), run_rows):
        run = sorted(range(start, min(start + run_rows, len(heap))), key=values.__getitem__)
        runs.append(run)
    merged = heapq.merge(*(((values[i], i) for i in run) for run in runs))
    return [row_id for _, row_id in merged]


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
def group_by_sort(heap: HeapFile, column: str) -> dict[Any, list[int]]:
    """Group row ids by column value using sorting: O(n log n)."""
    groups: dict[Any, list[int]] = {}
    values = heap.column(column)
    for row_id in sorted(range(len(heap)), key=values.__getitem__):
        groups.setdefault(values[row_id], []).append(row_id)
    return groups


def group_by_btree(index: BPlusTree) -> dict[Any, list[int]]:
    """Group row ids by key using the already-sorted leaf chain: O(n)."""
    groups: dict[Any, list[int]] = {}
    for key, row_id in index.items():
        groups.setdefault(key, []).append(row_id)
    return groups


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
def nested_loops_join(
    left: HeapFile, left_col: str, right: HeapFile, right_col: str
) -> list[tuple[int, int]]:
    """Naive nested loops join: O(n * m)."""
    left_vals = left.column(left_col)
    right_vals = right.column(right_col)
    return [
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if left_vals[i] == right_vals[j]
    ]


def hash_join(
    left: HeapFile, left_col: str, right: HeapFile, right_col: str
) -> list[tuple[int, int]]:
    """Classic hash join: O(n + m) plus output."""
    build: dict[Any, list[int]] = {}
    left_vals = left.column(left_col)
    for i in range(len(left)):
        build.setdefault(left_vals[i], []).append(i)
    right_vals = right.column(right_col)
    out: list[tuple[int, int]] = []
    for j in range(len(right)):
        for i in build.get(right_vals[j], ()):
            out.append((i, j))
    return out


def index_nested_loops_join(
    left: HeapFile, left_col: str, right_index: BPlusTree
) -> list[tuple[int, int]]:
    """Index nested loops join probing a B+tree: O(n log m)."""
    left_vals = left.column(left_col)
    out: list[tuple[int, int]] = []
    for i in range(len(left)):
        for j in right_index.search(left_vals[i]):
            out.append((i, j))
    return out


def _sorted_runs(pairs: Iterator[tuple[Any, int]]) -> Iterator[tuple[Any, list[int]]]:
    """Collapse an ordered (key, row) stream into (key, rows) runs."""
    current_key: Any = None
    run: list[int] = []
    first = True
    for key, row_id in pairs:
        if first or key != current_key:
            if not first:
                yield current_key, run
            current_key, run, first = key, [row_id], False
        else:
            run.append(row_id)
    if not first:
        yield current_key, run


def sort_merge_join(
    left_sorted: Iterator[tuple[Any, int]], right_sorted: Iterator[tuple[Any, int]]
) -> list[tuple[int, int]]:
    """Merge join of two key-ordered streams: O(n + m) plus output.

    With B+tree indexes on both join columns the sorted streams come from
    ``BPlusTree.items()`` for free — the paper's sort-merge example.
    """
    left_runs = _sorted_runs(left_sorted)
    right_runs = _sorted_runs(right_sorted)
    out: list[tuple[int, int]] = []
    lk = next(left_runs, None)
    rk = next(right_runs, None)
    while lk is not None and rk is not None:
        if lk[0] < rk[0]:
            lk = next(left_runs, None)
        elif rk[0] < lk[0]:
            rk = next(right_runs, None)
        else:
            for i in lk[1]:
                for j in rk[1]:
                    out.append((i, j))
            lk = next(left_runs, None)
            rk = next(right_runs, None)
    return out


def sort_merge_join_unindexed(
    left: HeapFile, left_col: str, right: HeapFile, right_col: str
) -> list[tuple[int, int]]:
    """Sort-merge join that must sort both inputs first: O(n log n + m log m)."""
    left_vals = left.column(left_col)
    right_vals = right.column(right_col)
    left_sorted = ((left_vals[i], i) for i in order_by_sort(left, left_col))
    right_sorted = ((right_vals[j], j) for j in order_by_sort(right, right_col))
    return sort_merge_join(left_sorted, right_sorted)


# ----------------------------------------------------------------------
# Realized cost
# ----------------------------------------------------------------------
def realized_path_cost(
    path: str,
    table_rows: int,
    matches: int,
    fanout: int = 2,
    order_by: bool = False,
) -> float:
    """Row touches a finished access actually cost, from observed matches.

    The optimizer's :meth:`~repro.engine.optimizer.AccessPathOptimizer.estimate`
    prices paths with *estimated* cardinalities; after execution the true
    match count is known, so the same formulas re-priced with it give the
    realized cost — the basis for the ROI ledger's realized-benefit
    accounting. ``path`` is a :class:`~repro.engine.optimizer.PathKind`
    value (``"full_scan"``, ``"btree"``, ``"hash"``).
    """
    n = max(table_rows, 1)
    if path == "hash":
        return 1.0 + matches
    if path == "btree":
        if order_by:
            return float(n)  # leaf chain walk
        return math.log(max(n, 2), max(fanout, 2)) + matches
    if order_by:
        return max(1.0, n * math.log2(max(n, 2)))  # sort
    return float(n)
