"""Heap file: the unindexed baseline storage for the micro engine.

A heap file holds rows in insertion order; every predicate requires a
full scan, which is the O(n) baseline against which the paper's index
speedups (Table 6) are measured.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence


class HeapFile:
    """Rows stored as a columnar dict of equal-length sequences."""

    def __init__(self, columns: dict[str, Sequence[Any]]) -> None:
        if not columns:
            raise ValueError("a heap file needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError("all columns must have the same length")
        self._columns = columns
        self._num_rows = lengths.pop()

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> Sequence[Any]:
        try:
            return self._columns[name]
        except KeyError as exc:
            raise KeyError(f"no column {name!r} in heap file") from exc

    def value(self, column: str, row_id: int) -> Any:
        return self.column(column)[row_id]

    def scan(self) -> Iterator[int]:
        """Yield every row id (the full-scan access path)."""
        return iter(range(self._num_rows))

    def filter_scan(self, column: str, predicate: Callable[[Any], bool]) -> list[int]:
        """Full scan returning row ids whose column value satisfies predicate."""
        values = self.column(column)
        return [i for i in range(self._num_rows) if predicate(values[i])]

    def index_pairs(self, column: str) -> list[tuple[Any, int]]:
        """(key, row id) pairs used to build an index on ``column``."""
        values = self.column(column)
        return [(values[i], i) for i in range(self._num_rows)]
