"""Hash index: O(1) exact-key lookups, no order support.

The paper's Lookup category can use a hash index to reach O(1); range,
sort and group operators cannot use it (no key order), which the executor
enforces.
"""

from __future__ import annotations

from typing import Any, Iterator


class HashIndex:
    """A secondary hash index mapping key -> list of row ids."""

    def __init__(self) -> None:
        self._buckets: dict[Any, list[int]] = {}
        self._num_entries = 0

    def __len__(self) -> int:
        return self._num_entries

    @property
    def num_keys(self) -> int:
        return len(self._buckets)

    def insert(self, key: Any, row_id: int) -> None:
        self._buckets.setdefault(key, []).append(row_id)
        self._num_entries += 1

    def search(self, key: Any) -> list[int]:
        """Row ids for an exact key (empty list if absent)."""
        return list(self._buckets.get(key, ()))

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets

    def items(self) -> Iterator[tuple[Any, int]]:
        """All entries in arbitrary (hash) order."""
        for key, rows in self._buckets.items():
            for row_id in rows:
                yield key, row_id

    @classmethod
    def build(cls, pairs: list[tuple[Any, int]]) -> "HashIndex":
        index = cls()
        for key, row_id in pairs:
            index.insert(key, row_id)
        return index
